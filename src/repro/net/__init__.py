"""Metered in-process RPC fabric used by the PS agents, servers and master."""

from repro.net.rpc import RpcEndpoint, RpcEnv

__all__ = ["RpcEndpoint", "RpcEnv"]
