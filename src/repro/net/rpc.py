"""Metered in-process RPC fabric.

The parameter-server agents in each Spark executor talk to the PS servers via
"RPC (remote process call)" (Sec. III-C).  This module provides that fabric
for the simulated cluster: named endpoints, request/response calls that
charge simulated network time to the caller, and liveness so failure
injection (killing a server) surfaces as :class:`RpcError` at call sites.

Congestion is modelled explicitly because it is one of the paper's design
motivations ("using one machine to store the latent vectors could cause
serious network congestion"): when ``concurrent_clients`` exceed the number
of serving endpoints, the effective per-transfer bandwidth shrinks
proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.common.costs import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import EndpointNotFoundError, RpcError
from repro.common.metrics import RPC_BYTES, RPC_CALLS, MetricsRegistry
from repro.common.simclock import TaskCost
from repro.common.sizeof import sizeof


def _task_span(name: str, cost: TaskCost, tags: dict):
    """In-task trace scope; imported lazily to avoid an import cycle with
    the dataflow package (whose context module imports this one)."""
    from repro.dataflow.taskctx import task_span

    return task_span(name, cost, tags)


@dataclass
class RpcEndpoint:
    """One addressable party on the fabric (a PS server, the master, ...).

    Attributes:
        name: unique endpoint name.
        handler: object whose methods are invoked by :meth:`RpcEnv.call`.
        alive: dead endpoints reject calls with :class:`RpcError`.
    """

    name: str
    handler: Any
    alive: bool = True


@dataclass
class RpcEnv:
    """Registry of endpoints plus the metered call path."""

    cost_model: CostModel = DEFAULT_COST_MODEL
    metrics: MetricsRegistry | None = None
    _endpoints: Dict[str, RpcEndpoint] = field(default_factory=dict)
    #: Optional fault hook ``(endpoint, method) -> extra_latency_s``; may
    #: raise :class:`RpcError` to fail the call.  Installed by the chaos
    #: engine; consulted by :meth:`check_fault` on every metered call path
    #: (including the PS agent's direct-dispatch fast path, which bypasses
    #: :meth:`call`).
    fault_injector: Optional[Callable[[str, str], float]] = None

    def check_fault(self, name: str, method: str,
                    cost: TaskCost | None = None) -> None:
        """Give the installed fault injector a chance to fail this call.

        Extra latency the injector returns (or attaches to a raised
        timeout) is charged to ``cost`` when provided; callers without a
        task-cost accumulator absorb it at their own clock (see the PS
        agent and master).
        """
        if self.fault_injector is None:
            return
        try:
            extra_s = self.fault_injector(name, method)
        except RpcError as exc:
            delay_s = getattr(exc, "delay_s", 0.0)
            if cost is not None and delay_s > 0.0:
                cost.net_s += delay_s
            raise
        if extra_s and cost is not None:
            cost.net_s += extra_s

    def register(self, name: str, handler: Any) -> RpcEndpoint:
        """Register ``handler`` under ``name`` (replacing a dead predecessor)."""
        ep = RpcEndpoint(name, handler)
        self._endpoints[name] = ep
        return ep

    def unregister(self, name: str) -> None:
        """Remove an endpoint entirely."""
        self._endpoints.pop(name, None)

    def kill(self, name: str) -> None:
        """Mark an endpoint dead; subsequent calls raise :class:`RpcError`."""
        ep = self._endpoints.get(name)
        if ep is None:
            raise EndpointNotFoundError(name)
        ep.alive = False

    def revive(self, name: str, handler: Any | None = None) -> None:
        """Bring an endpoint back, optionally with a fresh handler."""
        ep = self._endpoints.get(name)
        if ep is None:
            raise EndpointNotFoundError(name)
        ep.alive = True
        if handler is not None:
            ep.handler = handler

    def is_alive(self, name: str) -> bool:
        """Liveness check used by the PS master's health probes."""
        ep = self._endpoints.get(name)
        return ep is not None and ep.alive

    def endpoint(self, name: str) -> RpcEndpoint:
        """Look up an endpoint or raise :class:`EndpointNotFoundError`."""
        ep = self._endpoints.get(name)
        if ep is None:
            raise EndpointNotFoundError(name)
        return ep

    def call(
        self,
        name: str,
        method: str,
        *args: Any,
        cost: TaskCost | None = None,
        request_bytes: int | None = None,
        response_bytes: int | Callable[[Any], int] | None = None,
        concurrent_clients: int = 1,
        num_servers: int = 1,
        **kwargs: Any,
    ) -> Any:
        """Invoke ``method`` on endpoint ``name`` and charge the caller.

        Args:
            cost: caller's task-cost accumulator; charged latency plus
                transfer time for request and response payloads.
            request_bytes: payload size of the request; estimated from
                ``args`` when omitted.
            response_bytes: payload size of the response — an int, a callable
                applied to the returned value, or ``None`` to estimate.
            concurrent_clients / num_servers: congestion inputs; bandwidth is
                divided by ``max(1, concurrent_clients / num_servers)``.
        """
        ep = self.endpoint(name)
        if not ep.alive:
            raise RpcError(f"endpoint {name} is not alive")
        self.check_fault(name, method, cost)
        fn = getattr(ep.handler, method, None)
        if fn is None:
            raise RpcError(f"endpoint {name} has no method {method!r}")
        result = fn(*args, **kwargs)
        if request_bytes is None:
            request_bytes = sum(sizeof(a) for a in args)
        if callable(response_bytes):
            response_bytes = response_bytes(result)
        elif response_bytes is None:
            response_bytes = sizeof(result)
        payload = request_bytes + response_bytes
        congestion = max(1.0, concurrent_clients / max(1, num_servers))
        transfer_s = 0.0
        if cost is not None:
            # When called from inside a dataflow task, the transfer lands
            # as a span on the task's trace row (no-op otherwise).
            with _task_span(f"rpc.{method}", cost,
                            {"endpoint": name, "bytes": payload}):
                net_s = self.cost_model.network_time(payload, congestion)
                ser_s = self.cost_model.serialization_time(payload)
                cost.net_s += net_s
                cost.cpu_s += ser_s
                transfer_s = net_s + ser_s
        if self.metrics is not None:
            self.metrics.inc(RPC_CALLS)
            self.metrics.inc(RPC_BYTES, payload)
            if cost is not None:
                self.metrics.observe("net.rpc.latency_s", transfer_s)
        return result
