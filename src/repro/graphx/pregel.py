"""Pregel API on top of GraphX's aggregate_messages.

GraphX exposes Pregel as a loop of ``aggregateMessages`` + ``joinVertices``;
so does this baseline.  Each superstep pays the full three-shuffle join
pipeline, which is precisely the cost PSGraph eliminates with the PS.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.graphx.graph import Graph, SendFn


def pregel(graph: Graph, initial: Callable[[np.ndarray], np.ndarray],
           send: SendFn,
           vprog: Callable[[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
                           np.ndarray],
           reduce_op: str = "sum", max_iterations: int = 20,
           tol: float = 0.0) -> Tuple[np.ndarray, np.ndarray, int]:
    """Run a Pregel computation to convergence.

    Args:
        graph: the input graph (vertex attrs are overwritten).
        initial: ``initial(ids) -> attrs`` initializes each partition.
        send: message function over edge-partition arrays.
        vprog: ``vprog(ids, attrs, msg_ids, msg_values) -> new_attrs``;
            vertices without messages must be handled by the callback.
        reduce_op: message combiner ("sum" / "min" / "max").
        max_iterations: superstep budget.
        tol: stop when the max absolute attr change is <= tol (only
            meaningful for scalar float attrs; 0 keeps iterating).

    Returns:
        ``(ids, attrs, supersteps_run)`` with ids globally sorted.
    """
    graph.map_vertices(lambda ids, _attrs: initial(ids))
    iterations = 0
    for _ in range(max_iterations):
        messages = graph.aggregate_messages(send, reduce_op)
        # Snapshot attrs only when the convergence check will read them;
        # with tol=0 the copy is pure host-side overhead per superstep.
        before: List[np.ndarray] = (
            [np.asarray(vp.attrs).copy() for vp in graph.vertex_parts]
            if tol > 0.0 else []
        )
        graph.join_messages(messages, vprog)
        iterations += 1
        if tol > 0.0:
            delta = 0.0
            for prev, vp in zip(before, graph.vertex_parts):
                cur = np.asarray(vp.attrs, dtype=np.float64)
                if len(prev):
                    delta = max(
                        delta,
                        float(np.abs(cur - prev.astype(np.float64)).max()),
                    )
            if delta <= tol:
                break
    ids, attrs = graph.collect_vertices()
    # Result collection crosses executors -> driver; charge it like
    # rdd.collect() does.
    nbytes = ids.nbytes + (attrs.nbytes if isinstance(attrs, np.ndarray)
                           else len(attrs) * 8)
    graph.ctx.charge_driver_result(int(nbytes))
    return ids, attrs, iterations
