"""GraphX baseline: table-join message passing on the dataflow engine."""

from repro.graphx.algorithms import (
    attach_neighbor_sets,
    common_neighbor,
    connected_components,
    kcore,
    pagerank,
    triangle_count,
)
from repro.graphx.fast_unfolding import fast_unfolding
from repro.graphx.graph import Graph, VertexPartition
from repro.graphx.pregel import pregel

__all__ = [
    "Graph",
    "VertexPartition",
    "attach_neighbor_sets",
    "common_neighbor",
    "connected_components",
    "fast_unfolding",
    "kcore",
    "pagerank",
    "pregel",
    "triangle_count",
]
