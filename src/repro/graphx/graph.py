"""GraphX baseline: property graph as vertex + edge tables.

"GraphX stores graph data in a table abstraction, in which every executor
(worker) stores an edge table and a vertex table ...  With a shared-nothing
architecture, GraphX uses the table-join operation of Spark to implement
message passing" (Sec. I).  This module reproduces that design on the
metered dataflow substrate:

* edges are partitioned by a random vertex-cut; each edge partition keeps a
  *routing table* of the vertices it references;
* vertex attributes live in hash-partitioned vertex tables;
* :meth:`Graph.aggregate_messages` is the three-shuffle join pipeline —
  ship replicated vertex attributes to edge partitions, compute messages on
  triplets, shuffle messages back and reduce — charging shuffle disk/network
  and JVM-overhead temp tables at every step.

The memory behaviour of Fig. 6 (GraphX OOMs on K-core / triangle count /
DS2) emerges from exactly these charges: power-law hubs replicate to many
edge partitions, and heavy vertex attributes (neighbor sets) multiply the
replication cost.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.common.batch import segment_reduce, split_indices
from repro.common.errors import GraphLoadError
from repro.common.sizeof import sizeof_records
from repro.dataflow.context import SparkContext
from repro.dataflow.taskctx import TaskContext

#: A message send function: ``send(src, dst, src_attr, dst_attr)`` over one
#: edge partition's arrays, returning a list of ``(target_ids, messages)``.
SendFn = Callable[
    [np.ndarray, np.ndarray, Any, Any],
    List[Tuple[np.ndarray, np.ndarray]],
]


class VertexPartition:
    """One hash partition of the vertex table: sorted ids + aligned attrs."""

    def __init__(self, ids: np.ndarray, attrs: Any) -> None:
        self.ids = ids
        self.attrs = attrs  # np.ndarray aligned with ids, or list of arrays

    def attr_nbytes(self) -> int:
        """Logical bytes of this partition's attributes."""
        if isinstance(self.attrs, np.ndarray):
            return int(self.attrs.nbytes)
        return sizeof_records(self.attrs)


class Graph:
    """A GraphX-style property graph bound to a SparkContext."""

    def __init__(self, ctx: SparkContext,
                 edge_parts: List[Tuple[np.ndarray, np.ndarray]],
                 vertex_parts: List[VertexPartition],
                 routing: List[List[np.ndarray]]) -> None:
        self.ctx = ctx
        self.edge_parts = edge_parts
        self.vertex_parts = vertex_parts
        #: routing[ep][vp] = vertex ids of partition vp referenced by ep.
        self.routing = routing
        self.num_edge_partitions = len(edge_parts)
        self.num_vertex_partitions = len(vertex_parts)
        self._charged_tags: List[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, ctx: SparkContext, src: np.ndarray, dst: np.ndarray,
                   num_partitions: int | None = None) -> "Graph":
        """Build a graph from edge arrays, charging executor memory for the
        edge tables and routing tables (the GraphX resident footprint)."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise GraphLoadError("src/dst length mismatch")
        if len(src) == 0:
            raise GraphLoadError("empty edge list")
        if src.min() < 0 or dst.min() < 0:
            raise GraphLoadError("negative vertex id")
        p = num_partitions or ctx.cluster.parallelism
        p = max(1, min(p, len(src)))
        edge_parts = [
            (src[i::p].copy(), dst[i::p].copy()) for i in range(p)
        ]
        all_ids = np.unique(np.concatenate([src, dst]))
        vertex_parts = [
            VertexPartition(all_ids[all_ids % p == vp],
                            np.zeros(int((all_ids % p == vp).sum())))
            for vp in range(p)
        ]
        routing: List[List[np.ndarray]] = []
        for es, ed in edge_parts:
            refs = np.unique(np.concatenate([es, ed]))
            routing.append([refs[refs % p == vp] for vp in range(p)])
        graph = cls(ctx, edge_parts, vertex_parts, routing)
        graph._charge_resident()
        return graph

    def _charge_resident(self) -> None:
        """Charge edge tables + routing tables to their executors' memory."""
        cm = self.ctx.cluster.cost_model
        for ep in range(self.num_edge_partitions):
            executor = self.ctx.executor_for_partition(ep)
            es, ed = self.edge_parts[ep]
            refs = sum(len(r) for r in self.routing[ep])
            nbytes = int(
                (es.nbytes + ed.nbytes + refs * 8) * cm.jvm_object_overhead
            )
            tag = f"graphx:edges:{id(self)}:{ep}"
            executor.container.memory.allocate(nbytes, tag=tag)
            self._charged_tags.append((executor, tag))

    def unpersist(self) -> None:
        """Release the resident edge/routing memory."""
        for executor, tag in self._charged_tags:
            executor.container.memory.release_tag(tag)
        self._charged_tags = []

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Total number of (directed) edges."""
        return sum(len(es) for es, _ed in self.edge_parts)

    @property
    def num_vertices(self) -> int:
        """Total number of distinct vertices."""
        return sum(len(vp.ids) for vp in self.vertex_parts)

    def collect_vertices(self) -> Tuple[np.ndarray, Any]:
        """All vertex ids + attrs at the driver (small graphs only)."""
        ids = np.concatenate([vp.ids for vp in self.vertex_parts])
        first = self.vertex_parts[0].attrs
        if isinstance(first, np.ndarray):
            attrs = np.concatenate(
                [vp.attrs for vp in self.vertex_parts]
            )
        else:
            attrs = [a for vp in self.vertex_parts for a in vp.attrs]
        order = np.argsort(ids, kind="stable")
        if isinstance(attrs, np.ndarray):
            return ids[order], attrs[order]
        return ids[order], [attrs[i] for i in order]

    # ------------------------------------------------------------------
    # vertex updates
    # ------------------------------------------------------------------

    def map_vertices(self, fn: Callable[[np.ndarray, Any], Any]) -> None:
        """Replace attrs per partition: ``new_attrs = fn(ids, attrs)``."""
        def task(vp: int, tctx: TaskContext) -> None:
            part = self.vertex_parts[vp]
            part.attrs = fn(part.ids, part.attrs)
            tctx.cost.cpu_s += (
                self.ctx.cluster.cost_model.compute_time(len(part.ids))
            )

        self.ctx.scheduler.run_stage(
            self.num_vertex_partitions, task, kind="graphx-map-vertices"
        )

    def join_messages(
            self, messages: List[Tuple[np.ndarray, np.ndarray]],
            fn: Callable[[np.ndarray, Any, np.ndarray, np.ndarray], Any],
    ) -> None:
        """Join aggregated messages back into vertex attrs.

        ``fn(ids, attrs, msg_ids, msg_values)`` returns the new attrs for
        the partition (vertices without messages keep their attr — the
        callback decides, GraphX's ``joinVertices`` semantics).
        """
        def task(vp: int, tctx: TaskContext) -> None:
            part = self.vertex_parts[vp]
            msg_ids, msg_vals = messages[vp]
            part.attrs = fn(part.ids, part.attrs, msg_ids, msg_vals)
            tctx.cost.cpu_s += self.ctx.cluster.cost_model.compute_time(
                len(part.ids) + len(msg_ids)
            )

        self.ctx.scheduler.run_stage(
            self.num_vertex_partitions, task, kind="graphx-join"
        )

    # ------------------------------------------------------------------
    # the join/shuffle message-passing pipeline
    # ------------------------------------------------------------------

    def aggregate_messages(
            self, send: SendFn, reduce_op: str = "sum",
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """GraphX ``aggregateMessages``: three metered shuffle stages.

        1. *Ship*: every vertex partition writes (ids, attrs) buckets for
           each edge partition referencing them — the vertex-cut
           replication join.
        2. *Compute*: every edge partition fetches its replicated vertex
           attrs (charging a JVM-overhead temp map), runs ``send`` on the
           triplets, and shuffles messages by target vertex.
        3. *Reduce*: every vertex partition fetches its messages and
           segment-reduces them with ``reduce_op`` (sum/min/max).

        Returns:
            Per vertex partition, ``(ids, reduced_values)`` for vertices
            that received at least one message.
        """
        ctx = self.ctx
        cm = ctx.cluster.cost_model
        ship_id = ctx.next_shuffle_id()
        msg_id = ctx.next_shuffle_id()
        p_e = self.num_edge_partitions
        p_v = self.num_vertex_partitions

        def ship_task(vp: int, tctx: TaskContext) -> None:
            part = self.vertex_parts[vp]
            buckets: Dict[int, List[Any]] = {}
            for ep in range(p_e):
                needed = self.routing[ep][vp]
                if len(needed) == 0:
                    continue
                idx = np.searchsorted(part.ids, needed)
                if isinstance(part.attrs, np.ndarray):
                    attrs = part.attrs[idx]
                else:
                    attrs = [part.attrs[i] for i in idx]
                buckets[ep] = [needed, attrs]
            ctx.shuffle_service.write(
                ship_id, vp, tctx.executor, buckets, tctx.cost
            )

        ctx.scheduler.run_stage(p_v, ship_task, kind="graphx-ship")

        def compute_task(ep: int, tctx: TaskContext) -> None:
            payload = ctx.shuffle_service.read(
                ship_id, ep, p_v, tctx.executor, tctx.cost,
                ctx.live_executor_map(),
            )
            # payload alternates [ids, attrs, ids, attrs, ...] per bucket.
            id_chunks = payload[0::2]
            attr_chunks = payload[1::2]
            rep_ids = (np.concatenate(id_chunks) if id_chunks
                       else np.empty(0, dtype=np.int64))
            if attr_chunks and isinstance(attr_chunks[0], np.ndarray):
                rep_attrs: Any = np.concatenate(attr_chunks)
            else:
                rep_attrs = [a for chunk in attr_chunks for a in chunk]
            order = np.argsort(rep_ids, kind="stable")
            rep_ids = rep_ids[order]
            if isinstance(rep_attrs, np.ndarray):
                rep_attrs = rep_attrs[order]
            else:
                rep_attrs = [rep_attrs[i] for i in order]
            # The replicated vertex map is the join's temp table.
            temp = int(
                (rep_ids.nbytes + sizeof_records(rep_attrs))
                * cm.jvm_object_overhead
            )
            tag = f"graphx-repmap:{ep}"
            tctx.executor.container.memory.allocate(temp, tag=tag)
            try:
                es, ed = self.edge_parts[ep]
                si = np.searchsorted(rep_ids, es)
                di = np.searchsorted(rep_ids, ed)
                if isinstance(rep_attrs, np.ndarray):
                    src_attr = rep_attrs[si]
                    dst_attr = rep_attrs[di]
                else:
                    src_attr = [rep_attrs[i] for i in si]
                    dst_attr = [rep_attrs[i] for i in di]
                outputs = send(es, ed, src_attr, dst_attr)
                buckets: Dict[int, List[Any]] = {}
                # One stable argsort replaces the per-pid boolean-mask
                # scan; same pids in the same order, O(n log n) total.
                for targets, msgs in outputs:
                    pids = targets % p_v
                    for pid, idx in split_indices(pids):
                        bucket = buckets.setdefault(pid, [])
                        bucket.append(targets[idx])
                        if isinstance(msgs, np.ndarray):
                            bucket.append(msgs[idx])
                        else:
                            bucket.append([msgs[i] for i in idx.tolist()])
                tctx.cost.cpu_s += cm.compute_time(len(es))
                ctx.shuffle_service.write(
                    msg_id, ep, tctx.executor, buckets, tctx.cost
                )
            finally:
                tctx.executor.container.memory.release_tag(tag)

        ctx.scheduler.run_stage(p_e, compute_task, kind="graphx-compute")

        def reduce_task(vp: int, tctx: TaskContext
                        ) -> Tuple[np.ndarray, np.ndarray]:
            payload = ctx.shuffle_service.read(
                msg_id, vp, p_e, tctx.executor, tctx.cost,
                ctx.live_executor_map(),
            )
            id_chunks = payload[0::2]
            msg_chunks = payload[1::2]
            if not id_chunks:
                return (np.empty(0, dtype=np.int64), np.empty(0))
            targets = np.concatenate(id_chunks)
            msgs = np.concatenate(
                [np.asarray(m) for m in msg_chunks]
            )
            temp = int(
                (targets.nbytes + msgs.nbytes) * cm.jvm_object_overhead
            )
            tag = f"graphx-msgtable:{vp}"
            tctx.executor.container.memory.allocate(temp, tag=tag)
            try:
                # segment_reduce sorts once and folds with ufunc.reduceat —
                # far faster than the unbuffered ufunc.at scatter it
                # replaces; min/max keep their float64 output contract.
                if reduce_op == "sum":
                    uids, out = segment_reduce(targets, msgs, "add")
                elif reduce_op == "min":
                    uids, out = segment_reduce(
                        targets, msgs.astype(np.float64), "min")
                elif reduce_op == "max":
                    uids, out = segment_reduce(
                        targets, msgs.astype(np.float64), "max")
                else:
                    raise ValueError(f"unknown reduce_op {reduce_op!r}")
                tctx.cost.cpu_s += cm.compute_time(len(targets))
            finally:
                tctx.executor.container.memory.release_tag(tag)
            return (uids, out)

        results = ctx.scheduler.run_stage(
            p_v, reduce_task, kind="graphx-reduce"
        )
        ctx.shuffle_service.drop_shuffle(ship_id)
        ctx.shuffle_service.drop_shuffle(msg_id)
        return results

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    def out_degrees(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Out-degree per vertex (vertices with no out-edges are absent)."""
        return self.aggregate_messages(
            lambda es, ed, sa, da: [(es, np.ones(len(es)))], "sum"
        )

    def in_degrees(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """In-degree per vertex."""
        return self.aggregate_messages(
            lambda es, ed, sa, da: [(ed, np.ones(len(ed)))], "sum"
        )

    def degrees(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Total degree (in + out) per vertex."""
        return self.aggregate_messages(
            lambda es, ed, sa, da: [
                (es, np.ones(len(es))), (ed, np.ones(len(ed)))
            ],
            "sum",
        )
