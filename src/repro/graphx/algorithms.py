"""GraphX-style algorithm implementations (the Fig. 6 baseline).

Every algorithm here moves data the way GraphX does — full-table shuffle
joins per iteration — so its runtime and memory profile on the metered
substrate reflects the paper's baseline:

* PageRank — classic dense-message Pregel loop.
* Connected components — min-label propagation.
* K-core — iterative h-index with per-iteration lineage caching (GraphX's
  well-known unpersist pitfall: old cached graphs accumulate), the OOM cell
  of Fig. 6.
* Triangle count — neighbor-set attributes replicated to edge partitions,
  the other OOM cell.
* Common neighbor — like triangle count but processed in edge chunks, which
  bounds memory at the price of repeated ship rounds (GraphX finishes DS1
  slowly; still OOMs on DS2's hub replication).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.sizeof import sizeof_records
from repro.dataflow.taskctx import TaskContext
from repro.graphx.graph import Graph
from repro.graphx.pregel import pregel


def pagerank(graph: Graph, max_iterations: int = 20, tol: float = 1e-4,
             damping: float = 0.85) -> Tuple[np.ndarray, np.ndarray, int]:
    """GraphX PageRank: rank messages shuffled every superstep.

    Returns:
        ``(ids, ranks, iterations)``.
    """
    # Pre-compute out-degrees once, stored alongside rank in a 2-col attr.
    deg_msgs = graph.out_degrees()
    deg_by_part: List[np.ndarray] = []
    for vp, (mids, mvals) in zip(graph.vertex_parts, deg_msgs):
        deg = np.zeros(len(vp.ids))
        idx = np.searchsorted(vp.ids, mids)
        deg[idx] = mvals
        deg_by_part.append(np.maximum(deg, 1.0))

    part_index: Dict[int, int] = {}
    for i, vp in enumerate(graph.vertex_parts):
        for v in vp.ids:
            part_index[int(v)] = i

    def initial(ids: np.ndarray) -> np.ndarray:
        i = part_index[int(ids[0])] if len(ids) else 0
        out = np.ones((len(ids), 2))
        out[:, 1] = deg_by_part[i]
        return out

    def send(es, ed, src_attr, dst_attr):
        contrib = src_attr[:, 0] / src_attr[:, 1]
        return [(ed, contrib)]

    def vprog(ids, attrs, msg_ids, msg_vals):
        new = attrs.copy()
        new[:, 0] = 1.0 - damping
        idx = np.searchsorted(ids, msg_ids)
        new[idx, 0] += damping * msg_vals
        return new

    ids, attrs, iters = pregel(
        graph, initial, send, vprog, "sum", max_iterations, tol=tol
    )
    return ids, attrs[:, 0], iters


def connected_components(graph: Graph, max_iterations: int = 50
                         ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Min-label propagation: each vertex converges to the smallest id in
    its (weakly) connected component."""

    def send(es, ed, src_attr, dst_attr):
        return [(ed, src_attr), (es, dst_attr)]

    def vprog(ids, attrs, msg_ids, msg_vals):
        new = attrs.copy()
        idx = np.searchsorted(ids, msg_ids)
        new[idx] = np.minimum(new[idx], msg_vals)
        return new

    ids, attrs, iters = pregel(
        graph, lambda ids: ids.astype(np.float64), send, vprog, "min",
        max_iterations, tol=0.5,
    )
    return ids, attrs.astype(np.int64), iters


def kcore(graph: Graph, max_iterations: int = 30
          ) -> Tuple[np.ndarray, np.ndarray, int]:
    """Coreness via iterative h-index, with GraphX's lineage-cache leak.

    Each iteration ships every vertex's current core estimate to its
    neighbors (a full neighbor-value collect), recomputes the h-index, and
    caches the new graph generation *without unpersisting the previous one*
    — the documented GraphX behaviour that makes iterative subgraph
    algorithms blow executor memory on big inputs (the paper's K-core OOM
    cell).

    Returns:
        ``(ids, coreness, iterations)``.
    """
    ctx = graph.ctx
    cm = ctx.cluster.cost_model
    # Initialize with total degree.
    deg_msgs = graph.degrees()
    graph.join_messages(deg_msgs, _scatter_join)
    leak_tags: List[tuple] = []
    iterations = 0
    try:
        for it in range(max_iterations):
            # Ship estimates; per target, collect neighbor values and take
            # the h-index.  Messages carry (value) per edge — a full-width
            # collect, so the message table is E-sized each iteration.
            collected = _collect_neighbor_values(graph)
            changed = 0
            for vp, (ids_arr, values) in zip(graph.vertex_parts, collected):
                new = np.asarray(vp.attrs, dtype=np.float64).copy()
                for i, v in enumerate(ids_arr.tolist()):
                    pos = int(np.searchsorted(vp.ids, v))
                    h = _h_index(values[i])
                    if h < new[pos]:
                        new[pos] = h
                        changed += 1
                vp.attrs = new
            iterations += 1
            # Lineage-cache leak: every generation stays resident.
            for ep in range(graph.num_edge_partitions):
                executor = ctx.executor_for_partition(ep)
                es, ed = graph.edge_parts[ep]
                nbytes = int(
                    (es.nbytes + ed.nbytes + len(es) * 8)
                    * cm.jvm_object_overhead
                )
                tag = f"graphx-kcore-gen{it}:{ep}"
                executor.container.memory.allocate(nbytes, tag=tag)
                leak_tags.append((executor, tag))
            if changed == 0:
                break
        ids, attrs = graph.collect_vertices()
        core = np.asarray(attrs).astype(np.int64)
        # Final coreness collect lands on the driver like any job
        # result; charge it so the driver wall isn't free.
        ctx.charge_driver_result(int(ids.nbytes + core.nbytes))
        return ids, core, iterations
    finally:
        for executor, tag in leak_tags:
            executor.container.memory.release_tag(tag)


def _h_index(values: np.ndarray) -> int:
    """Largest h such that at least h values are >= h."""
    values = np.sort(values)[::-1]
    h = 0
    for i, v in enumerate(values, start=1):
        if v >= i:
            h = i
        else:
            break
    return h


def _scatter_join(ids, attrs, msg_ids, msg_vals):
    new = np.zeros(len(ids))
    idx = np.searchsorted(ids, msg_ids)
    new[idx] = msg_vals
    return new


def _collect_neighbor_values(graph: Graph
                             ) -> List[Tuple[np.ndarray, List[np.ndarray]]]:
    """For every vertex, the multiset of its neighbors' scalar attrs.

    Implemented as the same ship/compute/reduce pipeline as
    aggregate_messages, but the reduce is a *collect* (no combiner), so the
    message table holds one float per edge endpoint — the expensive pattern
    that makes GraphX's K-core heavy.
    """
    ctx = graph.ctx
    cm = ctx.cluster.cost_model
    ship_id = ctx.next_shuffle_id()
    msg_id = ctx.next_shuffle_id()
    p_v = graph.num_vertex_partitions
    p_e = graph.num_edge_partitions

    def ship(vp: int, tctx: TaskContext) -> None:
        part = graph.vertex_parts[vp]
        buckets: Dict[int, List] = {}
        for ep in range(p_e):
            needed = graph.routing[ep][vp]
            if len(needed) == 0:
                continue
            idx = np.searchsorted(part.ids, needed)
            buckets[ep] = [needed, np.asarray(part.attrs)[idx]]
        ctx.shuffle_service.write(ship_id, vp, tctx.executor, buckets,
                                  tctx.cost)

    ctx.scheduler.run_stage(p_v, ship, kind="graphx-collect-ship")

    def compute(ep: int, tctx: TaskContext) -> None:
        payload = ctx.shuffle_service.read(
            ship_id, ep, p_v, tctx.executor, tctx.cost,
            ctx.live_executor_map(),
        )
        rep_ids = np.concatenate(payload[0::2])
        rep_vals = np.concatenate(payload[1::2])
        order = np.argsort(rep_ids, kind="stable")
        rep_ids, rep_vals = rep_ids[order], rep_vals[order]
        tag = f"graphx-collect-map:{ep}"
        tctx.executor.container.memory.allocate(
            int((rep_ids.nbytes + rep_vals.nbytes) * cm.jvm_object_overhead),
            tag=tag,
        )
        try:
            es, ed = graph.edge_parts[ep]
            sv = rep_vals[np.searchsorted(rep_ids, es)]
            dv = rep_vals[np.searchsorted(rep_ids, ed)]
            targets = np.concatenate([ed, es])
            values = np.concatenate([sv, dv])
            pids = targets % p_v
            buckets: Dict[int, List] = {}
            for pid in np.unique(pids):
                mask = pids == pid
                buckets[int(pid)] = [targets[mask], values[mask]]
            tctx.cost.cpu_s += cm.compute_time(len(es))
            ctx.shuffle_service.write(msg_id, ep, tctx.executor, buckets,
                                      tctx.cost)
        finally:
            tctx.executor.container.memory.release_tag(tag)

    ctx.scheduler.run_stage(p_e, compute, kind="graphx-collect-compute")

    def reduce(vp: int, tctx: TaskContext):
        payload = ctx.shuffle_service.read(
            msg_id, vp, p_e, tctx.executor, tctx.cost,
            ctx.live_executor_map(),
        )
        if not payload:
            return (np.empty(0, dtype=np.int64), [])
        targets = np.concatenate(payload[0::2])
        values = np.concatenate(payload[1::2])
        tag = f"graphx-collect-table:{vp}"
        tctx.executor.container.memory.allocate(
            int((targets.nbytes + values.nbytes) * cm.jvm_object_overhead),
            tag=tag,
        )
        try:
            order = np.argsort(targets, kind="stable")
            targets, values = targets[order], values[order]
            uids, starts = np.unique(targets, return_index=True)
            chunks = np.split(values, starts[1:])
            tctx.cost.cpu_s += cm.compute_time(len(targets))
        finally:
            tctx.executor.container.memory.release_tag(tag)
        return (uids, chunks)

    out = ctx.scheduler.run_stage(p_v, reduce, kind="graphx-collect-reduce")
    ctx.shuffle_service.drop_shuffle(ship_id)
    ctx.shuffle_service.drop_shuffle(msg_id)
    return out


def canonical_graph(graph: Graph) -> Graph:
    """Canonicalize to a simple undirected edge set (one shuffle).

    GraphX's triangle count requires "canonical" edges: each undirected
    edge exactly once with ``src < dst``, self-loops dropped.  Implemented
    as a metered shuffle keyed by the low endpoint with reduce-side dedup.
    """
    ctx = graph.ctx
    cm = ctx.cluster.cost_model
    shuffle_id = ctx.next_shuffle_id()
    p = graph.num_edge_partitions

    def emit(ep: int, tctx: TaskContext) -> None:
        es, ed = graph.edge_parts[ep]
        lo = np.minimum(es, ed)
        hi = np.maximum(es, ed)
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        pids = lo % p
        buckets: Dict[int, List] = {}
        for pid in np.unique(pids):
            mask = pids == pid
            buckets[int(pid)] = [lo[mask], hi[mask]]
        tctx.cost.cpu_s += cm.compute_time(len(es))
        ctx.shuffle_service.write(shuffle_id, ep, tctx.executor, buckets,
                                  tctx.cost)

    ctx.scheduler.run_stage(p, emit, kind="graphx-canonical-emit")

    def dedup(rp: int, tctx: TaskContext):
        payload = ctx.shuffle_service.read(
            shuffle_id, rp, p, tctx.executor, tctx.cost,
            ctx.live_executor_map(),
        )
        if not payload:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        lo = np.concatenate(payload[0::2])
        hi = np.concatenate(payload[1::2])
        pairs = np.unique(np.stack([lo, hi], axis=1), axis=0)
        tctx.cost.cpu_s += cm.compute_time(len(lo))
        return (pairs[:, 0], pairs[:, 1])

    parts = ctx.scheduler.run_stage(p, dedup, kind="graphx-canonical-dedup")
    ctx.shuffle_service.drop_shuffle(shuffle_id)
    src = np.concatenate([a for a, _b in parts])
    dst = np.concatenate([b for _a, b in parts])
    # The dedup stage hands the whole canonical edge list back to the
    # driver, which is exactly the GraphX driver-bottleneck the paper
    # measures — charge the collection like rdd.collect() does.
    ctx.charge_driver_result(int(src.nbytes + dst.nbytes))
    return Graph.from_edges(ctx, src, dst, num_partitions=p)


def attach_neighbor_sets(graph: Graph) -> None:
    """Set every vertex's attr to its sorted undirected neighbor array.

    The first phase of triangle counting / common neighbor: one shuffle of
    both edge directions grouped per vertex.
    """
    ctx = graph.ctx
    cm = ctx.cluster.cost_model
    shuffle_id = ctx.next_shuffle_id()
    p_v = graph.num_vertex_partitions
    p_e = graph.num_edge_partitions

    def emit(ep: int, tctx: TaskContext) -> None:
        es, ed = graph.edge_parts[ep]
        targets = np.concatenate([es, ed])
        others = np.concatenate([ed, es])
        pids = targets % p_v
        buckets: Dict[int, List] = {}
        for pid in np.unique(pids):
            mask = pids == pid
            buckets[int(pid)] = [targets[mask], others[mask]]
        tctx.cost.cpu_s += cm.compute_time(len(es))
        ctx.shuffle_service.write(shuffle_id, ep, tctx.executor, buckets,
                                  tctx.cost)

    ctx.scheduler.run_stage(p_e, emit, kind="graphx-nbr-emit")

    def build(vp: int, tctx: TaskContext) -> None:
        payload = ctx.shuffle_service.read(
            shuffle_id, vp, p_e, tctx.executor, tctx.cost,
            ctx.live_executor_map(),
        )
        part = graph.vertex_parts[vp]
        if not payload:
            part.attrs = [np.empty(0, dtype=np.int64) for _ in part.ids]
            return
        targets = np.concatenate(payload[0::2])
        others = np.concatenate(payload[1::2])
        tag = f"graphx-nbr-table:{vp}"
        tctx.executor.container.memory.allocate(
            int((targets.nbytes + others.nbytes) * cm.jvm_object_overhead),
            tag=tag,
        )
        try:
            order = np.argsort(targets, kind="stable")
            targets, others = targets[order], others[order]
            uids, starts = np.unique(targets, return_index=True)
            chunks = np.split(others, starts[1:])
            sets: List[np.ndarray] = []
            pos = {int(v): i for i, v in enumerate(uids.tolist())}
            for v in part.ids.tolist():
                i = pos.get(int(v))
                sets.append(
                    np.unique(chunks[i]) if i is not None
                    else np.empty(0, dtype=np.int64)
                )
            part.attrs = sets
            tctx.cost.cpu_s += cm.compute_time(len(targets))
        finally:
            tctx.executor.container.memory.release_tag(tag)
        # Neighbor-set attrs are resident vertex state in GraphX.
        nbytes = int(sizeof_records(part.attrs) * cm.jvm_object_overhead)
        tag2 = f"graphx-nbrsets:{id(graph)}:{vp}"
        tctx.executor.container.memory.allocate(nbytes, tag=tag2)
        graph._charged_tags.append((tctx.executor, tag2))

    ctx.scheduler.run_stage(p_v, build, kind="graphx-nbr-build")
    ctx.shuffle_service.drop_shuffle(shuffle_id)


def triangle_count(graph: Graph) -> int:
    """GraphX triangle counting: neighbor sets shipped to edge partitions.

    The replicated neighbor-set map on each edge partition is the memory
    bomb (size ~ sum over replicated vertices of their degree) — this is
    the Fig. 6 OOM on DS1 at 55 GB/executor.

    Returns:
        The global triangle count.
    """
    graph = canonical_graph(graph)
    try:
        attach_neighbor_sets(graph)

        def send(es, ed, src_attr, dst_attr):
            counts = np.asarray([
                len(np.intersect1d(a, b, assume_unique=True))
                for a, b in zip(src_attr, dst_attr)
            ], dtype=np.float64)
            return [(es, counts)]

        per_vertex = graph.aggregate_messages(send, "sum")
        total = sum(float(vals.sum()) for _ids, vals in per_vertex)
    finally:
        graph.unpersist()
    # Over canonical edges every triangle closes exactly 3 edges.
    return int(round(total / 3.0))


def common_neighbor(graph: Graph, num_chunks: int = 4
                    ) -> List[Tuple[int, int, int]]:
    """Common-neighbor counts per edge, computed in edge chunks.

    Chunking bounds the replicated neighbor-set map (so DS1 completes,
    slowly — 1.5 h in the paper) but each chunk repeats the ship round, and
    hub replication still OOMs DS2.

    Returns:
        List of ``(src, dst, common_count)`` triples.
    """
    attach_neighbor_sets(graph)
    original_parts = graph.edge_parts
    results: List[Tuple[int, int, int]] = []
    try:
        for chunk in range(num_chunks):
            graph.edge_parts = [
                (es[chunk::num_chunks], ed[chunk::num_chunks])
                for es, ed in original_parts
            ]
            # Chunked routing restricts the ship volume.
            graph.routing = [
                [np.unique(np.concatenate([es, ed]))[
                     np.unique(np.concatenate([es, ed]))
                     % graph.num_vertex_partitions == vp]
                 for vp in range(graph.num_vertex_partitions)]
                for es, ed in graph.edge_parts
            ]
            chunk_out = _common_neighbor_chunk(graph)
            results.extend(chunk_out)
    finally:
        graph.edge_parts = original_parts
        graph.routing = [
            [np.unique(np.concatenate([es, ed]))[
                 np.unique(np.concatenate([es, ed]))
                 % graph.num_vertex_partitions == vp]
             for vp in range(graph.num_vertex_partitions)]
            for es, ed in original_parts
        ]
    return results


def _common_neighbor_chunk(graph: Graph) -> List[Tuple[int, int, int]]:
    """One chunk's ship + intersect pass, returning per-edge counts."""
    ctx = graph.ctx
    out: List[Tuple[int, int, int]] = []

    def send(es, ed, src_attr, dst_attr):
        counts = np.asarray([
            len(np.intersect1d(a, b, assume_unique=True))
            for a, b in zip(src_attr, dst_attr)
        ], dtype=np.float64)
        # Stash the per-edge triples on the driver via closure (cheap
        # result data), and emit no messages.
        for s, d, c in zip(es.tolist(), ed.tolist(), counts.tolist()):
            out.append((s, d, int(c)))
        return [(es[:0], counts[:0])]

    graph.aggregate_messages(send, "sum")
    # Driver receives the result rows.
    ctx.charge_driver_result(len(out) * 24)
    return out
