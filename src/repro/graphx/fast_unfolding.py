"""GraphX-style fast unfolding (Louvain) — the Fig. 6 baseline at 10.3 h.

Without a parameter server every move round must move *tables* through
shuffles: the vertex (community, degree) table is shipped to edge
partitions, per-edge (neighbor-community, weight) messages are shuffled
back and *collected* (no combiner — Louvain needs the full multiset), and
the community weight totals are recomputed with a further groupBy and
re-broadcast via the driver.  Three shuffles of full tables per move round
versus PSGraph's incremental pulls/pushes — that is the 2.9x of Fig. 6.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.dataflow.context import SparkContext
from repro.dataflow.taskctx import TaskContext


def fast_unfolding(ctx: SparkContext, src: np.ndarray, dst: np.ndarray,
                   weight: np.ndarray | None = None, *,
                   num_passes: int = 2, max_move_iterations: int = 5,
                   num_partitions: int | None = None
                   ) -> Tuple[np.ndarray, float, int]:
    """Louvain over shuffle joins.

    Returns:
        ``(communities, modularity, move_rounds)`` where ``communities``
        maps every vertex id < n to its community.
    """
    if weight is None:
        weight = np.ones(len(src))
    n = int(max(src.max(), dst.max())) + 1
    mapping = np.arange(n, dtype=np.int64)
    cur_src, cur_dst, cur_w = src, dst, weight
    total_rounds = 0
    for _ in range(num_passes):
        pass_map, rounds = _one_pass(
            ctx, cur_src, cur_dst, cur_w, n,
            max_move_iterations, num_partitions,
        )
        total_rounds += rounds
        mapping = pass_map[mapping]
        if rounds == 0:
            break
        # Community aggregation (a reduceByKey over relabeled edges).
        key = pass_map[cur_src] * n + pass_map[cur_dst]
        uniq, inverse = np.unique(key, return_inverse=True)
        w = np.zeros(len(uniq))
        np.add.at(w, inverse, cur_w)
        cur_src = (uniq // n).astype(np.int64)
        cur_dst = (uniq % n).astype(np.int64)
        cur_w = w
        ctx.charge_driver_result(int(uniq.nbytes * 2 + w.nbytes))
    q = _modularity(src, dst, weight, mapping)
    return mapping, q, total_rounds


def _one_pass(ctx: SparkContext, src: np.ndarray, dst: np.ndarray,
              w: np.ndarray, n: int, max_iters: int,
              num_partitions: int | None) -> Tuple[np.ndarray, int]:
    p = num_partitions or ctx.cluster.parallelism
    p = max(1, min(p, max(1, len(src))))
    cm = ctx.cluster.cost_model
    edge_parts = [
        (src[i::p], dst[i::p], w[i::p]) for i in range(p)
    ]
    # Vertex state lives in hash partitions: ids, com, k (weighted degree).
    k = np.zeros(n)
    np.add.at(k, src, w)
    np.add.at(k, dst, w)
    present = k > 0
    two_m = float(w.sum()) * 2.0
    vparts: List[Dict[str, np.ndarray]] = []
    for vp in range(p):
        ids = np.flatnonzero(present & (np.arange(n) % p == vp))
        vparts.append({
            "ids": ids,
            "com": ids.astype(np.float64),
            "k": k[ids],
        })

    com = np.arange(n, dtype=np.float64)  # latest global view (driver)
    rounds = 0
    for round_idx in range(2 * max_iters):
        # Synchronous rounds oscillate when whole communities swap; the
        # standard distributed-Louvain fix is to let only half the
        # vertices (by id parity) move per round.
        parity = round_idx % 2
        # --- shuffle 1: community totals via groupBy(com) -> driver ----
        com_tot = _community_totals(ctx, vparts, p, cm)

        # --- shuffle 2+3: ship attrs, emit (neighbor com, w) collects ---
        ship_id = ctx.next_shuffle_id()
        msg_id = ctx.next_shuffle_id()

        def ship(vp: int, tctx: TaskContext) -> None:
            part = vparts[vp]
            payload = [part["ids"], part["com"]]
            buckets = {ep: payload for ep in range(p)}
            ctx.shuffle_service.write(
                ship_id, vp, tctx.executor, buckets, tctx.cost
            )

        ctx.scheduler.run_stage(p, ship, kind="gx-fu-ship")

        def compute(ep: int, tctx: TaskContext) -> None:
            payload = ctx.shuffle_service.read(
                ship_id, ep, p, tctx.executor, tctx.cost,
                ctx.live_executor_map(),
            )
            ids = np.concatenate(payload[0::2])
            coms = np.concatenate(payload[1::2])
            tag = f"gx-fu-map:{ep}"
            tctx.executor.container.memory.allocate(
                int((ids.nbytes + coms.nbytes) * cm.jvm_object_overhead),
                tag=tag,
            )
            try:
                order = np.argsort(ids, kind="stable")
                ids, coms = ids[order], coms[order]
                es, ed, ew = edge_parts[ep]
                cs = coms[np.searchsorted(ids, es)]
                cd = coms[np.searchsorted(ids, ed)]
                targets = np.concatenate([ed, es])
                msg_com = np.concatenate([cs, cd])
                msg_w = np.concatenate([ew, ew])
                pids = targets % p
                buckets: Dict[int, List] = {}
                for pid in np.unique(pids):
                    mask = pids == pid
                    buckets[int(pid)] = [
                        targets[mask], msg_com[mask], msg_w[mask]
                    ]
                tctx.cost.cpu_s += cm.compute_time(len(es))
                ctx.shuffle_service.write(
                    msg_id, ep, tctx.executor, buckets, tctx.cost
                )
            finally:
                tctx.executor.container.memory.release_tag(tag)

        ctx.scheduler.run_stage(p, compute, kind="gx-fu-compute")

        def reduce(vp: int, tctx: TaskContext) -> int:
            payload = ctx.shuffle_service.read(
                msg_id, vp, p, tctx.executor, tctx.cost,
                ctx.live_executor_map(),
            )
            part = vparts[vp]
            if not payload or len(part["ids"]) == 0:
                return 0
            targets = np.concatenate(payload[0::3])
            mcom = np.concatenate(payload[1::3])
            mw = np.concatenate(payload[2::3])
            tag = f"gx-fu-msg:{vp}"
            tctx.executor.container.memory.allocate(
                int((targets.nbytes + mcom.nbytes + mw.nbytes)
                    * cm.jvm_object_overhead),
                tag=tag,
            )
            try:
                order = np.argsort(targets, kind="stable")
                targets, mcom, mw = (
                    targets[order], mcom[order], mw[order]
                )
                uids, starts = np.unique(targets, return_index=True)
                bounds = np.append(starts, len(targets))
                moves = 0
                pos = np.searchsorted(part["ids"], uids)
                for j, v in enumerate(uids.tolist()):
                    if v % 2 != parity:
                        continue
                    i = pos[j]
                    coms = mcom[bounds[j]:bounds[j + 1]]
                    ws = mw[bounds[j]:bounds[j + 1]]
                    cand, inverse = np.unique(coms, return_inverse=True)
                    wsum = np.zeros(len(cand))
                    np.add.at(wsum, inverse, ws)
                    own = part["com"][i]
                    kv = part["k"][i]
                    gains = np.empty(len(cand))
                    for c_idx, c in enumerate(cand.tolist()):
                        tot = com_tot.get(c, 0.0)
                        if c == own:
                            tot -= kv
                        gains[c_idx] = wsum[c_idx] - tot * kv / two_m
                    own_pos = np.flatnonzero(cand == own)
                    own_gain = (
                        gains[own_pos[0]] if len(own_pos)
                        else -(com_tot.get(own, kv) - kv) * kv / two_m
                    )
                    best = int(np.argmax(gains))
                    if gains[best] > own_gain + 1e-12 \
                            and cand[best] != own:
                        part["com"][i] = cand[best]
                        moves += 1
                tctx.cost.cpu_s += cm.compute_time(len(targets))
                return moves
            finally:
                tctx.executor.container.memory.release_tag(tag)

        moves = sum(ctx.scheduler.run_stage(p, reduce, kind="gx-fu-reduce"))
        ctx.shuffle_service.drop_shuffle(ship_id)
        ctx.shuffle_service.drop_shuffle(msg_id)
        rounds += 1
        if moves == 0 and parity == 1:
            break

    for part in vparts:
        com[part["ids"]] = part["com"]
    return com.astype(np.int64), rounds


def _community_totals(ctx: SparkContext, vparts: List[dict], p: int,
                      cm) -> Dict[float, float]:
    """groupBy(community).sum(k) + driver collect + broadcast."""
    shuffle_id = ctx.next_shuffle_id()

    def emit(vp: int, tctx: TaskContext) -> None:
        part = vparts[vp]
        pids = part["com"].astype(np.int64) % p
        buckets: Dict[int, List] = {}
        for pid in np.unique(pids):
            mask = pids == pid
            buckets[int(pid)] = [part["com"][mask], part["k"][mask]]
        ctx.shuffle_service.write(
            shuffle_id, vp, tctx.executor, buckets, tctx.cost
        )

    ctx.scheduler.run_stage(p, emit, kind="gx-fu-tot-emit")

    def reduce(rp: int, tctx: TaskContext) -> Dict[float, float]:
        payload = ctx.shuffle_service.read(
            shuffle_id, rp, p, tctx.executor, tctx.cost,
            ctx.live_executor_map(),
        )
        if not payload:
            return {}
        coms = np.concatenate(payload[0::2])
        ks = np.concatenate(payload[1::2])
        uids, inverse = np.unique(coms, return_inverse=True)
        sums = np.zeros(len(uids))
        np.add.at(sums, inverse, ks)
        tctx.cost.cpu_s += cm.compute_time(len(coms))
        return dict(zip(uids.tolist(), sums.tolist()))

    parts = ctx.scheduler.run_stage(p, reduce, kind="gx-fu-tot-reduce")
    ctx.shuffle_service.drop_shuffle(shuffle_id)
    out: Dict[float, float] = {}
    for d in parts:
        out.update(d)
    ctx.charge_driver_result(len(out) * 16)
    return out


def _modularity(src: np.ndarray, dst: np.ndarray, w: np.ndarray,
                communities: np.ndarray) -> float:
    """Driver-side Newman modularity of the final partition."""
    m = float(w.sum())
    if m == 0:
        return 0.0
    same = communities[src] == communities[dst]
    inside = float(w[same].sum())
    k: Dict[int, float] = {}
    for arr in (src, dst):
        cs = communities[arr]
        for c, wv in zip(cs.tolist(), w.tolist()):
            k[c] = k.get(c, 0.0) + wv
    two_m = 2.0 * m
    return (2.0 * inside / two_m
            - sum((tot / two_m) ** 2 for tot in k.values()))
