"""Simulated resource manager (Yarn / Kubernetes stand-in).

Sec. III-B of the paper: "When a task is submitted to the resource management
platform such as Yarn and Kubernetes, the master is first initialized.  It
then requests resources ... to launch the parameter servers.  ...  Once one
server encounters failure, the master asks the resource management platform
to restart the server."

The reproduction's resource manager grants :class:`Container` objects — each
owning a :class:`~repro.common.simclock.SimClock` and a
:class:`~repro.common.memory.MemoryTracker` sized by the grant — and can kill
and restart them, which drives the failure-recovery experiment (Table II).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ContainerLostError, ResourceError
from repro.common.memory import MemoryTracker
from repro.common.metrics import CONTAINERS_RESTARTED, MetricsRegistry
from repro.common.simclock import SimClock
from repro.obs.tracer import NOOP_TRACER, NoopTracer


@dataclass
class Container:
    """One granted container: a slice of a cluster machine.

    Attributes:
        id: unique container id, e.g. ``executor-3``.
        kind: role label ("executor", "ps-server", "driver", "master").
        mem_bytes: memory grant.
        cores: cpu cores granted.
        clock: the container's simulated clock.
        memory: tracker enforcing the grant.
        alive: containers can be killed (failure injection / preemption).
        restarts: number of times this container has been restarted.
    """

    id: str
    kind: str
    mem_bytes: int
    cores: int
    clock: SimClock
    memory: MemoryTracker
    alive: bool = True
    restarts: int = 0

    def ensure_alive(self) -> None:
        """Raise :class:`ContainerLostError` if the container is dead."""
        if not self.alive:
            raise ContainerLostError(self.id)


@dataclass
class ResourceManager:
    """Grants, kills and restarts containers.

    Attributes:
        metrics: cluster metrics registry.
        restart_delay_s: simulated seconds a restart takes (container
            scheduling + process start); experiments scale this with the
            dataset scale factor.
        capacity_bytes: optional cluster-wide memory capacity; requests
            beyond it raise :class:`ResourceError`.
        tracer: sim-time tracer; kills and restarts land on each
            container's "lifecycle" track.
    """

    metrics: MetricsRegistry | None = None
    restart_delay_s: float = 30.0
    capacity_bytes: int | None = None
    tracer: NoopTracer = NOOP_TRACER
    _granted: int = 0
    _containers: Dict[str, Container] = field(default_factory=dict)
    _seq: "itertools.count[int]" = field(default_factory=itertools.count)

    def request(self, kind: str, mem_bytes: int, cores: int = 1,
                name: str | None = None) -> Container:
        """Grant one container of ``kind`` with the given resources."""
        if mem_bytes <= 0:
            raise ResourceError(f"invalid memory request: {mem_bytes}")
        if (self.capacity_bytes is not None
                and self._granted + mem_bytes > self.capacity_bytes):
            raise ResourceError(
                f"cluster capacity exceeded: {self._granted} + {mem_bytes} "
                f"> {self.capacity_bytes}"
            )
        cid = name if name is not None else f"{kind}-{next(self._seq)}"
        if cid in self._containers:
            raise ResourceError(f"container id {cid} already granted")
        container = Container(
            id=cid,
            kind=kind,
            mem_bytes=mem_bytes,
            cores=cores,
            clock=SimClock(name=cid),
            memory=MemoryTracker(container=cid, capacity=mem_bytes),
        )
        self._containers[cid] = container
        self._granted += mem_bytes
        return container

    def request_many(self, kind: str, count: int, mem_bytes: int,
                     cores: int = 1) -> List[Container]:
        """Grant ``count`` identical containers (e.g. all executors)."""
        return [
            self.request(kind, mem_bytes, cores, name=f"{kind}-{i}")
            for i in range(count)
        ]

    def kill(self, container: Container, reason: str = "killed") -> None:
        """Mark a container dead; its memory contents are lost."""
        container.alive = False
        container.memory.reset()
        if self.tracer.enabled:
            self.tracer.instant(
                container.id, "lifecycle", "killed",
                container.clock.now_s, {"reason": reason},
            )

    def restart(self, container: Container) -> Container:
        """Restart a dead (or live) container in place.

        The container's clock is advanced past the cluster-wide maximum by
        ``restart_delay_s`` — a restarted process rejoins late — and its
        memory is wiped.
        """
        latest = max(
            (c.clock.now_s for c in self._containers.values() if c.alive),
            default=container.clock.now_s,
        )
        container.clock.advance_to(max(latest, container.clock.now_s))
        start_s = container.clock.now_s
        container.clock.advance(self.restart_delay_s)
        container.memory.reset()
        container.alive = True
        container.restarts += 1
        if self.metrics is not None:
            self.metrics.inc(CONTAINERS_RESTARTED)
        if self.tracer.enabled:
            self.tracer.add(
                container.id, "lifecycle", "restart",
                start_s, container.clock.now_s,
                {"restarts": container.restarts, "kind": container.kind},
            )
        return container

    def release(self, container: Container) -> None:
        """Return a container's resources to the cluster."""
        if self._containers.pop(container.id, None) is not None:
            self._granted -= container.mem_bytes
            container.alive = False

    def containers(self, kind: str | None = None) -> List[Container]:
        """All granted containers, optionally filtered by kind."""
        return [
            c for c in self._containers.values()
            if kind is None or c.kind == kind
        ]
