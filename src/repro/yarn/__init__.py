"""Simulated resource manager (Yarn/Kubernetes stand-in)."""

from repro.yarn.resource_manager import Container, ResourceManager

__all__ = ["Container", "ResourceManager"]
