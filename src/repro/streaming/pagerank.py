"""Incremental delta-PageRank over a :class:`StreamingGraph`.

The batch algorithm (Sec. IV-A) already transfers rank *increments*; this
module takes the idea to its streaming conclusion: keep rank ``r`` and a
residual ``e`` PS-resident and maintain the Gauss–Southwell invariant

    e(v) = (1 - d) · present(v) + d · Σ_{u→v} r(u)/deg(u) − r(v)

between windows.  A *push* at ``v`` (``r(v) += e(v)``; propagate
``d·e(v)/deg(v)`` to the out-neighbors; ``e(v) = 0``) preserves the
invariant, and driving every ``|e|`` below ``tol`` makes ``r`` the
damped-PageRank fixed point of the *current* graph (to within ``tol``) —
the same fixed point the batch recurrence converges to, with dangling
vertices dropping their mass.

A mutation window only perturbs the invariant locally: each mutated
source's contribution ``d·r(u)/deg(u)`` changes for its old and new
out-neighbors, and presence flips inject or clear the ``(1-d)`` base.
:meth:`update` repairs exactly those residuals from the
:class:`~repro.streaming.graph.GraphDelta` (which carries the pre-window
out-neighbor snapshots) and re-pushes from the dirty frontier.

The push cascade runs **driver-local**: residuals and adjacency of the
affected region are pulled once (per expansion wave, not per decay
round), the relaxation sweeps happen in driver memory, and the result is
committed back in O(1) group calls.  On the sim clock the refresh
therefore costs RPC rounds proportional to how far the perturbation
*reaches*, and bytes proportional to the vertices it *touches* — not the
graph — which is what makes the incremental path beat a from-scratch
recompute by the margins docs/streaming.md reports.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.algorithms.pagerank import PageRank
from repro.core.ops import edges_from_arrays
from repro.dataflow.dataframe import DataFrame

RANK, RESID = 0, 1


class _BatchCtx:
    """Duck-typed :class:`~repro.core.context.PSGraphContext` facade.

    The streaming plane holds only the :class:`PSContext`; the batch
    algorithms want the full graph context.  This exposes the three
    members :class:`~repro.core.algorithms.pagerank.PageRank` actually
    touches (``ps``, ``cluster``, ``create_dataframe``) over the live
    session, so a from-scratch batch run shares the sim clock and the
    PS fleet with the streaming state it is benchmarked against.
    """

    def __init__(self, psctx) -> None:
        self.ps = psctx
        self.spark = psctx.spark
        self.cluster = psctx.spark.cluster

    def create_dataframe(self, rows, schema, num_partitions=None):
        return DataFrame(
            self.spark.parallelize(list(rows), num_partitions), schema
        )


class IncrementalPageRank:
    """PS-resident PageRank kept fresh across mutation windows.

    Args:
        graph: the live :class:`~repro.streaming.graph.StreamingGraph`.
        name: PS matrix name for the ``[rank, residual]`` state.
        damping: the classic 0.85.
        tol: per-vertex residual threshold; pushes stop when every
            ``|e|`` is at or below it.
        max_rounds: expansion-wave budget per refresh (safety valve).
    """

    def __init__(self, graph, *, name: str = "stream.pagerank",
                 damping: float = 0.85, tol: float = 1e-9,
                 max_rounds: int = 1000) -> None:
        self.graph = graph
        self.psctx = graph.psctx
        self.damping = damping
        self.tol = tol
        self.max_rounds = max_rounds
        self.state = self.psctx.create_matrix(
            name, graph.num_vertices, 2
        )
        self._scratch_seq = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bootstrap(self) -> Dict[str, float]:
        """Full compute from scratch into the live state (first window)."""
        present = self.graph.present_vertices()
        base = 1.0 - self.damping
        return self._push(self.state,
                          {int(v): base for v in present.tolist()})

    def update(self, delta) -> Dict[str, float]:
        """Repair residuals for one window's delta and re-push.

        Repairs are *seeded into the local cascade* rather than pushed
        to the PS and re-pulled: the cascade materializes each touched
        vertex's true residual as ``PS value + seed`` and commits the
        final values once, so the repair itself costs no extra rounds.
        """
        if delta.is_empty():
            return {"rounds": 0.0, "pushes": 0.0, "frontier": 0.0}
        base = 1.0 - self.damping
        seed: Dict[int, float] = {}

        # Presence gained: inject the (1-d) base residual.
        for v in delta.became_present.tolist():
            seed[int(v)] = seed.get(int(v), 0.0) + base

        # Contribution repair for every source whose out-list changed:
        # subtract the old per-neighbor contribution, add the new one.
        sources = np.asarray(sorted(delta.old_out), dtype=np.int64)
        if len(sources):
            ranks = self.state.pull(sources, col=RANK)
            new_outs = self.graph.out.get(sources)
            for v, r, new_n in zip(sources.tolist(), ranks, new_outs):
                if r == 0.0:
                    continue
                old_n = delta.old_out[int(v)]
                if len(old_n):
                    c = -self.damping * r / len(old_n)
                    for t in old_n.tolist():
                        seed[int(t)] = seed.get(int(t), 0.0) + c
                if len(new_n):
                    c = self.damping * r / len(new_n)
                    for t in new_n.tolist():
                        seed[int(t)] = seed.get(int(t), 0.0) + c

        # Presence lost: the vertex holds no rank and no residual.
        gone = np.union1d(delta.became_absent, delta.dropped)
        if len(gone):
            zeros = np.zeros(len(gone))
            self.state.set(gone, zeros, col=RANK)
            self.state.set(gone, zeros, col=RESID)
            for v in gone.tolist():
                seed.pop(int(v), None)

        stats = self._push(self.state, seed)
        stats["frontier"] = float(len(seed))
        return stats

    # ------------------------------------------------------------------
    # results & verification
    # ------------------------------------------------------------------

    def ranks(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, ranks)`` of the live graph's present vertices."""
        present = self.graph.present_vertices()
        if len(present) == 0:
            return present, np.empty(0)
        return present, self.state.pull(present, col=RANK)

    def full_recompute(self, *, max_iterations: int = 200
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """From-scratch **batch** recompute (the cost yardstick).

        This is what every window would cost without the streaming
        plane: export the current edge set, shuffle it into neighbor
        tables, and run the repo's batch delta-PageRank pipeline
        (Sec. IV-A) — BSP iterations against a fresh PS matrix, with
        per-round executor compute and PS traffic all on the sim
        clock.  The incremental path is judged against this number as
        ``recompute_cost_full`` vs ``recompute_cost_incremental``.
        """
        present = self.graph.present_vertices()
        if len(present) == 0:
            return present, np.empty(0)
        outs = self.graph.out.get(present)
        lens = np.asarray([len(t) for t in outs], dtype=np.int64)
        src = np.repeat(present, lens)
        dst = (np.concatenate([t for t in outs if len(t)])
               if int(lens.sum()) else np.empty(0, dtype=np.int64))
        spark = self.psctx.spark
        edges = edges_from_arrays(spark, src, dst)
        job = PageRank(max_iterations=max_iterations, tol=self.tol,
                       damping=self.damping)
        before = set(self.psctx.matrix_names())
        saved_recovery = self.psctx.recovery_mode
        try:
            result = job.transform(_BatchCtx(self.psctx), edges)
        finally:
            self.psctx.recovery_mode = saved_recovery
        got = {int(v): float(r)
               for v, r in result.output.rdd.collect()}
        ranks = np.asarray([got.get(int(v), 0.0)
                            for v in present.tolist()])
        for name in set(self.psctx.matrix_names()) - before:
            self.psctx.drop_matrix(name)
        return present, ranks

    # ------------------------------------------------------------------
    # the push cascade
    # ------------------------------------------------------------------

    def _push(self, state, seed: Dict[int, float]) -> Dict[str, float]:
        """Drive every reachable residual below ``tol``; invariant-safe.

        ``seed`` maps frontier vertices to residual *increments* applied
        on top of their PS-resident residual when they materialize —
        residual repairs therefore ride along for free instead of
        costing their own push/pull round.

        Wave structure: materialize the frontier's residuals + adjacency
        from the PS (two group calls), relax locally to convergence, and
        repeat for whatever new vertices the cascade reached.  Commits
        rank deltas and absolute residuals in two group calls at the end.
        """
        d, tol = self.damping, self.tol
        e_local: Dict[int, float] = {}
        r_delta: Dict[int, float] = {}
        adj: Dict[int, np.ndarray] = {}
        rounds = 0
        pushes = 0
        received: Dict[int, float] = {int(v): float(a)
                                      for v, a in seed.items()}
        while rounds < self.max_rounds:
            # Materialize: vertices the cascade reached get their true
            # residual (PS value + what they received locally) exactly
            # once — re-pulling would clobber uncommitted local state.
            pend = sorted(received)
            if pend:
                vs = np.asarray(pend, dtype=np.int64)
                for v, e in zip(pend, state.pull(vs, col=RESID)):
                    e_local[v] = float(e) + received.pop(v)
            hot = sorted(v for v in e_local
                         if abs(e_local[v]) > tol and v not in adj)
            if not pend and not hot:
                break
            rounds += 1
            if hot:
                hs = np.asarray(hot, dtype=np.int64)
                for v, nb in zip(hot, self.graph.out.get(hs)):
                    adj[v] = nb
            # Local relaxation (vectorized Jacobi sweeps): free on the
            # sim clock, exact on the invariant.  Only vertices with
            # known adjacency relax; mass landing outside the wave's
            # reach is banked for the next wave's materialization.
            wave = sorted(v for v in e_local if v in adj)
            if not wave:
                continue
            wave_arr = np.asarray(wave, dtype=np.int64)
            e = np.asarray([e_local[v] for v in wave])
            nbrs = [adj[v] for v in wave]
            lens = np.asarray([len(t) for t in nbrs], dtype=np.int64)
            coef_k = np.where(lens > 0,
                              d / np.maximum(lens, 1).astype(np.float64),
                              0.0)  # dangling: mass drops, as in batch
            r_acc = np.zeros(len(wave))
            if int(lens.sum()):
                flat = np.concatenate([t for t in nbrs if len(t)])
                src_idx = np.repeat(np.arange(len(wave)), lens)
                ins = np.minimum(np.searchsorted(wave_arr, flat),
                                 len(wave_arr) - 1)
                internal = wave_arr[ins] == flat
                int_tgt = ins[internal]
                ext_ids, ext_inv = np.unique(flat[~internal],
                                             return_inverse=True)
            else:
                flat = np.empty(0, dtype=np.int64)
                ext_ids = np.empty(0, dtype=np.int64)
            ext_acc = np.zeros(len(ext_ids))
            while True:
                active = np.abs(e) > tol
                if not active.any():
                    break
                ev = np.where(active, e, 0.0)
                r_acc += ev
                e = np.where(active, 0.0, e)
                pushes += int(active.sum())
                if not len(flat):
                    continue
                contrib = (coef_k * ev)[src_idx]
                if len(int_tgt):
                    np.add.at(e, int_tgt, contrib[internal])
                if len(ext_ids):
                    np.add.at(ext_acc, ext_inv, contrib[~internal])
            for i, v in enumerate(wave):
                if r_acc[i]:
                    r_delta[v] = r_delta.get(v, 0.0) + float(r_acc[i])
                e_local[v] = float(e[i])
            for u, a in zip(ext_ids.tolist(), ext_acc.tolist()):
                if a == 0.0:
                    continue
                u = int(u)
                if u in e_local:
                    e_local[u] += a
                else:
                    received[u] = received.get(u, 0.0) + a
        # Commit: rank increments and absolute residuals, one call each.
        if r_delta:
            ids = np.asarray(sorted(r_delta), dtype=np.int64)
            state.push(ids, np.asarray([r_delta[int(v)] for v in ids]),
                       col=RANK)
        if e_local:
            ids = np.asarray(sorted(e_local), dtype=np.int64)
            state.set(ids, np.asarray([e_local[int(v)] for v in ids]),
                      col=RESID)
        self.psctx.barrier()
        return {"rounds": float(rounds), "pushes": float(pushes)}
