"""The streaming window loop: poll, apply, incrementally recompute.

:class:`StreamingEngine` is the driver-side glue of the streaming plane.
Each :meth:`run_window` call drains the ingest consumer (mutations land
to HDFS and merge into the PS tables with at-least-once semantics, see
:mod:`repro.ingest.kafka`), applies the batch to the
:class:`~repro.streaming.graph.StreamingGraph`, and refreshes every
registered incremental algorithm from the resulting delta.

Both refresh paths are timed on the **sim clock**: the incremental
update's cost is measured directly, and (when ``measure_full`` is on)
a from-scratch recompute on scratch PS state provides the per-window
``recompute_cost_full`` baseline.  The pair lands in the
``streaming.window.cost_*`` histograms and their ratio in the
``streaming.window.cost_ratio`` gauge — the acceptance metric for the
incremental plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.metrics import (
    STREAM_COST_FULL_H,
    STREAM_COST_INC_H,
    STREAM_COST_RATIO_G,
    STREAM_DIRTY_VERTICES,
    STREAM_WINDOWS,
)


@dataclass
class WindowReport:
    """What one streaming window did and what it cost (sim seconds)."""

    window: int
    records: int
    edges_added: int
    edges_removed: int
    vertices_dropped: int
    dirty_vertices: int
    cost_incremental_s: float
    cost_full_s: Optional[float] = None
    algo_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def cost_ratio(self) -> Optional[float]:
        """Incremental / full cost; ``None`` without a full measurement."""
        if self.cost_full_s is None or self.cost_full_s <= 0.0:
            return None
        return self.cost_incremental_s / self.cost_full_s

    def to_dict(self) -> Dict[str, object]:
        d = {
            "window": self.window,
            "records": self.records,
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "vertices_dropped": self.vertices_dropped,
            "dirty_vertices": self.dirty_vertices,
            "cost_incremental_s": self.cost_incremental_s,
            "cost_full_s": self.cost_full_s,
            "cost_ratio": self.cost_ratio,
            "algos": self.algo_stats,
        }
        return d


class StreamingEngine:
    """Window-driven incremental recompute over a mutation stream.

    Args:
        graph: the live :class:`StreamingGraph` (its PS tables mirror the
            consumer's merges).
        consumer: an :class:`~repro.ingest.kafka.EdgeStreamConsumer`
            whose ``sink`` buffers into this engine (see
            :meth:`attach_consumer`), or ``None`` to feed mutation
            batches directly to :meth:`run_window`.
        measure_full: when True, every window also runs (and times) a
            from-scratch recompute per algorithm on scratch PS state.
    """

    def __init__(self, graph, consumer=None, *,
                 measure_full: bool = True) -> None:
        self.graph = graph
        self.psctx = graph.psctx
        self.spark = graph.psctx.spark
        self.metrics = self.spark.metrics
        self.consumer = consumer
        self.measure_full = measure_full
        self.algos: Dict[str, object] = {}
        self.reports: List[WindowReport] = []
        self._pending: List = []
        self._window = 0
        if consumer is not None:
            self.attach_consumer(consumer)

    def attach_consumer(self, consumer) -> None:
        """Buffer the consumer's merged mutations for the next window."""
        if getattr(consumer, "table", None) is not None:
            raise ValueError(
                "consumer merges into a PS table directly; with an "
                "engine the StreamingGraph owns both tables — construct "
                "the consumer without table="
            )
        self.consumer = consumer
        consumer.sink = self._pending.extend

    def register(self, name: str, algo) -> object:
        """Register an incremental algorithm (bootstrap/update protocol)."""
        self.algos[name] = algo
        return algo

    # ------------------------------------------------------------------
    # the window loop
    # ------------------------------------------------------------------

    def bootstrap(self) -> Dict[str, Dict[str, float]]:
        """Initial full compute for every registered algorithm."""
        stats = {}
        for name in sorted(self.algos):
            stats[name] = self.algos[name].bootstrap()
        return stats

    def run_window(self, mutations=None) -> WindowReport:
        """Drain one window of mutations and refresh every algorithm.

        ``mutations`` bypasses the consumer (direct-feed mode); with a
        consumer attached, the window is whatever ``poll()`` merges.
        """
        if mutations is not None:
            batch = list(mutations)
        else:
            if self.consumer is None:
                raise ValueError(
                    "run_window needs mutations or an attached consumer")
            self._pending.clear()
            self.consumer.poll()
            batch = list(self._pending)
            self._pending.clear()
        self._window += 1
        records = len(batch)

        t0 = self.spark.sim_time()
        delta = self.graph.apply(batch)
        algo_stats: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.algos):
            algo_stats[name] = self.algos[name].update(delta)
        cost_inc = self.spark.sim_time() - t0

        cost_full: Optional[float] = None
        if self.measure_full:
            t1 = self.spark.sim_time()
            for name in sorted(self.algos):
                self.algos[name].full_recompute()
            cost_full = self.spark.sim_time() - t1

        dirty = int(len(delta.touched()))
        report = WindowReport(
            window=self._window,
            records=records,
            edges_added=delta.num_added,
            edges_removed=delta.num_removed,
            vertices_dropped=len(delta.dropped),
            dirty_vertices=dirty,
            cost_incremental_s=cost_inc,
            cost_full_s=cost_full,
            algo_stats=algo_stats,
        )
        self.reports.append(report)
        self.metrics.inc(STREAM_WINDOWS)
        self.metrics.inc(STREAM_DIRTY_VERTICES, dirty)
        self.metrics.observe(STREAM_COST_INC_H, cost_inc)
        if cost_full is not None:
            self.metrics.observe(STREAM_COST_FULL_H, cost_full)
            if report.cost_ratio is not None:
                self.metrics.set_gauge(STREAM_COST_RATIO_G,
                                       report.cost_ratio)
        return report

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, float]:
        """Aggregate costs across every completed window."""
        inc = sum(r.cost_incremental_s for r in self.reports)
        full = sum(r.cost_full_s or 0.0 for r in self.reports)
        measured = [r for r in self.reports if r.cost_full_s]
        return {
            "windows": float(len(self.reports)),
            "cost_incremental_s": inc,
            "cost_full_s": full,
            "cost_ratio": (inc / full) if measured and full > 0 else 0.0,
        }
