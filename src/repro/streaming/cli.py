"""``repro-streaming`` — the streaming-mutation pipeline end to end.

Generates a power-law base graph, streams it through the Kafka-style
topic into a PS-resident :class:`~repro.streaming.graph.StreamingGraph`,
bootstraps the incremental algorithms (delta-PageRank, connected
components, optionally an online embedding), then drives mutation
windows — edge adds, edge removals and vertex drops — through the
at-least-once consumer and reports the incremental-vs-full recompute
cost per window on the sim clock::

    repro-streaming --vertices 500 --base-edges 2000 --windows 4
    repro-streaming --windows 6 --embedding --json report.json

``--max-ratio R`` turns the command into a smoke check: it exits
non-zero unless the aggregate incremental cost stays below ``R`` times
the full-recompute cost — CI runs it to gate the incremental plane.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

import numpy as np

from repro.common.config import MB, ClusterConfig
from repro.common.rng import derive_seed
from repro.core.context import PSGraphContext
from repro.datasets.generators import powerlaw_graph
from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
from repro.streaming.components import IncrementalComponents
from repro.streaming.embedding import OnlineEmbeddingRefresh
from repro.streaming.engine import StreamingEngine
from repro.streaming.graph import StreamingGraph
from repro.streaming.pagerank import IncrementalPageRank


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-streaming",
        description="Stream graph mutations through the ingest path and "
                    "keep PS-resident algorithms fresh incrementally.",
        epilog="See docs/streaming.md for semantics and the cost model.",
    )
    parser.add_argument("--vertices", type=int, default=400,
                        help="vertex-id space of the streamed graph")
    parser.add_argument("--base-edges", type=int, default=1600,
                        help="edges in the bootstrap graph")
    parser.add_argument("--windows", type=int, default=4,
                        help="mutation windows to stream after bootstrap")
    parser.add_argument("--adds", type=int, default=12,
                        help="edge adds per window")
    parser.add_argument("--removals", type=int, default=8,
                        help="edge removals per window")
    parser.add_argument("--drop-every", type=int, default=2,
                        help="drop one vertex every Nth window (0 = never)")
    parser.add_argument("--embedding", action="store_true",
                        help="also keep an online embedding fresh")
    parser.add_argument("--no-full", dest="measure_full",
                        action="store_false",
                        help="skip the per-window full-recompute baseline")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument("--servers", type=int, default=2)
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the per-window reports as JSON")
    parser.add_argument("--max-ratio", type=float, default=None,
                        metavar="R",
                        help="exit non-zero unless aggregate incremental "
                             "cost < R x full-recompute cost")
    return parser


def stream_mutations(topic: KafkaTopic, graph: StreamingGraph,
                     window: int, args: argparse.Namespace,
                     rng: np.random.Generator) -> None:
    """Produce one window's mutation mix onto the topic."""
    n = args.vertices
    if args.adds:
        src = rng.integers(0, n, size=args.adds)
        dst = (src + 1 + rng.integers(0, n - 1, size=args.adds)) % n
        topic.produce(src, dst)
    if args.removals:
        present = graph.present_vertices()
        pick = present[rng.integers(0, len(present),
                                    size=min(args.removals, len(present)))]
        outs = graph.out.get(np.unique(pick))
        rm_s, rm_d = [], []
        for v, nbrs in zip(np.unique(pick).tolist(), outs):
            if len(nbrs):
                rm_s.append(v)
                rm_d.append(int(nbrs[rng.integers(0, len(nbrs))]))
        if rm_s:
            topic.produce_removals(np.asarray(rm_s, dtype=np.int64),
                                   np.asarray(rm_d, dtype=np.int64))
    if args.drop_every and window % args.drop_every == 0:
        present = graph.present_vertices()
        if len(present):
            doomed = present[int(rng.integers(0, len(present)))]
            topic.produce_vertex_removals(
                np.asarray([doomed], dtype=np.int64))


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    cluster = ClusterConfig(
        num_executors=args.executors, executor_mem_bytes=256 * MB,
        num_servers=args.servers, server_mem_bytes=256 * MB,
    )
    rng = np.random.default_rng(derive_seed(args.seed, "stream-cli"))
    with PSGraphContext(cluster, app_name="repro-streaming") as ctx:
        topic = KafkaTopic("mutations", num_partitions=4)
        graph = StreamingGraph(ctx.ps, args.vertices,
                               metrics=ctx.metrics)
        consumer = EdgeStreamConsumer(
            topic, ctx.hdfs, landing_dir="/stream/edges",
            metrics=ctx.metrics,
        )
        engine = StreamingEngine(graph, consumer,
                                 measure_full=args.measure_full)
        engine.register("pagerank", IncrementalPageRank(graph, tol=1e-6))
        engine.register("components", IncrementalComponents(graph))
        if args.embedding:
            engine.register("embedding", OnlineEmbeddingRefresh(
                graph, seed=args.seed))

        # -- bootstrap --------------------------------------------------
        src, dst = powerlaw_graph(
            args.vertices, args.base_edges,
            seed=derive_seed(args.seed, "stream-base"))
        topic.produce(src, dst)
        engine.run_window()  # applies the base graph (bootstrap window)
        engine.bootstrap()
        base = engine.reports.pop()  # the load window is not a mutation
        print(f"bootstrap : {graph.num_edges} edges, "
              f"{len(graph.present_vertices())} vertices "
              f"({base.records} records)")

        # -- mutation windows -------------------------------------------
        for w in range(1, args.windows + 1):
            stream_mutations(topic, graph, w, args, rng)
            report = engine.run_window()
            ratio = report.cost_ratio
            print(f"window {w:2d} : +{report.edges_added} "
                  f"-{report.edges_removed} edges, "
                  f"{report.vertices_dropped} drops, "
                  f"dirty={report.dirty_vertices}, "
                  f"inc={report.cost_incremental_s:.4f}s"
                  + (f", full={report.cost_full_s:.4f}s "
                     f"(ratio {ratio:.3f})"
                     if ratio is not None else ""))

        summary = engine.summary()
        print(f"summary   : {int(summary['windows'])} windows, "
              f"incremental {summary['cost_incremental_s']:.4f}s vs "
              f"full {summary['cost_full_s']:.4f}s "
              f"(ratio {summary['cost_ratio']:.3f})")
        if args.json is not None:
            doc = {
                "schema": "repro.streaming/v1",
                "summary": summary,
                "windows": [r.to_dict() for r in engine.reports],
            }
            with open(args.json, "w") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
            print(f"report    : wrote {args.json}")
        if args.max_ratio is not None and args.measure_full:
            if summary["cost_ratio"] >= args.max_ratio:
                print(f"FAIL      : cost ratio {summary['cost_ratio']:.3f} "
                      f">= {args.max_ratio}")
                return 1
            print(f"PASS      : cost ratio {summary['cost_ratio']:.3f} "
                  f"< {args.max_ratio}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
