"""Online embedding refresh restricted to changed neighborhoods.

Batch LINE (Sec. IV-D) retrains every vertex each run.  On a stream that
is wasteful: a mutation window only changes the first-order structure of
the vertices it touches, so only *their* embeddings are stale.  This
module keeps a column-sharded PS embedding warm by re-running the LINE
step — server-side partial dots and rank-one SGD updates, embeddings
never leave the servers — over positive pairs drawn from the *changed*
neighborhoods plus seeded negatives, instead of the whole graph.

``full_refresh`` runs the same pass over every present vertex and is the
``recompute_cost_full`` yardstick for the window cost model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.rng import derive_seed


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class OnlineEmbeddingRefresh:
    """LINE-style first-order embeddings kept fresh across windows.

    Args:
        graph: the live :class:`~repro.streaming.graph.StreamingGraph`.
        dim: embedding dimensionality.
        name: PS embedding name.
        seed: base seed for init and per-window negative sampling.
        lr: SGD learning rate.
        negatives: negative samples per positive pair.
        epochs: SGD passes per refresh.
    """

    def __init__(self, graph, dim: int = 8, *,
                 name: str = "stream.emb", seed: int = 7,
                 lr: float = 0.05, negatives: int = 2,
                 epochs: int = 1) -> None:
        self.graph = graph
        self.psctx = graph.psctx
        self.dim = dim
        self.seed = seed
        self.lr = lr
        self.negatives = negatives
        self.epochs = epochs
        self.emb = self.psctx.create_embedding(
            name, graph.num_vertices, dim)
        self._window = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bootstrap(self) -> Dict[str, float]:
        """Random init + one full training pass (first window)."""
        from repro.ps.psfunc import RandomInit

        self.emb.psfunc(RandomInit(self.seed))
        return self.full_refresh()

    def update(self, delta) -> Dict[str, float]:
        """Retrain only the vertices whose neighborhoods changed."""
        self._window += 1
        dirty = np.intersect1d(delta.touched(),
                               self.graph.present_vertices())
        return self._train(dirty, salt=f"w{self._window}")

    def full_refresh(self) -> Dict[str, float]:
        """Retrain every present vertex (cost yardstick)."""
        self._window += 1
        return self._train(self.graph.present_vertices(),
                           salt=f"full{self._window}")

    def full_recompute(self) -> Dict[str, float]:
        """Engine-facing alias: the full pass *is* the recompute."""
        return self.full_refresh()

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def vectors(self, vertices: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, rows)`` — pulled only for inspection, not training."""
        if vertices is None:
            vertices = self.graph.present_vertices()
        if len(vertices) == 0:
            return vertices, np.empty((0, self.dim))
        return vertices, self.emb.pull_rows(vertices)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _train(self, vertices: np.ndarray, *, salt: str
               ) -> Dict[str, float]:
        """One LINE pass over ``vertices``'s current neighborhoods."""
        if len(vertices) == 0:
            return {"pairs": 0.0, "trained": 0.0}
        present = self.graph.present_vertices()
        outs = self.graph.out.get(vertices)
        lens = np.asarray([len(t) for t in outs], dtype=np.int64)
        pos_l = np.repeat(vertices, lens)
        pos_r = (np.concatenate([t for t in outs if len(t)])
                 if lens.sum() else np.empty(0, dtype=np.int64))
        rng = np.random.default_rng(derive_seed(self.seed, salt))
        pairs = 0
        for _ in range(self.epochs):
            if len(pos_l):
                self._sgd_step(pos_l, pos_r, label=1.0)
                pairs += len(pos_l)
            if len(pos_l) and self.negatives and len(present) > 1:
                neg_l = np.repeat(pos_l, self.negatives)
                neg_r = present[rng.integers(
                    0, len(present), size=len(neg_l))]
                keep = neg_l != neg_r
                if keep.any():
                    self._sgd_step(neg_l[keep], neg_r[keep], label=0.0)
                    pairs += int(keep.sum())
            self.psctx.barrier()
        return {"pairs": float(pairs), "trained": float(len(vertices))}

    def _sgd_step(self, left: np.ndarray, right: np.ndarray, *,
                  label: float) -> None:
        """Logistic rank-one step, entirely server-side."""
        dots = self.emb.dot(left, right)
        g = self.lr * (label - _sigmoid(dots))
        self.emb.rank_one_update(left, right, g)
