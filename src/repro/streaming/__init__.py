"""Streaming graph mutations with incremental recompute.

The streaming plane keeps PS-resident graph state — adjacency, ranks,
component labels, embeddings — fresh against a mutation stream without
full recomputation: each ingest window yields a
:class:`~repro.streaming.graph.GraphDelta` and every registered
algorithm repairs only the affected region.
"""

from repro.streaming.components import IncrementalComponents
from repro.streaming.embedding import OnlineEmbeddingRefresh
from repro.streaming.engine import StreamingEngine, WindowReport
from repro.streaming.graph import GraphDelta, StreamingGraph
from repro.streaming.pagerank import IncrementalPageRank

__all__ = [
    "GraphDelta",
    "IncrementalComponents",
    "IncrementalPageRank",
    "OnlineEmbeddingRefresh",
    "StreamingEngine",
    "StreamingGraph",
    "WindowReport",
]
