"""Incremental weakly connected components over a streaming graph.

Labels live in a PS vector (label = smallest vertex id in the component,
``-1`` for absent vertices).  Edge *adds* are cheap: min-label frontier
propagation restricted to the touched region floods the smaller label
through any newly merged component.  Edge *removes* are the hard case —
a removal may split a component — and are repaired with a bidirectional
search from the removed edge's endpoints over the *current* adjacency:
if the sides meet, the component survived and nothing changes; if one
side exhausts, the old component genuinely split and both sides are
relabeled with their own minima.

Cost model: adds cost O(affected frontier); a removal costs O(min side)
when the component survives and O(component) when it splits — still
local to the touched component, never a full-graph recompute.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np


class IncrementalComponents:
    """PS-resident component labels kept fresh across mutation windows.

    Args:
        graph: the live :class:`~repro.streaming.graph.StreamingGraph`.
        name: PS vector name for the label state.
        max_rounds: propagation-round budget per refresh.
    """

    def __init__(self, graph, *, name: str = "stream.cc",
                 max_rounds: int = 200) -> None:
        self.graph = graph
        self.psctx = graph.psctx
        self.max_rounds = max_rounds
        self.labels = self.psctx.create_vector(
            name, graph.num_vertices, init=-1.0
        )
        self._scratch_seq = 0
        # Per-refresh adjacency memo: the graph is static between
        # :meth:`update` calls, so every vertex's neighborhood is pulled
        # at most once per refresh regardless of how many BFS levels or
        # pair checks revisit it.
        self._adj: Dict[int, np.ndarray] = {}
        # Driver-side view of labels written/read during one repair pass
        # (kept consistent by :meth:`_relabel`).
        self._labels_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def bootstrap(self) -> Dict[str, float]:
        """Full labeling from scratch (first window)."""
        self._adj = {}
        present = self.graph.present_vertices()
        if len(present):
            self.labels.set(present, present.astype(np.float64))
        rounds = self._propagate(self.labels, set(present.tolist()))
        return {"rounds": float(rounds)}

    def update(self, delta) -> Dict[str, float]:
        """Repair labels for one window's delta."""
        self._adj = {}
        rounds = 0
        repairs = 0
        if len(delta.became_present):
            self.labels.set(
                delta.became_present,
                delta.became_present.astype(np.float64),
            )
        gone = np.union1d(delta.became_absent, delta.dropped)
        if len(gone):
            self.labels.set(gone, np.full(len(gone), -1.0))
        gone_set = set(gone.tolist())

        # Removals first: every removed edge whose endpoints shared a
        # label may have split a component (or orphaned its old label).
        # ``verified`` dedupes work inside the window: once a full BFS
        # has re-anchored a component, later pairs touching it are free.
        if delta.num_removed:
            verified: Set[int] = set()
            pairs = np.unique(np.stack(
                [delta.removed_src, delta.removed_dst], axis=1), axis=0)
            live = [(int(u), int(w)) for u, w in pairs.tolist()]
            # Warm the adjacency memo and label cache for every endpoint
            # in one group call each; most pairs then resolve without
            # further PS traffic (reverse edge or shared neighbor).
            ends = np.unique(pairs)
            ends = ends[~np.isin(ends, np.asarray(sorted(gone_set),
                                                  dtype=np.int64))]
            self._labels_cache = {}
            if len(ends):
                self._neighbors(ends)
                for v, l in zip(ends.tolist(), self.labels.pull(ends)):
                    self._labels_cache[int(v)] = float(l)
            # Pairs the pre-filter can't decide need a real search; run
            # them *together*, level-synchronously, so each BFS level
            # costs one shared adjacency fetch across all pairs instead
            # of one per pair.
            undecided: List[Tuple[int, int]] = []
            for u, w in live:
                if u in gone_set or w in gone_set:
                    continue
                if self._labels_cache[u] != self._labels_cache[w]:
                    continue
                nu = set(self._adj[u].tolist())
                nw = set(self._adj[w].tolist())
                if w in nu or u in nw or (nu & nw):
                    continue
                undecided.append((u, w))
            conn = (self._batch_connectivity(undecided)
                    if undecided else {})
            for u, w in live:
                repairs += self._repair_removal(
                    u, w, gone_set, verified, conn)

        # Adds second: flood the smaller label through merged components.
        if delta.num_added:
            frontier = set(np.unique(np.concatenate(
                [delta.added_src, delta.added_dst])).tolist())
            frontier -= gone_set
            rounds = self._propagate(self.labels, frontier)
        return {"rounds": float(rounds), "repairs": float(repairs)}

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------

    def assignments(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, labels)`` for the present vertices."""
        present = self.graph.present_vertices()
        if len(present) == 0:
            return present, np.empty(0, dtype=np.int64)
        return present, self.labels.pull(present).astype(np.int64)

    def num_components(self) -> int:
        """Distinct components among present vertices."""
        _, labels = self.assignments()
        return len(np.unique(labels)) if len(labels) else 0

    def full_recompute(self) -> Tuple[np.ndarray, np.ndarray]:
        """From-scratch labeling on scratch PS state (cost yardstick)."""
        self._adj = {}  # a cold run pays its own adjacency pulls
        self._scratch_seq += 1
        name = f"{self.labels.name}.full{self._scratch_seq}"
        scratch = self.psctx.create_vector(
            name, self.graph.num_vertices, init=-1.0
        )
        present = self.graph.present_vertices()
        if len(present):
            scratch.set(present, present.astype(np.float64))
        self._propagate(scratch, set(present.tolist()))
        labels = (scratch.pull(present).astype(np.int64) if len(present)
                  else np.empty(0, dtype=np.int64))
        self.psctx.drop_matrix(name)
        return present, labels

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _neighbors(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Memoized undirected adjacency (one group call for misses)."""
        missing = sorted(set(int(v) for v in vertices.tolist())
                         - self._adj.keys())
        if missing:
            ms = np.asarray(missing, dtype=np.int64)
            for v, nb in zip(missing, self.graph.neighbors(ms)):
                self._adj[v] = nb
        return [self._adj[int(v)] for v in vertices.tolist()]

    def _propagate(self, labels, frontier: Set[int]) -> int:
        """Min-label flooding restricted to ``frontier``'s reach."""
        rounds = 0
        while frontier and rounds < self.max_rounds:
            vs = np.asarray(sorted(frontier), dtype=np.int64)
            own = labels.pull(vs)
            nbrs = self._neighbors(vs)
            lens = np.asarray([len(t) for t in nbrs], dtype=np.int64)
            frontier = set()
            if lens.sum() == 0:
                break
            flat = np.concatenate([t for t in nbrs if len(t)])
            nlab = labels.pull(flat)
            indptr = np.concatenate([[0], np.cumsum(lens)])
            changed_v: List[int] = []
            changed_l: List[float] = []
            spread: List[np.ndarray] = []
            for i, v in enumerate(vs.tolist()):
                if lens[i] == 0:
                    continue
                seg = nlab[indptr[i]:indptr[i + 1]]
                m = float(seg.min())
                if m < own[i]:
                    changed_v.append(v)
                    changed_l.append(m)
                    spread.append(nbrs[i])
            if changed_v:
                labels.set(np.asarray(changed_v, dtype=np.int64),
                           np.asarray(changed_l))
                frontier = set(np.unique(
                    np.concatenate(spread)).tolist())
            rounds += 1
            self.psctx.barrier()
        return rounds

    def _repair_removal(self, u: int, w: int, gone: Set[int],
                        verified: Set[int],
                        conn: Dict[Tuple[int, int],
                                   Tuple[bool, Set[int]]] | None = None
                        ) -> int:
        """Re-check one removed edge's component; returns 1 if repaired."""
        endpoints = [v for v in (u, w) if v not in gone]
        if not endpoints:
            return 0
        if len(endpoints) == 1:
            # One endpoint vanished: the survivor's component may have
            # split off or carry the gone vertex's id as a stale label;
            # one full sweep re-anchors it (skipped if already swept).
            v = endpoints[0]
            if v in verified:
                return 0
            comp = self._component(v)
            verified |= comp
            return self._relabel_if_stale(comp)
        if u in verified and w in verified:
            return 0
        lu = self._labels_cache[u]
        lw = self._labels_cache[w]
        if lu != lw:
            return 0  # already in different components
        # Cheap pre-check on the warmed memo: a surviving reverse edge
        # or a shared neighbor proves connectivity with no PS traffic.
        nu = set(self._adj[u].tolist())
        nw = set(self._adj[w].tolist())
        if w in nu or u in nw or (nu & nw):
            met, small = True, set()
        else:
            hit = None if conn is None else conn.get((u, w))
            met, small = (hit if hit is not None
                          else self._bidir_check(u, w))
        if met:
            # Still connected.  The shared label stays valid unless the
            # label vertex itself vanished this window.
            if lu not in gone:
                return 0
            comp = self._component(u)
            verified |= comp
            return self._relabel_if_stale(comp)
        # Genuine split; ``small`` is the exhausted side's full member
        # set — the cheap side, by construction of the alternating search.
        self._relabel(small)
        verified |= small
        other = w if w not in small else u
        if lu in gone or lu in small:
            # The big side lost its minimum; re-anchor it too.
            comp = self._component(other)
            verified |= comp
            self._relabel_if_stale(comp)
        return 1

    def _batch_connectivity(
        self, pairs: List[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], Tuple[bool, Set[int]]]:
        """Run many pair connectivity searches level-synchronously.

        Each pair runs the same alternating bidirectional search as
        :meth:`_bidir_check`, but all searches advance one level per
        iteration and the union of their frontier neighborhoods is
        prefetched into the memo with a single group call — PS rounds
        scale with the deepest search, not the number of pairs.
        """
        state: Dict[Tuple[int, int],
                    Tuple[Set[int], List[int], Set[int], List[int]]] = {}
        for u, w in pairs:
            state[(u, w)] = ({u}, [u], {w}, [w])
        out: Dict[Tuple[int, int], Tuple[bool, Set[int]]] = {}
        while state:
            need: Set[int] = set()
            for su, fu, sw, fw in state.values():
                need.update(fu if len(su) <= len(sw) else fw)
            missing = sorted(need - self._adj.keys())
            if missing:
                self._neighbors(np.asarray(missing, dtype=np.int64))
            for p in sorted(state):
                su, fu, sw, fw = state[p]
                if len(su) <= len(sw):
                    fu, met = self._expand(fu, su, sw)
                else:
                    fw, met = self._expand(fw, sw, su)
                if met:
                    out[p] = (True, set())
                    del state[p]
                elif not fu:
                    out[p] = (False, su)
                    del state[p]
                elif not fw:
                    out[p] = (False, sw)
                    del state[p]
                else:
                    state[p] = (su, fu, sw, fw)
        return out

    def _bidir_check(self, u: int, w: int) -> Tuple[bool, Set[int]]:
        """Are ``u`` and ``w`` still connected?  Alternating expansion
        from both ends, always growing the smaller reach; returns
        ``(True, {})`` on contact or ``(False, members)`` with the
        exhausted side's full component when the edge removal split it.
        """
        seen_u: Set[int] = {u}
        seen_w: Set[int] = {w}
        fr_u: List[int] = [u]
        fr_w: List[int] = [w]
        while fr_u and fr_w:
            if len(seen_u) <= len(seen_w):
                fr_u, met = self._expand(fr_u, seen_u, seen_w)
            else:
                fr_w, met = self._expand(fr_w, seen_w, seen_u)
            if met:
                return True, set()
        return False, seen_u if not fr_u else seen_w

    def _expand(self, frontier: List[int], seen: Set[int],
                other_seen: Set[int]) -> Tuple[List[int], bool]:
        """One BFS level; reports contact with the opposite side."""
        vs = np.asarray(sorted(frontier), dtype=np.int64)
        nbrs = self._neighbors(vs)
        nxt: Set[int] = set()
        for t in nbrs:
            nxt.update(t.tolist())
        if nxt & other_seen:
            return [], True
        nxt -= seen
        seen |= nxt
        return sorted(nxt), False

    def _component(self, start: int) -> Set[int]:
        """Full membership of ``start``'s component (batched BFS)."""
        seen: Set[int] = {start}
        frontier = [start]
        while frontier:
            frontier, _ = self._expand(frontier, seen, set())
        return seen

    def _relabel(self, members: Set[int]) -> int:
        """Label a component by its minimum member id."""
        if not members:
            return 0
        ids = np.asarray(sorted(members), dtype=np.int64)
        want = float(ids[0])
        self.labels.set(ids, np.full(len(ids), want))
        for v in ids.tolist():
            if v in self._labels_cache:
                self._labels_cache[v] = want
        return 1

    def _relabel_if_stale(self, members: Set[int]) -> int:
        """Re-anchor a component on its minimum; no-op when already so."""
        if not members:
            return 0
        ids = np.asarray(sorted(members), dtype=np.int64)
        current = self.labels.pull(ids)
        want = float(ids[0])
        for v in ids.tolist():
            if v in self._labels_cache:
                self._labels_cache[v] = want
        if (current == want).all():
            return 0
        self.labels.set(ids, np.full(len(ids), want))
        return 1
