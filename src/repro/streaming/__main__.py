"""``python -m repro.streaming`` — alias for ``repro-streaming``."""

import sys

from repro.streaming.cli import main

if __name__ == "__main__":
    sys.exit(main())
