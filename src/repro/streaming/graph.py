"""A live, mutable graph resident on the parameter server.

:class:`StreamingGraph` owns two PS neighbor tables — out-edges and
in-edges — and applies ordered mutation batches from the ingest stream
to both, reporting exactly what *actually* changed as a
:class:`GraphDelta`.  "Actually" matters: re-adding a present edge or
removing an absent one is a no-op under the tables' set semantics, and
the incremental algorithms must only repair state for real changes or
their invariants drift.

The delta also snapshots each mutated source's pre-window out-neighbor
list (pulled anyway for the presence check), which is precisely the
information delta-PageRank needs to repair its residual invariant
without rescanning the graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.common.metrics import (
    STREAM_EDGES_ADDED,
    STREAM_EDGES_LIVE_G,
    STREAM_EDGES_REMOVED,
    STREAM_VERTICES_DROPPED,
    MetricsRegistry,
)
from repro.core.blocks import build_neighbor_block
from repro.ingest.mutations import EDGE_ADD, EDGE_DEL, Mutation, group_runs


@dataclass
class GraphDelta:
    """What one applied mutation window actually changed.

    ``old_out`` maps every source vertex whose out-neighborhood changed
    to its *pre-window* out-neighbor array; ``became_present`` /
    ``became_absent`` track vertices crossing the degree-0 boundary
    (presence = endpoint of at least one live edge, the convention of
    the batch algorithms).
    """

    added_src: np.ndarray
    added_dst: np.ndarray
    removed_src: np.ndarray
    removed_dst: np.ndarray
    dropped: np.ndarray
    old_out: Dict[int, np.ndarray] = field(default_factory=dict)
    became_present: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))
    became_absent: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def num_added(self) -> int:
        return len(self.added_src)

    @property
    def num_removed(self) -> int:
        return len(self.removed_src)

    def touched(self) -> np.ndarray:
        """Every vertex adjacent to a change (sorted, unique)."""
        return np.unique(np.concatenate([
            self.added_src, self.added_dst,
            self.removed_src, self.removed_dst,
            self.dropped,
        ]))

    def is_empty(self) -> bool:
        return (self.num_added == 0 and self.num_removed == 0
                and len(self.dropped) == 0)


class StreamingGraph:
    """Directed graph on the PS, mutated in windows from an edge stream.

    Args:
        psctx: owning :class:`~repro.ps.context.PSContext`.
        num_vertices: vertex-id space of the underlying tables.
        name: prefix for the two tables (``{name}.out`` / ``{name}.in``).
        metrics: optional registry for the ``streaming.*`` counters.
    """

    def __init__(self, psctx, num_vertices: int, *, name: str = "stream",
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.psctx = psctx
        self.num_vertices = num_vertices
        self.out = psctx.create_neighbor_table(f"{name}.out", num_vertices)
        self.inc = psctx.create_neighbor_table(f"{name}.in", num_vertices)
        self.metrics = metrics
        self.num_edges = 0
        self._present: Set[int] = set()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def present_vertices(self) -> np.ndarray:
        """Vertices that are an endpoint of at least one live edge."""
        return np.asarray(sorted(self._present), dtype=np.int64)

    def neighbors(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Undirected adjacency: union of out- and in-neighbors."""
        outs = self.out.get(vertices)
        ins = self.inc.get(vertices)
        return [np.union1d(o, i) for o, i in zip(outs, ins)]

    def out_degrees(self, vertices: np.ndarray) -> np.ndarray:
        return self.out.degrees(vertices)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def apply(self, mutations: Iterable[Mutation]) -> GraphDelta:
        """Apply one ordered mutation batch; returns the effective delta."""
        added_s: List[int] = []
        added_d: List[int] = []
        removed_s: List[int] = []
        removed_d: List[int] = []
        dropped: List[int] = []
        old_out: Dict[int, np.ndarray] = {}

        for op, src, dst in group_runs(mutations):
            if op == EDGE_ADD:
                s, d = self._apply_edges(src, dst, old_out, add=True)
                added_s.extend(s.tolist())
                added_d.extend(d.tolist())
            elif op == EDGE_DEL:
                s, d = self._apply_edges(src, dst, old_out, add=False)
                removed_s.extend(s.tolist())
                removed_d.extend(d.tolist())
            else:
                s, d, doomed = self._apply_vertex_dels(src, old_out)
                removed_s.extend(s.tolist())
                removed_d.extend(d.tolist())
                dropped.extend(doomed.tolist())

        delta = GraphDelta(
            np.asarray(added_s, dtype=np.int64),
            np.asarray(added_d, dtype=np.int64),
            np.asarray(removed_s, dtype=np.int64),
            np.asarray(removed_d, dtype=np.int64),
            np.asarray(sorted(set(dropped)), dtype=np.int64),
            old_out=old_out,
        )
        self._update_presence(delta)
        if self.metrics is not None:
            self.metrics.inc(STREAM_EDGES_ADDED, delta.num_added)
            self.metrics.inc(STREAM_EDGES_REMOVED, delta.num_removed)
            self.metrics.inc(STREAM_VERTICES_DROPPED, len(delta.dropped))
            self.metrics.set_gauge(STREAM_EDGES_LIVE_G,
                                   float(self.num_edges))
        return delta

    # -- internals ------------------------------------------------------

    def _snapshot_old_out(self, vertices: np.ndarray,
                          old_out: Dict[int, np.ndarray]
                          ) -> List[np.ndarray]:
        """Current out-neighbors, recording first-touch pre-window state."""
        current = self.out.get(vertices)
        for v, nbrs in zip(vertices.tolist(), current):
            if int(v) not in old_out:
                old_out[int(v)] = np.array(nbrs, dtype=np.int64)
        return current

    def _apply_edges(self, src: np.ndarray, dst: np.ndarray,
                     old_out: Dict[int, np.ndarray], *, add: bool):
        """Apply one add- or remove-run; returns effective (src, dst)."""
        if len(src) == 0:
            return src, dst
        pairs = np.unique(np.stack([src, dst], axis=1), axis=0)
        src, dst = pairs[:, 0], pairs[:, 1]
        uniq, inverse = np.unique(src, return_inverse=True)
        current = self._snapshot_old_out(uniq, old_out)
        present = np.zeros(len(src), dtype=bool)
        for i, table in enumerate(current):
            mask = inverse == i
            present[mask] = np.isin(dst[mask], table)
        effective = ~present if add else present
        src, dst = src[effective], dst[effective]
        if len(src) == 0:
            return src, dst
        fwd = build_neighbor_block(src, dst, dedupe=True)
        rev = build_neighbor_block(dst, src, dedupe=True)
        if add:
            self.out.push(fwd.vertices, fwd.neighbor_arrays())
            self.inc.push(rev.vertices, rev.neighbor_arrays())
            self.num_edges += len(src)
        else:
            self.out.remove(fwd.vertices, fwd.neighbor_arrays())
            self.inc.remove(rev.vertices, rev.neighbor_arrays())
            self.num_edges -= len(src)
        return src, dst

    def _apply_vertex_dels(self, vertices: np.ndarray,
                           old_out: Dict[int, np.ndarray]):
        """Drop vertices with all incident edges; returns removed edges."""
        doomed = np.unique(vertices)
        outs = self._snapshot_old_out(doomed, old_out)
        ins = self.inc.get(doomed)
        # In-neighbors lose an out-edge: snapshot their pre-state too.
        in_union = np.unique(np.concatenate(
            [t for t in ins if len(t)] or [np.empty(0, dtype=np.int64)]
        ))
        in_union = np.setdiff1d(in_union, doomed)
        if len(in_union):
            self._snapshot_old_out(in_union, old_out)
        removed: Set[tuple] = set()
        for v, out_n, in_n in zip(doomed.tolist(), outs, ins):
            for x in out_n.tolist():
                removed.add((int(v), int(x)))
            for u in in_n.tolist():
                removed.add((int(u), int(v)))
        # Detach: v leaves the in-tables of its out-neighbors and the
        # out-tables of its in-neighbors, then both of v's own tables go.
        out_lens = np.asarray([len(t) for t in outs], dtype=np.int64)
        in_lens = np.asarray([len(t) for t in ins], dtype=np.int64)
        if out_lens.sum():
            block = build_neighbor_block(
                np.concatenate([t for t in outs if len(t)]),
                np.repeat(doomed, out_lens), dedupe=True,
            )
            self.inc.remove(block.vertices, block.neighbor_arrays())
        if in_lens.sum():
            block = build_neighbor_block(
                np.concatenate([t for t in ins if len(t)]),
                np.repeat(doomed, in_lens), dedupe=True,
            )
            self.out.remove(block.vertices, block.neighbor_arrays())
        self.out.drop(doomed)
        self.inc.drop(doomed)
        self.num_edges -= len(removed)
        if removed:
            pairs = sorted(removed)
            return (np.asarray([s for s, _ in pairs], dtype=np.int64),
                    np.asarray([d for _, d in pairs], dtype=np.int64),
                    doomed)
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                doomed)

    def _update_presence(self, delta: GraphDelta) -> None:
        """Maintain the live-vertex set; fill the delta's crossings."""
        became_present: List[int] = []
        for v in np.unique(np.concatenate(
                [delta.added_src, delta.added_dst])).tolist():
            if v not in self._present:
                self._present.add(v)
                became_present.append(v)
        candidates = np.unique(np.concatenate([
            delta.removed_src, delta.removed_dst, delta.dropped,
        ]))
        became_absent: List[int] = []
        if len(candidates):
            total = (self.out.degrees(candidates)
                     + self.inc.degrees(candidates))
            for v, deg in zip(candidates.tolist(), total.tolist()):
                if deg == 0 and v in self._present:
                    self._present.discard(v)
                    became_absent.append(v)
        delta.became_present = np.asarray(became_present, dtype=np.int64)
        delta.became_absent = np.asarray(sorted(became_absent),
                                         dtype=np.int64)
