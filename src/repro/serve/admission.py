"""Bounded admission queue with priority order and deadline eviction.

The queue is the only buffer between the request generator and the PS
lookup path, and it is *bounded*: when full, the lowest-priority /
latest-deadline entry is evicted (or the newcomer rejected if it is
itself the worst), and at drain time entries whose deadline has already
passed are evicted instead of served — a stale recommendation is worth
less than the capacity it occupies.

Every admission decision produces either a served request or a
:class:`DropRecord` with an explicit reason, so the plane can prove the
conservation law the chaos tests assert: ``offered == served + dropped``
— no request is ever silently lost, even mid-failover.

Ordering is total and deterministic: ``(-priority, deadline_s, seq)`` —
highest priority first, then earliest deadline, then arrival order.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.serve.workload import Request

#: Drop reasons recorded by the plane (queue + limiter + gate).
DROP_REASONS = (
    "rate_limited",   # tenant token bucket empty at arrival
    "backpressure",   # watermark gate closed to this priority class
    "queue_full",     # bounded queue evicted the worst entry
    "deadline",       # entry expired before it could be served
)


@dataclass(frozen=True)
class DropRecord:
    """One request the plane dropped, and why."""

    seq: int
    tenant: str
    reason: str
    sim_time_s: float

    def __post_init__(self) -> None:
        if self.reason not in DROP_REASONS:
            raise ConfigError(
                f"unknown drop reason {self.reason!r}; choose from "
                f"{DROP_REASONS}"
            )


def _order_key(request: Request) -> Tuple[int, float, int]:
    return (-request.priority, request.deadline_s, request.seq)


class AdmissionQueue:
    """Bounded priority queue of pending requests.

    Args:
        capacity: maximum queued requests (>= 1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        self.capacity = capacity
        #: Sorted list of (order_key, request); front is served first.
        self._entries: List[Tuple[Tuple[int, float, int], Request]] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        """Current number of queued requests."""
        return len(self._entries)

    def offer(self, request: Request) -> Optional[Request]:
        """Enqueue ``request``; returns the victim evicted to make room.

        When the queue is full the worst entry — lowest priority, then
        latest deadline — makes way; if the newcomer is itself the worst,
        it is returned unqueued.  ``None`` means nothing was dropped.
        """
        key = _order_key(request)
        if len(self._entries) >= self.capacity:
            worst_key, worst = self._entries[-1]
            if key >= worst_key:
                return request
            self._entries.pop()
            insort(self._entries, (key, request))
            return worst
        insort(self._entries, (key, request))
        return None

    def drain(self, limit: int, now_s: float
              ) -> Tuple[List[Request], List[Request]]:
        """Dequeue up to ``limit`` servable requests at sim-time ``now_s``.

        Returns:
            ``(batch, expired)`` — ``batch`` in priority order, ready to
            serve; ``expired`` entries hit their deadline while queued and
            must be recorded as evictions by the caller.
        """
        batch: List[Request] = []
        expired: List[Request] = []
        kept_from = 0
        while kept_from < len(self._entries) and len(batch) < limit:
            _, request = self._entries[kept_from]
            kept_from += 1
            if request.deadline_s < now_s:
                expired.append(request)
            else:
                batch.append(request)
        if kept_from:
            del self._entries[:kept_from]
        return batch, expired

    def expire(self, now_s: float) -> List[Request]:
        """Remove every queued entry whose deadline has passed."""
        expired = [r for _, r in self._entries if r.deadline_s < now_s]
        if expired:
            self._entries = [
                e for e in self._entries if e[1].deadline_s >= now_s
            ]
        return expired
