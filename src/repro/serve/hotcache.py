"""Hot-key result cache for the serving plane.

A thin serving-facing layer over :class:`repro.ps.cache.PullCache` with
the capacity bound always on: under Zipfian skew a cache holding a few
percent of the key space absorbs the majority of lookups, so the PS only
sees the cold tail.  Unlike the training-path pull caches the hot cache
is *not* epoch-scoped — no barriers run while serving, so entries live
until LRU pressure evicts them (epoch is pinned to 0 with staleness 0).

Counters land in the shared registry under the ``serve.cache.*`` names so
the dashboard and reports can show hit rate and eviction churn; the
wrapped cache's own ``ps.cache.evictions`` counter is left unwired here
to keep the training-path and serving-path eviction counts separate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.common.metrics import (
    SERVE_CACHE_EVICTIONS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    MetricsRegistry,
)
from repro.ps.cache import PullCache


class HotKeyCache:
    """Capacity-bounded LRU cache of served rows.

    Args:
        capacity: maximum cached rows (>= 1); typically a few percent of
            the key space.
        metrics: optional shared registry for the ``serve.cache.*``
            counters.
    """

    def __init__(self, capacity: int,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._cache = PullCache(staleness=0, capacity=capacity)
        self._metrics = metrics

    def lookup(self, keys: np.ndarray,
               col: Optional[int] = None) -> Tuple[np.ndarray, List]:
        """Split ``keys`` into cached and missing.

        Returns ``(mask, values)`` aligned with ``keys``; ``mask[i]`` True
        when the row came from cache.
        """
        mask, values = self._cache.lookup(np.asarray(keys), col, epoch=0)
        if self._metrics is not None:
            hits = int(mask.sum())
            self._metrics.inc(SERVE_CACHE_HITS, hits)
            self._metrics.inc(SERVE_CACHE_MISSES, len(mask) - hits)
        return mask, values

    def store(self, keys: np.ndarray, values: np.ndarray,
              col: Optional[int] = None) -> None:
        """Insert freshly pulled rows, evicting LRU entries when full."""
        before = self._cache.stats.evictions
        self._cache.store(np.asarray(keys), col, values, epoch=0)
        if self._metrics is not None:
            evicted = self._cache.stats.evictions - before
            if evicted:
                self._metrics.inc(SERVE_CACHE_EVICTIONS, evicted)

    def clear(self) -> None:
        """Drop every entry (after a recovery rollback the rows may be stale)."""
        self._cache.clear()

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of lookups served from cache."""
        return self._cache.stats.hit_rate

    @property
    def stats(self):
        """The underlying :class:`repro.ps.cache.CacheStats`."""
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)
