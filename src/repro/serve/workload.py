"""Seeded request workloads: Zipfian key skew, tenant mix, sim-time arrivals.

Serving traffic at Tencent scale is dominated by two properties the
generator reproduces deterministically:

* **key skew** — a small set of hot users/items receives most lookups.
  Keys are drawn from a truncated Zipf distribution over the model's key
  space (probability of key ``k`` proportional to ``1 / (k+1)**s``), the
  standard model for social-graph access skew and the reason a small
  hot-key cache absorbs most of the load.
* **tenant mix** — several downstream products share the plane with
  different request rates, priorities and deadlines.

Arrivals follow a merged Poisson process on the *simulated* clock: the
inter-arrival gaps are exponential draws from one seeded generator, so a
seed fully determines every request's tenant, key and arrival time and a
double-run serves bit-identical traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import derive_seed, make_rng


@dataclass(frozen=True)
class TenantSpec:
    """One downstream product sharing the serving plane.

    Attributes:
        name: tenant identifier ("feeds", "ads", ...).
        model: PS matrix/vector name this tenant looks up.
        weight: share of the merged arrival process.
        priority: admission priority; higher is served first and is
            protected longer under backpressure.
        deadline_s: per-request staleness bound — a request still queued
            this many simulated seconds after its arrival is evicted
            rather than served (a stale recommendation is worthless).
        rate_limit: token-bucket refill rate in requests per simulated
            second; ``0`` disables rate limiting for the tenant.
        burst: token-bucket capacity (tokens), ``>= 1``.
    """

    name: str
    model: str
    weight: float = 1.0
    priority: int = 1
    deadline_s: float = 5.0
    rate_limit: float = 0.0
    burst: int = 32

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ConfigError(f"tenant {self.name}: weight must be > 0")
        if self.deadline_s <= 0.0:
            raise ConfigError(f"tenant {self.name}: deadline_s must be > 0")
        if self.rate_limit < 0.0:
            raise ConfigError(f"tenant {self.name}: rate_limit must be >= 0")
        if self.burst < 1:
            raise ConfigError(f"tenant {self.name}: burst must be >= 1")


@dataclass
class Request:
    """One lookup request flowing through the plane.

    Attributes:
        seq: global arrival sequence number (deterministic tie-breaker).
        tenant: owning tenant's name.
        model: PS matrix/vector to look up.
        key: row key to fetch.
        arrival_s: sim-time instant the request enters the plane.
        deadline_s: absolute sim-time after which the request is stale.
        priority: admission priority inherited from the tenant.
    """

    seq: int
    tenant: str
    model: str
    key: int
    arrival_s: float
    deadline_s: float
    priority: int


def zipf_probabilities(key_space: int, s: float) -> np.ndarray:
    """Truncated-Zipf pmf over ``0 .. key_space-1`` (hot keys first)."""
    if key_space < 1:
        raise ConfigError("key_space must be >= 1")
    if s < 0.0:
        raise ConfigError("zipf exponent must be >= 0")
    ranks = np.arange(1, key_space + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


@dataclass
class RequestGenerator:
    """Seeded generator of one serving workload.

    Args:
        tenants: the tenant mix; at least one.
        key_space: number of servable keys per model (keys are drawn in
            ``0 .. key_space-1``; hot keys are the low ids).
        zipf_s: skew exponent; 0 is uniform, ~1.1 is social-graph-like.
        rate: merged arrival rate in requests per simulated second.
        seed: workload seed; fully determines the traffic.
    """

    tenants: Sequence[TenantSpec]
    key_space: int
    zipf_s: float = 1.1
    rate: float = 1000.0
    seed: int = 0
    _pmf: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ConfigError("need at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if self.rate <= 0.0:
            raise ConfigError("rate must be > 0")
        self._pmf = zipf_probabilities(self.key_space, self.zipf_s)

    def generate(self, num_requests: int,
                 start_s: float = 0.0) -> List[Request]:
        """Materialize ``num_requests`` requests, sorted by arrival.

        Arrival gaps, tenant choices and keys each use an independent
        derived stream so changing one knob (say the tenant mix) does not
        reshuffle the others.
        """
        if num_requests < 0:
            raise ConfigError("num_requests must be >= 0")
        gaps = make_rng(derive_seed(self.seed, "serve-arrivals")).exponential(
            1.0 / self.rate, size=num_requests)
        arrivals = start_s + np.cumsum(gaps)
        weights = np.array([t.weight for t in self.tenants])
        tenant_idx = make_rng(derive_seed(self.seed, "serve-tenants")).choice(
            len(self.tenants), size=num_requests, p=weights / weights.sum())
        keys = make_rng(derive_seed(self.seed, "serve-keys")).choice(
            self.key_space, size=num_requests, p=self._pmf)
        out: List[Request] = []
        for i in range(num_requests):
            tenant = self.tenants[int(tenant_idx[i])]
            t = float(arrivals[i])
            out.append(Request(
                seq=i, tenant=tenant.name, model=tenant.model,
                key=int(keys[i]), arrival_s=t,
                deadline_s=t + tenant.deadline_s,
                priority=tenant.priority,
            ))
        return out

    def tenant_map(self) -> Dict[str, TenantSpec]:
        """Tenant specs keyed by name."""
        return {t.name: t for t in self.tenants}


def default_tenants(model: str,
                    second_model: Optional[str] = None) -> List[TenantSpec]:
    """The stock two-tenant mix used by the CLI and examples.

    ``feeds`` is the latency-critical high-priority product; ``batch-reco``
    is a best-effort consumer that backpressure sheds first.
    """
    return [
        TenantSpec(name="feeds", model=model, weight=3.0, priority=2,
                   deadline_s=5.0),
        TenantSpec(name="batch-reco", model=second_model or model,
                   weight=1.0, priority=1, deadline_s=10.0,
                   rate_limit=400.0, burst=64),
    ]
