"""The serving plane: PS-resident models behind admission-controlled lookups.

:class:`ServingPlane` replays a generated request stream against matrices
and vectors living on the parameter servers, entirely on the simulated
clock.  The loop runs in fixed *service quanta* (default 50 sim-ms): each
quantum admits every request that arrived inside it — through the tenant
rate limiter, the watermark backpressure gate, and the bounded priority
queue, recording a :class:`~repro.serve.admission.DropRecord` for every
casualty — then drains one micro-batch, serves it with the hot-key cache
in front of agent pulls, and observes the per-request latency
(completion minus arrival) into the ``serve.latency_s`` histogram.

Failure behavior rides the existing machinery: a chaos ``kill_server``
makes the next pull raise, the agent auto-recovers through the PS master
(charging the full restart delay to the driver clock), and the plane
notices the bumped ``recovery_generation`` — it flushes the hot cache,
marks itself *degraded* until the backlog drains, and mirrors latencies
observed while degraded into ``serve.latency.degraded_s`` so reports can
quote a degraded-mode p99.  Every quantum ticks the telemetry collector
and every served batch fires the task hooks (stage id ``-1``, kind
``"serve"``), so SLO burn-rate alerting and ``after_tasks`` fault
triggers both work mid-traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.metrics import (
    SERVE_BATCH_SIZE_H,
    SERVE_BATCHES,
    SERVE_DEGRADED_LATENCY_H,
    SERVE_EVICTED_CAPACITY,
    SERVE_EVICTED_DEADLINE,
    SERVE_LATENCY_H,
    SERVE_QUEUE_DEPTH_G,
    SERVE_RATE_LIMITED,
    SERVE_REQUESTS,
    SERVE_SERVED,
    SERVE_SHED,
)
from repro.obs.slo import SloSpec
from repro.ps.matrix import PSEmbedding
from repro.serve.admission import AdmissionQueue, DropRecord
from repro.serve.hotcache import HotKeyCache
from repro.serve.limiter import TenantRateLimiter, WatermarkGate
from repro.serve.workload import Request, TenantSpec

#: Serving stage id passed to task hooks (no dataflow stage owns it).
SERVE_STAGE_ID = -1


def default_serve_slos() -> List[SloSpec]:
    """The stock serving SLO: 99% of lookups complete within 250 sim-ms.

    Healthy quanta finish far below the threshold; a PS restart parks
    whole batches behind a ~30 sim-s recovery, so the burn rate saturates
    both alert windows and the ``serve-latency`` alert fires between
    injection and backlog drain.
    """
    return [
        SloSpec(
            name="serve-latency",
            description="online lookups complete within 250 sim-ms",
            kind="latency",
            objective=0.99,
            histogram=SERVE_LATENCY_H,
            threshold_s=0.25,
            short_windows=1,
            long_windows=3,
            burn_threshold=5.0,
        ),
    ]


@dataclass
class ServingReport:
    """Aggregate outcome of one serving run (all times simulated)."""

    offered: int
    served: int
    drops: Dict[str, int]
    p50_s: float
    p99_s: float
    degraded_p99_s: Optional[float]
    cache_hit_rate: float
    batches: int
    gate_transitions: int
    peak_depth: int
    recoveries: int
    start_s: float
    end_s: float
    drop_records: List[DropRecord] = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Total requests dropped, over every reason."""
        return sum(self.drops.values())

    def conserved(self) -> bool:
        """The plane's conservation law: nothing vanished silently."""
        return self.offered == self.served + self.dropped

    def to_dict(self) -> dict:
        """JSON-friendly summary (drop records elided)."""
        return {
            "offered": self.offered,
            "served": self.served,
            "drops": dict(self.drops),
            "p50_s": self.p50_s,
            "p99_s": self.p99_s,
            "degraded_p99_s": self.degraded_p99_s,
            "cache_hit_rate": self.cache_hit_rate,
            "batches": self.batches,
            "gate_transitions": self.gate_transitions,
            "peak_depth": self.peak_depth,
            "recoveries": self.recoveries,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "conserved": self.conserved(),
        }


class ServingPlane:
    """Admission-controlled lookup service over PS-resident models.

    Args:
        psctx: the PS context holding the served matrices.
        tenants: tenant specs (limits/priorities are read from these).
        queue_capacity: bounded admission-queue size.
        batch_size: max requests served per quantum.
        service_interval_s: scheduling quantum on the sim clock.
        cache_capacity: hot-key cache entries per model.
        high_watermark / low_watermark: backpressure hysteresis depths;
            default to 75% / 25% of the queue capacity.
    """

    def __init__(self, psctx, tenants: Sequence[TenantSpec], *,
                 queue_capacity: int = 512, batch_size: int = 256,
                 service_interval_s: float = 0.05,
                 cache_capacity: int = 256,
                 high_watermark: Optional[int] = None,
                 low_watermark: Optional[int] = None) -> None:
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if service_interval_s <= 0.0:
            raise ConfigError("service_interval_s must be > 0")
        self.psctx = psctx
        self.spark = psctx.spark
        self.tenants = list(tenants)
        self.batch_size = batch_size
        self.service_interval_s = service_interval_s
        self.queue = AdmissionQueue(queue_capacity)
        self.limiter = TenantRateLimiter(self.tenants)
        protect = max(t.priority for t in self.tenants)
        self.gate = WatermarkGate(
            high=(high_watermark if high_watermark is not None
                  else max(2, (queue_capacity * 3) // 4)),
            low=(low_watermark if low_watermark is not None
                 else max(1, queue_capacity // 4)),
            protect_priority=protect,
        )
        metrics = self.spark.metrics
        self._pulls = {}
        self._caches: Dict[str, HotKeyCache] = {}
        for tenant in self.tenants:
            if tenant.model not in self._pulls:
                handle = psctx.matrix(tenant.model)
                # Embeddings shard by column and only serve whole rows.
                self._pulls[tenant.model] = (
                    handle.pull_rows if isinstance(handle, PSEmbedding)
                    else handle.pull)
                self._caches[tenant.model] = HotKeyCache(
                    cache_capacity, metrics=metrics)
        self.drop_records: List[DropRecord] = []
        self.peak_depth = 0
        self._degraded = False
        self._recoveries_seen = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def _drop(self, request: Request, reason: str, now_s: float,
              counter: str) -> None:
        self.drop_records.append(DropRecord(
            seq=request.seq, tenant=request.tenant, reason=reason,
            sim_time_s=now_s,
        ))
        self.spark.metrics.inc(counter)

    def _admit(self, request: Request) -> None:
        metrics = self.spark.metrics
        metrics.inc(SERVE_REQUESTS)
        if not self.limiter.admit(request):
            self._drop(request, "rate_limited", request.arrival_s,
                       SERVE_RATE_LIMITED)
            return
        self.gate.update(self.queue.depth)
        if not self.gate.admits(request):
            self._drop(request, "backpressure", request.arrival_s,
                       SERVE_SHED)
            return
        victim = self.queue.offer(request)
        if victim is not None:
            self._drop(victim, "queue_full", request.arrival_s,
                       SERVE_EVICTED_CAPACITY)
        self.peak_depth = max(self.peak_depth, self.queue.depth)

    # ------------------------------------------------------------------
    # service
    # ------------------------------------------------------------------

    def _serve_batch(self, batch: List[Request], batch_index: int) -> None:
        clock = self.spark.driver_clock
        metrics = self.spark.metrics
        tags = {"batch": batch_index, "size": len(batch)}
        with self.spark.tracer.clock_span("driver", "serve",
                                          "serve.batch", clock, tags):
            by_model: Dict[str, List[int]] = {}
            for request in batch:
                by_model.setdefault(request.model, []).append(request.key)
            for model, keys in sorted(by_model.items()):
                cache = self._caches[model]
                ukeys = np.unique(np.asarray(keys, dtype=np.int64))
                mask, _ = cache.lookup(ukeys)
                missing = ukeys[~mask]
                if len(missing):
                    values = self._pulls[model](missing)
                    cache.store(missing, np.asarray(values))
        completion_s = clock.now_s
        generation = self.psctx.recovery_generation
        if generation != self._recoveries_seen:
            # A pull inside this batch tripped auto-recovery: the cached
            # rows may predate the restored snapshot, and everything
            # queued behind the outage is now late.
            self._recoveries_seen = generation
            self._degraded = True
            for cache in self._caches.values():
                cache.clear()
        for request in batch:
            latency = completion_s - request.arrival_s
            metrics.observe(SERVE_LATENCY_H, latency)
            if self._degraded:
                metrics.observe(SERVE_DEGRADED_LATENCY_H, latency)
        metrics.inc(SERVE_SERVED, len(batch))
        metrics.inc(SERVE_BATCHES)
        metrics.observe(SERVE_BATCH_SIZE_H, len(batch))
        self.spark.notify_task_complete(SERVE_STAGE_ID, batch_index, "serve")

    # ------------------------------------------------------------------
    # the serving loop
    # ------------------------------------------------------------------

    def run(self, requests: Sequence[Request]) -> ServingReport:
        """Serve the full request stream; returns the aggregate report.

        Requests must be sorted by arrival time (``RequestGenerator``
        output already is).
        """
        clock = self.spark.driver_clock
        metrics = self.spark.metrics
        start_s = clock.now_s
        pending = list(requests)
        i, n = 0, len(pending)
        batch_index = 0
        while i < n or self.queue.depth:
            if (self.queue.depth == 0 and i < n
                    and pending[i].arrival_s > clock.now_s):
                # Idle: jump straight to the next arrival.
                clock.advance_to(pending[i].arrival_s)
            quantum_end = clock.now_s + self.service_interval_s
            while i < n and pending[i].arrival_s <= quantum_end:
                self._admit(pending[i])
                i += 1
            clock.advance_to(quantum_end)
            batch, expired = self.queue.drain(self.batch_size, clock.now_s)
            for request in expired:
                self._drop(request, "deadline", clock.now_s,
                           SERVE_EVICTED_DEADLINE)
            if batch:
                self._serve_batch(batch, batch_index)
                batch_index += 1
            if self._degraded and self.queue.depth == 0:
                self._degraded = False
            self.gate.update(self.queue.depth)
            metrics.set_gauge(SERVE_QUEUE_DEPTH_G, self.queue.depth)
            self.spark.notify_tick(clock.now_s)
        return self._report(start_s, clock.now_s, batch_index)

    def _report(self, start_s: float, end_s: float,
                batches: int) -> ServingReport:
        metrics = self.spark.metrics
        latency = metrics.histogram(SERVE_LATENCY_H)
        degraded = metrics.histogram(SERVE_DEGRADED_LATENCY_H)
        drops: Dict[str, int] = {}
        for record in self.drop_records:
            drops[record.reason] = drops.get(record.reason, 0) + 1
        hits = sum(c.stats.hits for c in self._caches.values())
        misses = sum(c.stats.misses for c in self._caches.values())
        return ServingReport(
            offered=int(metrics.get(SERVE_REQUESTS)),
            served=int(metrics.get(SERVE_SERVED)),
            drops=drops,
            p50_s=latency.percentile(50.0) if latency.count else 0.0,
            p99_s=latency.percentile(99.0) if latency.count else 0.0,
            degraded_p99_s=(degraded.percentile(99.0)
                            if degraded.count else None),
            cache_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            batches=batches,
            gate_transitions=self.gate.transitions,
            peak_depth=self.peak_depth,
            recoveries=self._recoveries_seen,
            start_s=start_s,
            end_s=end_s,
            drop_records=list(self.drop_records),
        )
