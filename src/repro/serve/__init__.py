"""Online serving plane for PS-resident artifacts (``repro.serve``).

Batch training leaves ranks and embeddings on the parameter servers;
this package exposes them to simulated request traffic on the
deterministic sim clock — the Tencent production setting the paper
motivates (Sec. I), where trained vectors feed online recommenders.

Pieces:

* :mod:`repro.serve.workload` — seeded request generator (Zipfian key
  skew, tenant mix, Poisson arrivals on sim time).
* :mod:`repro.serve.limiter` — per-tenant token buckets and the
  queue-watermark backpressure gate.
* :mod:`repro.serve.admission` — bounded priority queue with
  deadline-based eviction.
* :mod:`repro.serve.hotcache` — capacity-bounded LRU result cache
  layered over :class:`repro.ps.cache.PullCache`.
* :mod:`repro.serve.plane` — the :class:`ServingPlane` orchestrator
  routing lookups to PS servers through the existing RPC layer.
* :mod:`repro.serve.cli` — the ``repro-serve`` train → snapshot →
  serve → report pipeline.
"""

from repro.serve.admission import AdmissionQueue, DropRecord
from repro.serve.hotcache import HotKeyCache
from repro.serve.limiter import TenantRateLimiter, TokenBucket, WatermarkGate
from repro.serve.plane import ServingPlane, ServingReport, default_serve_slos
from repro.serve.workload import Request, RequestGenerator, TenantSpec

__all__ = [
    "AdmissionQueue",
    "DropRecord",
    "HotKeyCache",
    "Request",
    "RequestGenerator",
    "ServingPlane",
    "ServingReport",
    "TenantRateLimiter",
    "TenantSpec",
    "TokenBucket",
    "WatermarkGate",
    "default_serve_slos",
]
