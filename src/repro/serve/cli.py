"""``repro-serve`` — train, snapshot, then serve a model from the PS.

The end-to-end serving pipeline on one simulated cluster::

    repro-serve --requests 100000 --seed 7
    repro-serve --requests 50000 --chaos --telemetry serve.json \\
                --dashboard serve.html --require-alert 1

Four phases, all on the sim clock:

1. **train** — PageRank over a generated power-law graph (or ``--input``
   edge list);
2. **snapshot** — ranks are published into a dedicated PS vector and
   checkpointed so serving survives a shard kill;
3. **serve** — a seeded Zipfian multi-tenant workload is replayed
   through the admission-controlled :class:`~repro.serve.plane.ServingPlane`,
   optionally under a chaos schedule (``--chaos`` with no argument uses
   the built-in kill-one-serving-shard schedule);
4. **report** — latency percentiles, drop accounting, cache hit rate and
   (with telemetry on) the SLO/alert dashboard.

``--require-alert N`` makes the command a smoke check: it fails unless at
least N SLO alerts fired — CI runs it with ``--chaos`` to prove the
``serve-latency`` SLO actually pages during an outage.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import numpy as np

from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
from repro.common.config import GB, ClusterConfig
from repro.common.rng import derive_seed
from repro.core.algorithms import PageRank
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner
from repro.obs import (
    NOOP_TRACER,
    TelemetryCollector,
    Tracer,
    build_telemetry_doc,
    write_chrome_trace,
)
from repro.obs.dashboard import write_dashboard
from repro.obs.slo import default_slos
from repro.serve.plane import ServingPlane, default_serve_slos
from repro.serve.workload import RequestGenerator, default_tenants

#: PS vector the trained ranks are published into for serving.
SERVE_MODEL = "serve.ranks"


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Train a model, snapshot it on the PS, and serve a "
                    "seeded Zipfian workload against it.",
        epilog="See docs/serving.md for the full pipeline.",
    )
    parser.add_argument("--input", default=None,
                        help="edge-list file 'src<TAB>dst'; default is a "
                             "generated power-law graph")
    parser.add_argument("--vertices", type=int, default=2000,
                        help="generated-graph vertex count")
    parser.add_argument("--edges", type=int, default=8000,
                        help="generated-graph edge count")
    parser.add_argument("--iterations", type=int, default=10,
                        help="PageRank iterations in the train phase")
    parser.add_argument("--requests", type=int, default=100_000,
                        help="serving requests to generate")
    parser.add_argument("--rate", type=float, default=1000.0,
                        help="merged arrival rate (requests per sim-s)")
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf skew exponent of the key distribution")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--executors", type=int, default=4)
    parser.add_argument("--servers", type=int, default=2)
    parser.add_argument("--executor-gb", type=float, default=1.0)
    parser.add_argument("--server-gb", type=float, default=1.0)
    parser.add_argument("--queue-capacity", type=int, default=512)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--cache-capacity", type=int, default=None,
                        help="hot-key cache entries per model (default: "
                             "10%% of the key space)")
    parser.add_argument("--chaos", nargs="?", const="auto", default=None,
                        metavar="SCHEDULE.JSON",
                        help="inject faults while serving; with no "
                             "argument, kill one serving shard mid-traffic")
    parser.add_argument("--chaos-after", type=int, default=100,
                        metavar="BATCHES",
                        help="served batches before the built-in kill-shard "
                             "fault fires (with bare --chaos)")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="write the telemetry document as JSON")
    parser.add_argument("--dashboard", default=None, metavar="PATH",
                        help="write the HTML dashboard")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON of the run")
    parser.add_argument("--report-json", default=None, metavar="PATH",
                        help="write the serving report as JSON")
    parser.add_argument("--require-alert", type=int, default=0,
                        metavar="N",
                        help="exit non-zero unless >= N SLO alerts fired")
    return parser


def default_kill_shard_schedule(seed: int,
                                after_batches: int = 100) -> FaultSchedule:
    """The stock serving chaos: kill PS server 0 after N served batches."""
    return FaultSchedule([
        FaultSpec("kill_server", index=0, after_tasks=after_batches,
                  task_kind="serve"),
    ], seed=seed)


def _load_edges(ctx: PSGraphContext, args: argparse.Namespace) -> None:
    from repro.datasets.generators import powerlaw_graph
    from repro.datasets.tencent import write_edges

    if args.input is not None:
        with open(args.input) as f:
            lines = [ln.strip() for ln in f if ln.strip()]
        ctx.hdfs.write_text("/input/edges/part-00000", lines)
        return
    src, dst = powerlaw_graph(
        args.vertices, args.edges, seed=derive_seed(args.seed, "serve-graph"))
    write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)


def _publish_ranks(ctx: PSGraphContext, result) -> int:
    """Move the trained ranks into the serving vector; returns key space."""
    rows = result.output.rdd.collect()
    keys = np.array([r[0] for r in rows], dtype=np.int64)
    values = np.array([r[1] for r in rows], dtype=np.float64)
    key_space = int(keys.max()) + 1 if len(keys) else 1
    vector = ctx.ps.create_vector(SERVE_MODEL, key_space)
    vector.set(keys, values)
    # Snapshot *everything* resident on the servers: auto-recovery
    # restores every matrix, so an uncheckpointed leftover from training
    # would turn a mid-serving shard kill into an unrecoverable fault.
    ctx.ps.checkpoint_all()
    return key_space


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    cluster = ClusterConfig(
        num_executors=args.executors,
        executor_mem_bytes=int(args.executor_gb * GB),
        num_servers=args.servers,
        server_mem_bytes=int(args.server_gb * GB),
    )
    tracing = (args.trace is not None or args.telemetry is not None
               or args.dashboard is not None)
    tracer = Tracer() if tracing else NOOP_TRACER
    if args.chaos is None:
        schedule = None
    elif args.chaos == "auto":
        schedule = default_kill_shard_schedule(args.seed,
                                               after_batches=args.chaos_after)
    else:
        schedule = FaultSchedule.load(args.chaos)
    rc = 0
    with PSGraphContext(cluster, app_name="repro-serve",
                        tracer=tracer) as ctx:
        # -- train ------------------------------------------------------
        _load_edges(ctx, args)
        result = GraphRunner(ctx).run(
            PageRank(max_iterations=args.iterations), "/input/edges")
        train_end_s = ctx.sim_time()
        print(f"train     : pagerank x{result.iterations} iterations, "
              f"{train_end_s:.3f} sim-s")
        # -- snapshot ---------------------------------------------------
        key_space = _publish_ranks(ctx, result)
        print(f"snapshot  : {SERVE_MODEL}[{key_space}] checkpointed")
        # -- serve ------------------------------------------------------
        collector = TelemetryCollector(
            ctx.metrics, tracer,
            slos=default_slos() + default_serve_slos(),
        ).attach(ctx.spark)
        tenants = default_tenants(SERVE_MODEL)
        generator = RequestGenerator(
            tenants, key_space=key_space, zipf_s=args.zipf,
            rate=args.rate, seed=args.seed)
        requests = generator.generate(args.requests,
                                      start_s=ctx.sim_time())
        cache_capacity = (args.cache_capacity
                          if args.cache_capacity is not None
                          else max(32, key_space // 10))
        plane = ServingPlane(
            ctx.ps, tenants,
            queue_capacity=args.queue_capacity,
            batch_size=args.batch_size,
            cache_capacity=cache_capacity,
        )
        engine = None
        if schedule is not None:
            engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
            engine.bind_telemetry(collector)
        try:
            report = plane.run(requests)
        finally:
            if engine is not None:
                engine.detach()
            collector.finalize(ctx.sim_time())
            collector.detach()
        # -- report -----------------------------------------------------
        if engine is not None:
            print(engine.describe())
        drops = ", ".join(f"{k}={v}" for k, v in sorted(
            report.drops.items())) or "none"
        print(f"served    : {report.served}/{report.offered} requests "
              f"in {report.batches} batches "
              f"({len(tenants)} tenants, zipf s={args.zipf})")
        print(f"latency   : p50={report.p50_s * 1e3:.2f} ms  "
              f"p99={report.p99_s * 1e3:.2f} ms (sim)")
        if report.degraded_p99_s is not None:
            print(f"degraded  : p99={report.degraded_p99_s:.3f} s over "
                  f"{report.recoveries} recovery(ies)")
        print(f"hot cache : {report.cache_hit_rate * 100:.1f}% hit rate")
        print(f"drops     : {drops}")
        print(f"conserved : {report.conserved()} "
              f"(offered == served + dropped)")
        print(f"sim time  : {ctx.sim_time():.3f} s")
        alerts = collector.alerts
        for alert in alerts:
            resolved = (f"resolved {alert.resolved_at_s:.3f}"
                        if alert.resolved_at_s is not None else "unresolved")
            print(f"alert     : {alert.slo} fired {alert.fired_at_s:.3f} "
                  f"sim-s ({resolved})")
        if not report.conserved():
            print("error: request conservation violated", file=sys.stderr)
            rc = 1
        doc = None
        if args.telemetry or args.dashboard:
            doc = build_telemetry_doc(
                collector, tracer, ctx.sim_time(),
                meta={"pipeline": "repro-serve", "seed": args.seed,
                      "requests": args.requests, "key_space": key_space,
                      "zipf_s": args.zipf, "tenants": len(tenants),
                      "serving": report.to_dict()},
                chaos=engine.report() if engine is not None else None,
            )
        # Artifact writes come last; a bad path must not hide the report.
        if args.report_json:
            try:
                with open(args.report_json, "w") as f:
                    json.dump(report.to_dict(), f, indent=2, sort_keys=True)
                print(f"wrote serving report to {args.report_json}")
            except OSError as e:
                print(f"error: cannot write report: {e}", file=sys.stderr)
                rc = 1
        if args.telemetry and doc is not None:
            try:
                with open(args.telemetry, "w") as f:
                    json.dump(doc, f, indent=2, sort_keys=True)
                print(f"wrote telemetry ({len(alerts)} alert(s)) to "
                      f"{args.telemetry}")
            except OSError as e:
                print(f"error: cannot write telemetry: {e}", file=sys.stderr)
                rc = 1
        if args.dashboard and doc is not None:
            try:
                n = write_dashboard(args.dashboard, doc)
                print(f"wrote dashboard ({n} bytes) to {args.dashboard}")
            except OSError as e:
                print(f"error: cannot write dashboard: {e}", file=sys.stderr)
                rc = 1
        if args.trace:
            try:
                n = write_chrome_trace(args.trace, tracer)
                print(f"wrote {n} trace events to {args.trace}")
            except OSError as e:
                print(f"error: cannot write trace: {e}", file=sys.stderr)
                rc = 1
        if args.require_alert > 0 and len(alerts) < args.require_alert:
            print(f"error: required >= {args.require_alert} alert(s), "
                  f"got {len(alerts)}", file=sys.stderr)
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
