"""``python -m repro.serve`` — alias for the ``repro-serve`` entry point."""

import sys

from repro.serve.cli import main

if __name__ == "__main__":
    sys.exit(main())
