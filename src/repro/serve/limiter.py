"""Per-tenant token-bucket rate limiting and watermark backpressure.

Two admission-control mechanisms guard the serving plane's queue:

* :class:`TokenBucket` / :class:`TenantRateLimiter` — each tenant refills
  tokens at its contracted rate on the *simulated* clock; a request that
  finds the bucket empty is rejected immediately (a fast 429, never
  queued).  Refill is computed from sim-time deltas, so the limiter is
  bit-deterministic under the double-run harness.
* :class:`WatermarkGate` — hysteresis over the admission-queue depth.
  When depth crosses the high watermark the gate closes and arrivals
  below the protected priority are shed until depth drains to the low
  watermark; latency-critical tenants keep flowing.  This is the
  standard mempool/ingress pattern: bounded queue, shed the best-effort
  class first, never block the producer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.common.errors import ConfigError
from repro.serve.workload import Request, TenantSpec


@dataclass
class TokenBucket:
    """Classic token bucket on the sim clock.

    Attributes:
        rate: tokens added per simulated second (0 = unlimited).
        burst: bucket capacity.
        tokens: current fill; starts full.
        last_s: sim-time of the last refill.
    """

    rate: float
    burst: float
    tokens: float = field(init=False)
    last_s: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise ConfigError("rate must be >= 0")
        if self.burst < 1.0:
            raise ConfigError("burst must be >= 1")
        self.tokens = float(self.burst)

    def try_take(self, now_s: float) -> bool:
        """Consume one token at sim-time ``now_s``; False when empty.

        An unlimited bucket (``rate == 0``) always grants.
        """
        if self.rate == 0.0:
            return True
        if now_s > self.last_s:
            self.tokens = min(
                float(self.burst),
                self.tokens + (now_s - self.last_s) * self.rate,
            )
            self.last_s = now_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantRateLimiter:
    """One token bucket per tenant, built from the tenant specs."""

    def __init__(self, tenants: Sequence[TenantSpec]) -> None:
        self._buckets: Dict[str, TokenBucket] = {
            t.name: TokenBucket(rate=t.rate_limit, burst=float(t.burst))
            for t in tenants
        }

    def admit(self, request: Request) -> bool:
        """Whether the request passes its tenant's bucket at arrival time."""
        bucket = self._buckets.get(request.tenant)
        if bucket is None:
            raise ConfigError(f"unknown tenant {request.tenant!r}")
        return bucket.try_take(request.arrival_s)


@dataclass
class WatermarkGate:
    """Hysteresis gate over the admission-queue depth.

    Attributes:
        high: depth at or above which the gate closes.
        low: depth at or below which a closed gate reopens.
        protect_priority: requests with priority >= this pass even
            through a closed gate (the latency-critical class).
        closed: current gate state.
        transitions: number of open -> closed transitions (exposed so
            reports can show how often backpressure engaged).
    """

    high: int
    low: int
    protect_priority: int = 2
    closed: bool = field(init=False, default=False)
    transitions: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.low < 0 or self.high <= self.low:
            raise ConfigError("need 0 <= low < high watermarks")

    def update(self, depth: int) -> None:
        """Refresh the gate from the current queue depth."""
        if not self.closed and depth >= self.high:
            self.closed = True
            self.transitions += 1
        elif self.closed and depth <= self.low:
            self.closed = False

    def admits(self, request: Request) -> bool:
        """Whether the gate lets this request into the queue right now."""
        return not self.closed or request.priority >= self.protect_priority
