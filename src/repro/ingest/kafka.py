"""Kafka-style edge ingestion into the PSGraph pipeline.

Fig. 3 places Kafka (and HBase/Hive) in PSGraph's Hadoop ecosystem, and the
introduction's pipeline argument — "data ingest, data preprocessing,
feature engineering, model training ... in a dataflow task, without moving
data in and out of file systems" — is the reason Tencent stays on Spark at
all.  This module provides that ingestion edge of the pipeline:

* :class:`KafkaTopic` — a partitioned, append-only log of edge records
  with consumer offsets;
* :class:`EdgeStreamConsumer` — drains new records in batches, appends
  them to an HDFS landing directory (so batch jobs see them), and
  *incrementally* merges them into a PS neighbor table, keeping an online
  model fresh without re-running the groupBy over history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.core.blocks import build_neighbor_block
from repro.hdfs.filesystem import Hdfs


@dataclass
class KafkaTopic:
    """A partitioned append-only log of ``(src, dst)`` edge records.

    Producers append; consumers read from per-partition offsets.  Records
    are partitioned by ``src mod num_partitions`` (keyed production, as an
    edge stream keyed by source vertex would be).
    """

    name: str
    num_partitions: int = 4
    _logs: List[List[Tuple[int, int]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ConfigError("topic needs at least one partition")
        self._logs = [[] for _ in range(self.num_partitions)]

    def produce(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Append a batch of edges; returns records appended."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ConfigError("src/dst length mismatch")
        pids = src % self.num_partitions
        for p in range(self.num_partitions):
            mask = pids == p
            self._logs[p].extend(
                zip(src[mask].tolist(), dst[mask].tolist())
            )
        return len(src)

    def end_offsets(self) -> List[int]:
        """Current log length per partition."""
        return [len(log) for log in self._logs]

    def read(self, partition: int, offset: int,
             max_records: int | None = None) -> List[Tuple[int, int]]:
        """Records of ``partition`` from ``offset`` (up to ``max_records``)."""
        log = self._logs[partition]
        end = len(log) if max_records is None else offset + max_records
        return log[offset:end]


class EdgeStreamConsumer:
    """Drains a topic into HDFS and (optionally) a PS neighbor table.

    Args:
        topic: the source topic.
        hdfs: landing filesystem; each poll writes one file per partition
            under ``landing_dir`` so downstream batch jobs can re-read the
            full history.
        landing_dir: HDFS directory for landed edge files.
        table: optional :class:`repro.ps.matrix.PSNeighborTable`; polled
            edges are merged in incrementally (both directions).
        metrics: optional counters (``ingest.records``, ``ingest.polls``).
    """

    def __init__(self, topic: KafkaTopic, hdfs: Hdfs,
                 landing_dir: str = "/ingest",
                 table: Optional[object] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self.topic = topic
        self.hdfs = hdfs
        self.landing_dir = landing_dir.rstrip("/")
        self.table = table
        # Scoped view: every counter below lands under "ingest." without
        # hand-concatenating name strings at each call site.
        self.metrics = (
            metrics.scoped("ingest") if metrics is not None else None
        )
        self.offsets: Dict[int, int] = {
            p: 0 for p in range(topic.num_partitions)
        }
        self._files = 0

    @property
    def lag(self) -> int:
        """Unconsumed records across all partitions."""
        return sum(
            end - self.offsets[p]
            for p, end in enumerate(self.topic.end_offsets())
        )

    def poll(self, max_records_per_partition: int | None = None) -> int:
        """Consume one batch: land on HDFS + merge into the PS table.

        Returns:
            Number of records consumed.
        """
        consumed = 0
        all_src: List[int] = []
        all_dst: List[int] = []
        for p in range(self.topic.num_partitions):
            records = self.topic.read(
                p, self.offsets[p], max_records_per_partition
            )
            if not records:
                continue
            self.offsets[p] += len(records)
            consumed += len(records)
            lines = [f"{s}\t{d}" for s, d in records]
            self.hdfs.write_text(
                f"{self.landing_dir}/batch-{self._files:05d}-p{p}",
                lines, overwrite=True,
            )
            for s, d in records:
                all_src.append(s)
                all_dst.append(d)
        if consumed:
            self._files += 1
            if self.table is not None:
                self._merge_into_table(
                    np.asarray(all_src, dtype=np.int64),
                    np.asarray(all_dst, dtype=np.int64),
                )
        if self.metrics is not None:
            self.metrics.inc("polls")
            self.metrics.inc("records", consumed)
        return consumed

    def drain(self, max_polls: int = 1000) -> int:
        """Poll until the topic is fully consumed; returns total records."""
        total = 0
        for _ in range(max_polls):
            got = self.poll()
            if got == 0:
                break
            total += got
        return total

    def _merge_into_table(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Incremental neighbor-table update (both edge directions)."""
        block = build_neighbor_block(
            np.concatenate([src, dst]), np.concatenate([dst, src]),
            dedupe=True,
        )
        if block.num_vertices:
            self.table.push(block.vertices, block.neighbor_arrays())
