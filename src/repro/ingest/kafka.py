"""Kafka-style edge ingestion into the PSGraph pipeline.

Fig. 3 places Kafka (and HBase/Hive) in PSGraph's Hadoop ecosystem, and the
introduction's pipeline argument — "data ingest, data preprocessing,
feature engineering, model training ... in a dataflow task, without moving
data in and out of file systems" — is the reason Tencent stays on Spark at
all.  This module provides that ingestion edge of the pipeline:

* :class:`KafkaTopic` — a partitioned, append-only log of typed
  :class:`~repro.ingest.mutations.Mutation` records (edge add/remove,
  vertex remove) with consumer offsets;
* :class:`EdgeStreamConsumer` — drains new records in batches, appends
  them to an HDFS landing directory (so batch jobs see them), and
  *incrementally* merges them into a PS neighbor table, keeping an online
  model fresh without re-running the groupBy over history.

Delivery is **at-least-once**: a poll stages its reads, lands them on
HDFS and merges them into the PS *before* committing offsets, so a crash
mid-poll replays the batch instead of silently dropping it.  Landing
files have deterministic names (overwritten on retry) and the PS merge
has set semantics, so replays are idempotent end to end — see
docs/streaming.md.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.core.blocks import build_neighbor_block
from repro.hdfs.filesystem import Hdfs
from repro.ingest.mutations import (
    EDGE_ADD,
    EDGE_DEL,
    Mutation,
    edge_adds,
    edge_dels,
    encode_line,
    group_runs,
    vertex_dels,
)


@dataclass
class KafkaTopic:
    """A partitioned append-only log of typed mutation records.

    Producers append; consumers read from per-partition offsets.  Records
    are partitioned by ``src mod num_partitions`` (keyed production, as an
    edge stream keyed by source vertex would be) — so all mutations
    touching one source vertex stay ordered within one partition.
    """

    name: str
    num_partitions: int = 4
    _logs: List[List[Mutation]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_partitions <= 0:
            raise ConfigError("topic needs at least one partition")
        self._logs = [[] for _ in range(self.num_partitions)]

    def _append(self, mutations: List[Mutation]) -> int:
        for m in mutations:
            self._logs[m.src % self.num_partitions].append(m)
        return len(mutations)

    def produce(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Append a batch of edge *adds*; returns records appended."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ConfigError("src/dst length mismatch")
        return self._append(edge_adds(src, dst))

    def produce_removals(self, src: np.ndarray, dst: np.ndarray) -> int:
        """Append a batch of edge *removes*; returns records appended."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src) != len(dst):
            raise ConfigError("src/dst length mismatch")
        return self._append(edge_dels(src, dst))

    def produce_vertex_removals(self, vertices: np.ndarray) -> int:
        """Append vertex-remove records; returns records appended."""
        return self._append(vertex_dels(vertices))

    def end_offsets(self) -> List[int]:
        """Current log length per partition."""
        return [len(log) for log in self._logs]

    def read(self, partition: int, offset: int,
             max_records: int | None = None) -> List[Mutation]:
        """Records of ``partition`` from ``offset`` (up to ``max_records``)."""
        log = self._logs[partition]
        end = len(log) if max_records is None else offset + max_records
        return log[offset:end]


class EdgeStreamConsumer:
    """Drains a topic into HDFS and (optionally) a PS neighbor table.

    Args:
        topic: the source topic.
        hdfs: landing filesystem; each poll writes one file per partition
            under ``landing_dir`` so downstream batch jobs can re-read the
            full history.
        landing_dir: HDFS directory for landed edge files.  The consumer's
            committed position (offsets + file counter) is persisted as a
            *sibling* file ``{landing_dir}.offsets`` so a restarted
            consumer resumes exactly where the last committed poll ended.
        table: optional :class:`repro.ps.matrix.PSNeighborTable`; polled
            mutations are merged in incrementally (both directions, set
            semantics: adds union, removes subtract).
        sink: optional callback receiving each poll's ordered mutation
            list during the merge phase (before the offset commit) — the
            hook :class:`repro.streaming.engine.StreamingEngine` uses to
            feed a :class:`~repro.streaming.graph.StreamingGraph`.
        metrics: optional counters (``ingest.records``, ``ingest.polls``
            for consuming polls, ``ingest.polls.empty`` for polls that
            found nothing).
        resume: when True, restore the persisted position from
            ``{landing_dir}.offsets`` (a consumer restart); the default
            starts from offset 0 everywhere.
    """

    def __init__(self, topic: KafkaTopic, hdfs: Hdfs,
                 landing_dir: str = "/ingest",
                 table: Optional[object] = None,
                 sink: Optional[Callable[[List[Mutation]], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 resume: bool = False) -> None:
        self.topic = topic
        self.hdfs = hdfs
        self.landing_dir = landing_dir.rstrip("/")
        self.table = table
        self.sink = sink
        # Scoped view: every counter below lands under "ingest." without
        # hand-concatenating name strings at each call site.
        self.metrics = (
            metrics.scoped("ingest") if metrics is not None else None
        )
        self.offsets: Dict[int, int] = {
            p: 0 for p in range(topic.num_partitions)
        }
        self._files = 0
        if resume and self.hdfs.exists(self.position_path):
            self._restore_position()

    @property
    def position_path(self) -> str:
        """HDFS path of the persisted committed position."""
        return f"{self.landing_dir}.offsets"

    @property
    def lag(self) -> int:
        """Unconsumed records across all partitions."""
        return sum(
            end - self.offsets[p]
            for p, end in enumerate(self.topic.end_offsets())
        )

    def poll(self, max_records_per_partition: int | None = None) -> int:
        """Consume one batch: land on HDFS + merge into the PS table.

        The phases run in recovery-safe order — **stage, land, merge,
        commit**.  Offsets (and the landing-file counter) only advance
        after the landing write and PS merge succeed, so an exception
        mid-poll leaves the position untouched and the next poll replays
        the same batch into the same (deterministically named, overwritten)
        landing files.

        Returns:
            Number of records consumed.
        """
        # Phase 1 — stage: read every partition without moving offsets.
        staged: Dict[int, List[Mutation]] = {}
        for p in range(self.topic.num_partitions):
            records = self.topic.read(
                p, self.offsets[p], max_records_per_partition
            )
            if records:
                staged[p] = records
        if not staged:
            if self.metrics is not None:
                self.metrics.inc("polls.empty")
            return 0
        consumed = sum(len(r) for r in staged.values())

        # Phase 2 — land: one file per partition, deterministic names so
        # a replayed poll overwrites instead of duplicating.
        for p, records in staged.items():
            self.hdfs.write_text(
                f"{self.landing_dir}/batch-{self._files:05d}-p{p}",
                [encode_line(m) for m in records], overwrite=True,
            )

        # Phase 3 — merge: PS neighbor table and/or streaming sink see the
        # poll's mutations in partition order (per-source order is
        # preserved because a source's records share one partition).
        ordered = [m for p in sorted(staged) for m in staged[p]]
        if self.table is not None:
            self._merge_into_table(ordered)
        if self.sink is not None:
            self.sink(ordered)

        # Phase 4 — commit: advance offsets + file counter and persist
        # them so a restarted consumer resumes here.
        for p, records in staged.items():
            self.offsets[p] += len(records)
        self._files += 1
        self._persist_position()
        if self.metrics is not None:
            self.metrics.inc("polls")
            self.metrics.inc("records", consumed)
        return consumed

    def drain(self, max_polls: int = 1000) -> int:
        """Poll until the topic is fully consumed; returns total records."""
        total = 0
        for _ in range(max_polls):
            got = self.poll()
            if got == 0:
                break
            total += got
        return total

    # ------------------------------------------------------------------
    # committed position (crash recovery)
    # ------------------------------------------------------------------

    def _persist_position(self) -> None:
        doc = {"offsets": {str(p): o for p, o in self.offsets.items()},
               "files": self._files}
        self.hdfs.write_text(
            self.position_path, [json.dumps(doc, sort_keys=True)],
            overwrite=True,
        )

    def _restore_position(self) -> None:
        doc = json.loads(self.hdfs.read_lines(self.position_path)[0])
        for p in self.offsets:
            self.offsets[p] = int(doc["offsets"].get(str(p), 0))
        self._files = int(doc["files"])

    # ------------------------------------------------------------------
    # PS merge
    # ------------------------------------------------------------------

    def _merge_into_table(self, mutations: List[Mutation]) -> None:
        """Incremental symmetric neighbor-table update, in stream order."""
        for op, src, dst in group_runs(mutations):
            if op == EDGE_ADD:
                block = build_neighbor_block(
                    np.concatenate([src, dst]), np.concatenate([dst, src]),
                    dedupe=True,
                )
                if block.num_vertices:
                    self.table.push(block.vertices, block.neighbor_arrays())
            elif op == EDGE_DEL:
                block = build_neighbor_block(
                    np.concatenate([src, dst]), np.concatenate([dst, src]),
                    dedupe=True,
                )
                if block.num_vertices:
                    self.table.remove(
                        block.vertices, block.neighbor_arrays()
                    )
            else:  # VERTEX_DEL
                doomed = np.unique(src)
                # Detach the vertices from their neighbors' tables, then
                # drop their own.
                nbrs = self.table.get(doomed)
                lens = np.asarray([len(t) for t in nbrs], dtype=np.int64)
                if lens.sum():
                    block = build_neighbor_block(
                        np.concatenate(
                            [t for t in nbrs if len(t)]
                        ),
                        np.repeat(doomed, lens),
                        dedupe=True,
                    )
                    self.table.remove(
                        block.vertices, block.neighbor_arrays()
                    )
                self.table.drop(doomed)
