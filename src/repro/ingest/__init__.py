"""Streaming ingestion (Kafka-style) into the PSGraph pipeline."""

from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
from repro.ingest.mutations import (
    EDGE_ADD,
    EDGE_DEL,
    VERTEX_DEL,
    Mutation,
    replay_landing,
)

__all__ = [
    "EdgeStreamConsumer",
    "KafkaTopic",
    "Mutation",
    "EDGE_ADD",
    "EDGE_DEL",
    "VERTEX_DEL",
    "replay_landing",
]
