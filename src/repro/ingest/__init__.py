"""Streaming ingestion (Kafka-style) into the PSGraph pipeline."""

from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic

__all__ = ["EdgeStreamConsumer", "KafkaTopic"]
