"""Typed graph-mutation records for the streaming ingest path.

The paper's pipeline argument (Sec. I) is about graphs that *change*:
friendship edges appear and disappear, accounts are deleted.  The ingest
edge therefore carries three record kinds instead of bare ``(src, dst)``
tuples:

====  ==============================================================
op    meaning
====  ==============================================================
+e    edge add ``(src, dst)``
-e    edge remove ``(src, dst)``
-v    vertex remove ``src`` (``dst`` is unused and set to -1)
====  ==============================================================

On the HDFS landing files edge *adds* keep the legacy ``src<TAB>dst``
encoding so existing batch jobs re-reading the landed history keep
working unchanged; removals are prefixed marker lines (``-e``/``-v``)
which :func:`repro.core.ops.parse_edge_lines` skips.  Batch jobs that
must see the *current* graph (not just the additive history) replay the
landing directory through :func:`replay_landing`.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Set, Tuple

import numpy as np

EDGE_ADD = "+e"
EDGE_DEL = "-e"
VERTEX_DEL = "-v"

#: All valid mutation opcodes.
OPS = (EDGE_ADD, EDGE_DEL, VERTEX_DEL)


class Mutation(NamedTuple):
    """One typed mutation record on the edge stream."""

    op: str
    src: int
    dst: int  # -1 for vertex removals


def edge_adds(src: np.ndarray, dst: np.ndarray) -> List[Mutation]:
    """Edge-add records for parallel endpoint arrays."""
    return [Mutation(EDGE_ADD, int(s), int(d))
            for s, d in zip(np.asarray(src).tolist(),
                            np.asarray(dst).tolist())]


def edge_dels(src: np.ndarray, dst: np.ndarray) -> List[Mutation]:
    """Edge-remove records for parallel endpoint arrays."""
    return [Mutation(EDGE_DEL, int(s), int(d))
            for s, d in zip(np.asarray(src).tolist(),
                            np.asarray(dst).tolist())]


def vertex_dels(vertices: np.ndarray) -> List[Mutation]:
    """Vertex-remove records."""
    return [Mutation(VERTEX_DEL, int(v), -1)
            for v in np.asarray(vertices).tolist()]


def encode_line(m: Mutation) -> str:
    """Landing-file encoding (adds keep the legacy 2-column form)."""
    if m.op == EDGE_ADD:
        return f"{m.src}\t{m.dst}"
    if m.op == EDGE_DEL:
        return f"{EDGE_DEL}\t{m.src}\t{m.dst}"
    return f"{VERTEX_DEL}\t{m.src}"


def decode_line(line: str) -> Mutation | None:
    """Inverse of :func:`encode_line`; ``None`` for blank/bad lines."""
    parts = line.split()
    if not parts:
        return None
    if parts[0] == EDGE_DEL and len(parts) >= 3:
        return Mutation(EDGE_DEL, int(parts[1]), int(parts[2]))
    if parts[0] == VERTEX_DEL and len(parts) >= 2:
        return Mutation(VERTEX_DEL, int(parts[1]), -1)
    if len(parts) >= 2:
        try:
            return Mutation(EDGE_ADD, int(parts[0]), int(parts[1]))
        except ValueError:
            return None
    return None


def group_runs(mutations: Iterable[Mutation]
               ) -> List[Tuple[str, np.ndarray, np.ndarray]]:
    """Split an ordered mutation list into maximal same-op runs.

    Returns ``(op, src_array, dst_array)`` triples in stream order;
    applying the runs in order is equivalent to applying the mutations
    one by one (ops only interact through shared vertices, and order
    *within* a run is irrelevant for set-semantics adds/removes).
    """
    runs: List[Tuple[str, np.ndarray, np.ndarray]] = []
    cur_op: str | None = None
    cur_src: List[int] = []
    cur_dst: List[int] = []

    def flush() -> None:
        if cur_op is not None:
            runs.append((
                cur_op,
                np.asarray(cur_src, dtype=np.int64),
                np.asarray(cur_dst, dtype=np.int64),
            ))

    for m in mutations:
        if m.op != cur_op:
            flush()
            cur_op, cur_src, cur_dst = m.op, [], []
        cur_src.append(m.src)
        cur_dst.append(m.dst)
    flush()
    return runs


def apply_to_edge_set(edges: Set[Tuple[int, int]],
                      mutations: Iterable[Mutation]
                      ) -> Set[Tuple[int, int]]:
    """Replay mutations onto a directed edge set (reference semantics).

    Presence semantics: re-adding an existing edge and removing an
    absent one are no-ops, which is what makes at-least-once delivery
    with replayed polls safe end to end.
    """
    for m in mutations:
        if m.op == EDGE_ADD:
            edges.add((m.src, m.dst))
        elif m.op == EDGE_DEL:
            edges.discard((m.src, m.dst))
        else:
            edges = {(s, d) for s, d in edges
                     if s != m.src and d != m.src}
    return edges


def replay_landing(hdfs, landing_dir: str) -> Tuple[np.ndarray, np.ndarray]:
    """Reconstruct the current edge set from a landing directory.

    Landing files are named ``batch-{poll:05d}-p{partition}`` so a plain
    sorted listing replays polls in commit order (and partitions within a
    poll in a fixed order, which is safe: the producer keys records by
    source vertex, so mutations touching the same source never land in
    different partitions of one poll).
    """
    edges: Set[Tuple[int, int]] = set()
    for path in sorted(hdfs.listdir(landing_dir.rstrip("/"))):
        batch = [m for m in map(decode_line, hdfs.read_lines(path))
                 if m is not None]
        edges = apply_to_edge_set(edges, batch)
    if not edges:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    pairs = sorted(edges)
    src = np.asarray([s for s, _ in pairs], dtype=np.int64)
    dst = np.asarray([d for _, d in pairs], dtype=np.int64)
    return src, dst
