"""Task execution context.

One :class:`TaskContext` exists while a dataflow task runs a partition on an
executor.  It carries the cost accumulator for the task, the executor's
memory tracker, and cluster-wide handles, and is published through a
context variable so code called from *inside* user functions — most
importantly the PS agent's pull/push — can charge the running task without
plumbing arguments through every lambda.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.common.simclock import TaskCost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.executor import Executor


@dataclass
class TaskContext:
    """State of one running task.

    Attributes:
        stage_id: id of the enclosing stage.
        partition_id: partition this task computes.
        executor: executor the task runs on.
        cost: simulated cost accumulated by the task so far.
        attempt: retry attempt number (0 = first try).
    """

    stage_id: int
    partition_id: int
    executor: "Executor"
    cost: TaskCost = field(default_factory=TaskCost)
    attempt: int = 0


_current: contextvars.ContextVar[TaskContext | None] = contextvars.ContextVar(
    "repro_dataflow_task_context", default=None
)


def current_task_context() -> TaskContext | None:
    """The task context of the currently executing task, if any."""
    return _current.get()


class task_scope:
    """Context manager installing ``tctx`` as the current task context."""

    def __init__(self, tctx: TaskContext) -> None:
        self._tctx = tctx
        self._token: contextvars.Token | None = None

    def __enter__(self) -> TaskContext:
        self._token = _current.set(self._tctx)
        return self._tctx

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _current.reset(self._token)


def metered(iterator: Iterator, cost: TaskCost, cpu_record_s: float) -> Iterator:
    """Wrap an iterator, charging per-record CPU to ``cost`` as it is drained."""
    for item in iterator:
        cost.cpu_s += cpu_record_s
        yield item
