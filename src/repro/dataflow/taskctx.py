"""Task execution context.

One :class:`TaskContext` exists while a dataflow task runs a partition on an
executor.  It carries the cost accumulator for the task, the executor's
memory tracker, and cluster-wide handles, and is published through a
context variable so code called from *inside* user functions — most
importantly the PS agent's pull/push — can charge the running task without
plumbing arguments through every lambda.

The context also carries the cluster's :class:`~repro.obs.tracer.Tracer`
(a no-op by default): sub-operations of a task (shuffle fetches, PS
pulls, HDFS reads) call :func:`task_span` to place themselves on the
task's serial sim-time row without threading a tracer argument through
every iterator chain.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, Optional

from repro.common.batch import RecordBatch, accumulate_sequential
from repro.common.simclock import TaskCost
from repro.obs.tracer import NOOP_SCOPE, NOOP_TRACER, NoopTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.executor import Executor


@dataclass
class TaskContext:
    """State of one running task.

    Attributes:
        stage_id: id of the enclosing stage.
        partition_id: partition this task computes.
        executor: executor the task runs on.
        cost: simulated cost accumulated by the task so far.
        attempt: retry attempt number (0 = first try).
        tracer: the cluster tracer (no-op unless tracing is enabled).
    """

    stage_id: int
    partition_id: int
    executor: "Executor"
    cost: TaskCost = field(default_factory=TaskCost)
    attempt: int = 0
    tracer: NoopTracer = NOOP_TRACER

    @property
    def trace_track(self) -> str:
        """The task's own trace row, e.g. ``s4.p2`` (see docs)."""
        return f"s{self.stage_id}.p{self.partition_id}"

    @property
    def trace_base_s(self) -> float:
        """Sim-time origin of the task's serial timeline.

        Executor clocks stand still while a task accumulates cost, so the
        clock reading *is* the stage start on this executor.
        """
        return self.executor.container.clock.now_s


_current: contextvars.ContextVar[TaskContext | None] = contextvars.ContextVar(
    "repro_dataflow_task_context", default=None
)


def current_task_context() -> TaskContext | None:
    """The task context of the currently executing task, if any."""
    return _current.get()


def task_span(name: str, cost: TaskCost | None = None,
              tags: Optional[Dict[str, object]] = None):
    """Span scope on the current task's trace row.

    Places ``name`` at ``[base + cost_before, base + cost_after]`` on the
    running task's serial timeline.  Returns a no-op scope when no task is
    running or tracing is disabled, so call sites need no guards.

    Args:
        cost: the accumulator the operation charges; defaults to the
            running task's own cost.
        tags: optional labels exported with the span.
    """
    tctx = _current.get()
    if tctx is None or not tctx.tracer.enabled:
        return NOOP_SCOPE
    return tctx.tracer.cost_span(
        tctx.executor.id, tctx.trace_track, name,
        cost if cost is not None else tctx.cost,
        tctx.trace_base_s, tags,
    )


class task_scope:
    """Context manager installing ``tctx`` as the current task context."""

    def __init__(self, tctx: TaskContext) -> None:
        self._tctx = tctx
        self._token: contextvars.Token | None = None

    def __enter__(self) -> TaskContext:
        self._token = _current.set(self._tctx)
        return self._tctx

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _current.reset(self._token)


def metered(iterator: Iterator, cost: TaskCost, cpu_record_s: float,
            trace_name: str | None = None) -> Iterator:
    """Wrap an iterator, charging per-record CPU to ``cost`` as it is drained.

    A :class:`~repro.common.batch.RecordBatch` element charges for every
    record it carries in one constant-size Python step (a C-speed
    sequential accumulate), so a batched partition pays the *bitwise*
    identical simulated CPU as its boxed equivalent at host speed.

    When ``trace_name`` is given and the running task is being traced, one
    span covering the whole drain — including any shuffle fetch or HDFS
    read charged by the upstream iterator chain — is placed on the task's
    trace row when the iterator is exhausted.
    """
    if trace_name is not None:
        tctx = _current.get()
        if tctx is not None and tctx.tracer.enabled:
            with task_span(trace_name, cost):
                for item in iterator:
                    if isinstance(item, RecordBatch):
                        cost.cpu_s = accumulate_sequential(
                            cost.cpu_s, cpu_record_s, len(item))
                    else:
                        cost.cpu_s += cpu_record_s
                    yield item
            return
    for item in iterator:
        if isinstance(item, RecordBatch):
            cost.cpu_s = accumulate_sequential(
                cost.cpu_s, cpu_record_s, len(item))
        else:
            cost.cpu_s += cpu_record_s
        yield item
