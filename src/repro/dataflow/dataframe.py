"""DataFrame: a relational veneer over RDDs.

"Dataframe and Dataset extend RDD with relational schema, enabling SQL query
and pipeline execution" (Sec. III-C).  PSGraph's public API (Listing 1) takes
and returns DataFrames, so the reproduction provides a pragmatic subset:
named columns over an RDD of tuples, projection, filtering, joins, grouped
aggregation, and conversion back to RDDs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Sequence, Tuple

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.rdd import RDD

#: Aggregate functions supported by :meth:`GroupedData.agg`.
_AGGS: Dict[str, Tuple[Callable[[], Any], Callable[[Any, Any], Any],
                       Callable[[Any], Any]]] = {
    "sum": (lambda: 0, lambda acc, v: acc + v, lambda acc: acc),
    "count": (lambda: 0, lambda acc, _v: acc + 1, lambda acc: acc),
    "max": (lambda: None,
            lambda acc, v: v if acc is None or v > acc else acc,
            lambda acc: acc),
    "min": (lambda: None,
            lambda acc, v: v if acc is None or v < acc else acc,
            lambda acc: acc),
    "mean": (lambda: (0.0, 0),
             lambda acc, v: (acc[0] + v, acc[1] + 1),
             lambda acc: acc[0] / acc[1] if acc[1] else None),
    "collect_list": (lambda: None,
                     lambda acc, v: (acc or []) + [v],
                     lambda acc: acc or []),
}


class DataFrame:
    """An RDD of tuples with a column schema.

    Attributes:
        rdd: the underlying RDD whose records are tuples.
        schema: ordered column names.
    """

    def __init__(self, rdd: "RDD", schema: Sequence[str]) -> None:
        if len(set(schema)) != len(schema):
            raise ConfigError(f"duplicate column names in {list(schema)}")
        self.rdd = rdd
        self.schema = list(schema)

    # -- helpers -----------------------------------------------------------

    def _index(self, col: str) -> int:
        try:
            return self.schema.index(col)
        except ValueError:
            raise ConfigError(
                f"no column {col!r}; have {self.schema}"
            ) from None

    @property
    def columns(self) -> List[str]:
        """Column names."""
        return list(self.schema)

    # -- transformations -----------------------------------------------------

    def select(self, *cols: str) -> "DataFrame":
        """Project to the given columns, in order."""
        idx = [self._index(c) for c in cols]
        return DataFrame(
            self.rdd.map(lambda row: tuple(row[i] for i in idx)), list(cols)
        )

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]
               ) -> "DataFrame":
        """Keep rows where ``predicate(row_as_dict)`` is true."""
        schema = self.schema
        return DataFrame(
            self.rdd.filter(lambda row: predicate(dict(zip(schema, row)))),
            schema,
        )

    def with_column(self, name: str,
                    fn: Callable[[Dict[str, Any]], Any]) -> "DataFrame":
        """Append (or replace) a column computed from each row."""
        schema = self.schema
        if name in schema:
            pos = schema.index(name)

            def replace(row: tuple) -> tuple:
                d = dict(zip(schema, row))
                out = list(row)
                out[pos] = fn(d)
                return tuple(out)

            return DataFrame(self.rdd.map(replace), schema)
        return DataFrame(
            self.rdd.map(
                lambda row: row + (fn(dict(zip(schema, row))),)
            ),
            schema + [name],
        )

    def rename(self, old: str, new: str) -> "DataFrame":
        """Rename one column."""
        idx = self._index(old)
        schema = list(self.schema)
        schema[idx] = new
        return DataFrame(self.rdd, schema)

    def join(self, other: "DataFrame", on: str,
             how: str = "inner") -> "DataFrame":
        """Join two DataFrames on one column.

        The join column appears once; remaining columns of ``other`` follow
        those of ``self``.  ``how`` is "inner" or "left".
        """
        li, ri = self._index(on), other._index(on)
        left = self.rdd.map(lambda row: (row[li], row))
        right = other.rdd.map(lambda row: (row[ri], row))
        if how == "inner":
            joined = left.join(right)
        elif how == "left":
            joined = left.left_outer_join(right)
        else:
            raise ConfigError(f"unsupported join type {how!r}")
        other_cols = [c for c in other.schema if c != on]
        other_idx = [other.schema.index(c) for c in other_cols]
        n_other = len(other_idx)

        def merge(kv: tuple) -> tuple:
            _key, (lrow, rrow) = kv
            if rrow is None:
                extra: tuple = (None,) * n_other
            else:
                extra = tuple(rrow[i] for i in other_idx)
            return tuple(lrow) + extra

        return DataFrame(joined.map(merge), self.schema + other_cols)

    def distinct(self) -> "DataFrame":
        """Drop duplicate rows."""
        return DataFrame(self.rdd.distinct(), self.schema)

    def union(self, other: "DataFrame") -> "DataFrame":
        """Concatenate two DataFrames with identical schemas."""
        if other.schema != self.schema:
            raise ConfigError(
                f"union of mismatched schemas: {self.schema} vs "
                f"{other.schema}"
            )
        return DataFrame(self.rdd.union(other.rdd), self.schema)

    def group_by(self, *cols: str) -> "GroupedData":
        """Start a grouped aggregation."""
        return GroupedData(self, list(cols))

    def order_by(self, col: str, ascending: bool = True) -> "DataFrame":
        """Globally sort rows by one column."""
        i = self._index(col)
        return DataFrame(
            self.rdd.sort_by(lambda row: row[i], ascending=ascending),
            self.schema,
        )

    def limit(self, n: int) -> "DataFrame":
        """First ``n`` rows as a (driver-materialized) DataFrame."""
        rows = self.rdd.take(n)
        return DataFrame(self.rdd.ctx.parallelize(rows), self.schema)

    # -- actions -----------------------------------------------------------

    def collect(self) -> List[Dict[str, Any]]:
        """All rows as dicts."""
        schema = self.schema
        return [dict(zip(schema, row)) for row in self.rdd.collect()]

    def collect_tuples(self) -> List[tuple]:
        """All rows as raw tuples."""
        return self.rdd.collect()

    def count(self) -> int:
        """Number of rows."""
        return self.rdd.count()

    def show(self, n: int = 20) -> str:
        """Format the first ``n`` rows as an ASCII table (also returned)."""
        rows = self.rdd.take(n)
        widths = [
            max(len(str(c)), *(len(str(r[i])) for r in rows)) if rows
            else len(str(c))
            for i, c in enumerate(self.schema)
        ]
        def fmt(vals: Sequence[Any]) -> str:
            cells = [str(v).ljust(w) for v, w in zip(vals, widths)]
            return "| " + " | ".join(cells) + " |"

        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        lines = [sep, fmt(self.schema), sep]
        lines.extend(fmt(r) for r in rows)
        lines.append(sep)
        table = "\n".join(lines)
        print(table)
        return table


class GroupedData:
    """Result of :meth:`DataFrame.group_by`; call :meth:`agg` to finish."""

    def __init__(self, df: DataFrame, keys: List[str]) -> None:
        self._df = df
        self._keys = keys

    def agg(self, **aggs: str) -> DataFrame:
        """Aggregate: ``agg(total="sum:amount", n="count:amount")``.

        Each keyword is an output column; each value is ``"<fn>:<column>"``
        with ``fn`` one of sum/count/max/min/mean/collect_list.
        """
        df = self._df
        key_idx = [df._index(k) for k in self._keys]
        specs: List[Tuple[int, str]] = []
        for out_name, spec in aggs.items():
            fn_name, _, col = spec.partition(":")
            if fn_name not in _AGGS:
                raise ConfigError(f"unknown aggregate {fn_name!r}")
            specs.append((df._index(col or out_name), fn_name))

        def seq(acc: list, row: tuple) -> list:
            for j, (ci, fn_name) in enumerate(specs):
                _zero, step, _final = _AGGS[fn_name]
                acc[j] = step(acc[j], row[ci])
            return acc

        def comb(a: list, b: list) -> list:
            # Accumulators combine by re-merging; for these simple aggs the
            # value-merge function works on accumulators too, except mean
            # and collect_list which need structural merges.
            out = []
            for j, (_ci, fn_name) in enumerate(specs):
                if fn_name == "mean":
                    out.append((a[j][0] + b[j][0], a[j][1] + b[j][1]))
                elif fn_name == "count" or fn_name == "sum":
                    out.append(a[j] + b[j])
                elif fn_name == "max":
                    out.append(b[j] if a[j] is None or (
                        b[j] is not None and b[j] > a[j]) else a[j])
                elif fn_name == "min":
                    out.append(b[j] if a[j] is None or (
                        b[j] is not None and b[j] < a[j]) else a[j])
                else:  # collect_list
                    out.append((a[j] or []) + (b[j] or []))
            return out

        def zero() -> list:
            return [_AGGS[fn_name][0]() for _ci, fn_name in specs]

        keyed = df.rdd.map(
            lambda row: (tuple(row[i] for i in key_idx), row)
        )
        aggregated = keyed.combine_by_key(
            lambda row: seq(zero(), row), seq, comb
        )

        finals = [_AGGS[fn_name][2] for _ci, fn_name in specs]

        def finish(kv: tuple) -> tuple:
            key, acc = kv
            return tuple(key) + tuple(f(a) for f, a in zip(finals, acc))

        schema = self._keys + list(aggs.keys())
        return DataFrame(aggregated.map(finish), schema)
