"""Simulated Spark executors.

An :class:`Executor` wraps a Yarn container and owns the executor-local
state of the dataflow engine: the cache of persisted RDD partitions (the
block manager) and — attached externally — the shuffle files it wrote.  Task
*placement* is deterministic: a multiplicative hash of the partition id
picks the preferred executor (with failover to the next live one), which
keeps cache and shuffle locality simple, balanced and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.common.batch import records_nbytes
from repro.common.errors import ContainerLostError
from repro.yarn.resource_manager import Container

#: Memory-tag prefix for cached RDD partitions.
CACHE_TAG = "rdd-cache"


@dataclass
class Executor:
    """One executor process: container + block-manager cache.

    Attributes:
        index: executor index within the job (stable across restarts).
        container: the backing Yarn container.
        slowdown: straggler factor — simulated task time on this executor
            is multiplied by it (>= 1.0; set by fault injection, read by
            the scheduler's cost accounting and speculation policy).
    """

    index: int
    container: Container
    slowdown: float = 1.0
    _cache: Dict[Tuple[int, int], List[Any]] = field(default_factory=dict)

    @property
    def id(self) -> str:
        """The container id, e.g. ``executor-3``."""
        return self.container.id

    @property
    def alive(self) -> bool:
        """Liveness of the backing container."""
        return self.container.alive

    def ensure_alive(self) -> None:
        """Raise :class:`ContainerLostError` if the executor is dead."""
        if not self.alive:
            raise ContainerLostError(self.id)

    # -- block manager (RDD cache) -----------------------------------------

    def cache_put(self, rdd_id: int, partition: int,
                  records: List[Any]) -> None:
        """Persist a computed partition; charges executor memory."""
        key = (rdd_id, partition)
        if key in self._cache:
            return
        nbytes = records_nbytes(records)
        self.container.memory.allocate(nbytes, tag=f"{CACHE_TAG}:{rdd_id}")
        self._cache[key] = records

    def cache_get(self, rdd_id: int, partition: int) -> List[Any] | None:
        """Fetch a cached partition, or ``None`` on a miss."""
        return self._cache.get((rdd_id, partition))

    def cache_drop_rdd(self, rdd_id: int) -> None:
        """Unpersist every cached partition of one RDD."""
        doomed = [k for k in self._cache if k[0] == rdd_id]
        for k in doomed:
            del self._cache[k]
        self.container.memory.release_tag(f"{CACHE_TAG}:{rdd_id}")

    def invalidate(self) -> None:
        """Drop all executor-local state (called when the executor dies)."""
        self._cache.clear()
        self.slowdown = 1.0
        # Container memory was reset by the resource manager on kill.

    def cached_partitions(self) -> List[Tuple[int, int]]:
        """Keys of currently cached partitions (for tests/diagnostics)."""
        return sorted(self._cache)
