"""DAG scheduler: stages, tasks, retries and failure recovery.

An action walks the RDD lineage, materializes every missing shuffle (map
stages) bottom-up, and then runs the result stage.  Tasks run sequentially in
this process but *sim-time* is computed as if they ran in parallel: within a
stage each executor's clock advances by the total cost of the tasks it was
assigned (divided by its core count), and the stage ends with a barrier —
exactly the behaviour of a synchronous Spark stage.

Failure recovery mirrors Spark (Sec. III-C of the paper): a dead executor is
restarted by the resource manager, its cached partitions and shuffle outputs
are lost, and lost map outputs are recomputed from lineage when a reduce task
discovers them missing.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, List

from repro.common.errors import ContainerLostError, StageFailedError
from repro.common.metrics import (
    HDFS_BYTES_READ,
    POOL_PACKAGES_INVALID,
    POOL_STAGES_PARALLEL,
    POOL_STAGES_SERIAL,
    POOL_TASKS_REPLAYED,
    STAGES_RUN,
    TASK_DURATION_H,
    TASKS_FAILED,
    TASKS_LAUNCHED,
    TASKS_SPECULATED,
)
from repro.common.simclock import barrier
from repro.dataflow.pool import TaskPackage
from repro.dataflow.shuffle import ShuffleOutputLostError, bucket_map_output
from repro.dataflow.taskctx import TaskContext, metered, task_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext
    from repro.dataflow.rdd import RDD, ShuffleDependency

#: Maximum attempts per task before the stage is declared failed.
MAX_TASK_ATTEMPTS = 6


def _lineage_has_cached(rdd: "RDD") -> bool:
    """True if this stage's tasks may read or fill an RDD cache.

    Cache fills are cross-task side effects a forked pool worker cannot
    hand back to the driver (a later serial action would miss and
    recompute, diverging from an all-serial run), so such stages stay
    serial.  Only the narrow lineage is walked: shuffle-dependency
    parents execute in their own map stages, and a checkpointed RDD
    short-circuits to HDFS without touching caches or ancestors.
    """
    stack = [rdd]
    seen: set = set()
    while stack:
        node = stack.pop()
        if node.id in seen or node._checkpoint_path is not None:
            continue
        seen.add(node.id)
        if node._cached:
            return True
        stack.extend(node.narrow_parents)
    return False


class DAGScheduler:
    """Schedules stages over the context's executors."""

    def __init__(self, ctx: "SparkContext") -> None:
        self.ctx = ctx
        self._stage_seq = 0
        self._deps_by_id: Dict[int, "ShuffleDependency"] = {}

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def run_job(self, rdd: "RDD",
                func: Callable[[int, Iterator[Any]], Any],
                pool_ok: bool = False) -> List[Any]:
        """Run ``func`` over every partition of ``rdd``; returns results.

        Args:
            pool_ok: the caller asserts ``func`` is pure (no driver-side
                or PS side effects beyond its return value), so the
                result stage may run on the process pool.  Actions with
                side-effecting closures (``foreach``, ``save_as_text_file``)
                must leave this False.
        """
        self._ensure_shuffles(rdd, set())
        return self._run_result_stage(rdd, func, pool_ok=pool_ok)

    def run_stage(self, num_partitions: int,
                  task: Callable[[int, TaskContext], Any],
                  kind: str = "custom") -> List[Any]:
        """Run a custom stage of ``num_partitions`` tasks.

        Used by GraphX, whose vertex/edge tables live outside the RDD
        lineage but must share the same executors, cost accounting and
        barrier semantics.  ``task(partition, tctx)`` runs with a live
        TaskContext (so PS agents and the shuffle service charge it).
        """
        results = self._run_tasks(
            list(range(num_partitions)), task, kind=kind
        )
        return [results[p] for p in range(num_partitions)]

    # ------------------------------------------------------------------
    # shuffle (map) stages
    # ------------------------------------------------------------------

    def _ensure_shuffles(self, rdd: "RDD", seen: set) -> None:
        """Materialize, bottom-up, every shuffle the lineage depends on."""
        for parent in rdd.narrow_parents:
            if parent.id not in seen:
                seen.add(parent.id)
                self._ensure_shuffles(parent, seen)
        for dep in rdd.shuffle_deps:
            if dep.shuffle_id in self._deps_by_id and self._dep_complete(dep):
                continue
            self._ensure_shuffles(dep.parent, seen)
            self._deps_by_id[dep.shuffle_id] = dep
            self._run_map_stage(dep)

    def _dep_complete(self, dep: "ShuffleDependency") -> bool:
        live = self.ctx.live_executor_map()
        svc = self.ctx.shuffle_service
        return all(
            svc.has_output(dep.shuffle_id, mp, live)
            for mp in range(dep.parent.num_partitions)
        )

    def _run_map_stage(self, dep: "ShuffleDependency") -> None:
        """Run map tasks for every missing partition of one shuffle."""
        live = self.ctx.live_executor_map()
        svc = self.ctx.shuffle_service
        missing = [
            mp for mp in range(dep.parent.num_partitions)
            if not svc.has_output(dep.shuffle_id, mp, live)
        ]
        if not missing:
            return

        def map_task(mp: int, tctx: TaskContext) -> None:
            self._write_map_output(dep, mp, tctx)

        # Map tasks are pure by construction (their only effect is the
        # shuffle output, which pool packages carry), so the pool is
        # always worth trying unless the lineage touches caches.
        self._run_tasks(
            missing, map_task, kind=f"shuffle-{dep.shuffle_id}",
            pool_ok=not _lineage_has_cached(dep.parent),
        )

    def _write_map_output(self, dep: "ShuffleDependency", mp: int,
                          tctx: TaskContext) -> None:
        cm = self.ctx.cluster.cost_model
        records = list(metered(
            dep.parent.iterator(mp, tctx), tctx.cost, cm.cpu_record_s,
            trace_name="map-input",
        ))
        buckets = bucket_map_output(
            records, dep.partitioner, dep.map_side_combine, dep.combine_op
        )
        self.ctx.shuffle_service.write(
            dep.shuffle_id, mp, tctx.executor, buckets, tctx.cost
        )

    def _recompute_shuffle(self, shuffle_id: int) -> None:
        """Recompute lost map outputs after an executor death."""
        dep = self._deps_by_id.get(shuffle_id)
        if dep is None:
            raise StageFailedError(
                f"shuffle {shuffle_id} lost but its lineage is unknown"
            )
        # The parent lineage may itself depend on lost shuffles.
        self._ensure_shuffles(dep.parent, set())
        self._run_map_stage(dep)

    # ------------------------------------------------------------------
    # result stage
    # ------------------------------------------------------------------

    def _run_result_stage(self, rdd: "RDD",
                          func: Callable[[int, Iterator[Any]], Any],
                          pool_ok: bool = False) -> List[Any]:
        cm = self.ctx.cluster.cost_model

        def result_task(p: int, tctx: TaskContext) -> Any:
            records = metered(
                rdd.iterator(p, tctx), tctx.cost, cm.cpu_record_s,
                trace_name="result-input",
            )
            return func(p, records)

        results = self._run_tasks(
            list(range(rdd.num_partitions)), result_task, kind="result",
            pool_ok=pool_ok and not _lineage_has_cached(rdd),
        )
        return [results[p] for p in range(rdd.num_partitions)]

    # ------------------------------------------------------------------
    # task loop shared by map and result stages
    # ------------------------------------------------------------------

    def _retry_backoff(self, attempt: int) -> None:
        """Wait (in sim-time, on the driver) before relaunching a failed
        attempt: ``min(max, base * 2**(attempt-1))`` seconds."""
        ctx = self.ctx
        base = ctx.retry_backoff_base_s
        if base <= 0.0:
            return
        ctx.driver_clock.advance(
            min(ctx.retry_backoff_max_s, base * (2.0 ** (attempt - 1)))
        )

    def _finish_task(self, tctx: TaskContext, result: Any,
                     busy: Dict[int, float], results: Dict[int, Any],
                     kind: str) -> None:
        """Book one successful task attempt (serial run or pool replay)."""
        ctx = self.ctx
        tracer = ctx.tracer
        executor = tctx.executor
        stage_id, p = tctx.stage_id, tctx.partition_id
        # A straggler executor stretches its tasks' elapsed sim-time.
        elapsed_s = tctx.cost.total_s * max(1.0, executor.slowdown)
        ctx.metrics.observe(TASK_DURATION_H, elapsed_s)
        if tracer.enabled:
            # Two views of the finished attempt: the executor's
            # compressed parallel row (serial cost / cores, tiled in
            # completion order) and the task's own serial detail row.
            cores = max(1, executor.container.cores)
            base = executor.container.clock.now_s
            tracer.add(
                executor.id, "tasks",
                f"task s{stage_id}.p{p}",
                base + busy[executor.index] / cores,
                base + (busy[executor.index] + elapsed_s) / cores,
                {"stage": stage_id, "partition": p, "kind": kind,
                 "attempt": tctx.attempt,
                 "cpu_s": tctx.cost.cpu_s, "net_s": tctx.cost.net_s,
                 "disk_s": tctx.cost.disk_s},
            )
            tracer.add(
                executor.id, tctx.trace_track, "task",
                base, base + elapsed_s,
                {"stage": stage_id, "partition": p, "kind": kind,
                 "attempt": tctx.attempt},
            )
        busy[executor.index] += elapsed_s
        results[p] = result
        ctx.notify_task_complete(stage_id, p, kind)

    def _package_valid(self, pkg: TaskPackage, partition: int) -> bool:
        """Whether a pool package is safe to replay as the serial loop's
        exact effect for ``partition``.

        Rejects packages whose task failed, moved an executor clock
        (clocks stand still inside tasks), landed on a placement the
        driver disagrees with, or emitted metric events outside the
        replayable allowlist — anything outside ``dataflow.*`` (plus
        read-only HDFS) means the task mutated server/filesystem state
        the fork kept private, so it must rerun against real state.
        """
        if pkg.error is not None or pkg.clock_drift != 0.0:
            return False
        executor = self.ctx.executor_for_partition(partition)
        if not executor.alive or executor.index != pkg.executor_index:
            return False
        return all(
            name.startswith("dataflow.") or name == HDFS_BYTES_READ
            for _kind, name, _value in pkg.events
        )

    def _run_tasks_pooled(self, partitions: List[int],
                          task: Callable[[int, TaskContext], Any],
                          stage_id: int, kind: str,
                          busy: Dict[int, float],
                          results: Dict[int, Any]) -> List[int]:
        """Try the process pool for one eligible stage.

        Dispatches the stage to forked workers, then replays the returned
        packages in partition dispatch order — the deterministic merge
        barrier.  Returns the partitions that still need the serial loop:
        all of them when the stage is ineligible or the pool declined,
        or the tail from the first missing/invalid package onward (the
        serial loop reproduces errors and retries exactly).
        """
        ctx = self.ctx
        pool = ctx.pool
        metrics = ctx.metrics
        if (pool is None or len(partitions) < 2 or ctx.speculation
                or ctx.has_task_hooks
                or not all(ex.alive for ex in ctx.executors)):
            return partitions
        packages = pool.run_stage(ctx, stage_id, partitions, task)
        if packages is None:
            metrics.inc(POOL_STAGES_SERIAL)
            return partitions
        tracer = ctx.tracer
        svc = ctx.shuffle_service
        for i, p in enumerate(partitions):
            pkg = packages.get(p)
            if pkg is None or not self._package_valid(pkg, p):
                if pkg is not None:
                    metrics.inc(POOL_PACKAGES_INVALID)
                metrics.inc(
                    POOL_STAGES_PARALLEL if i else POOL_STAGES_SERIAL
                )
                return partitions[i:]
            executor = ctx.executor_for_partition(p)
            tctx = TaskContext(stage_id, p, executor, cost=pkg.cost,
                               tracer=tracer)
            # Replay in the serial loop's exact effect order: launch
            # counter, in-task metric events, in-task spans, shuffle
            # outputs, memory peak, then the shared completion path.
            metrics.inc(TASKS_LAUNCHED)
            metrics.replay(pkg.events)
            if tracer.enabled:
                tracer.extend(pkg.spans)
            for (sid, mp), out in pkg.outputs.items():
                svc.install(sid, mp, out)
            mem = executor.container.memory
            if pkg.mem_peak > mem.peak:
                mem.peak = pkg.mem_peak
            metrics.inc(POOL_TASKS_REPLAYED)
            self._finish_task(tctx, pkg.result, busy, results, kind)
        metrics.inc(POOL_STAGES_PARALLEL)
        return []

    def _run_tasks(self, partitions: List[int],
                   task: Callable[[int, TaskContext], Any],
                   kind: str, pool_ok: bool = False) -> Dict[int, Any]:
        ctx = self.ctx
        metrics = ctx.metrics
        tracer = ctx.tracer
        stage_id = self._stage_seq
        self._stage_seq += 1
        metrics.inc(STAGES_RUN)
        stage_start_s = ctx.driver_clock.now_s
        failures = 0

        busy: Dict[int, float] = defaultdict(float)
        results: Dict[int, Any] = {}
        attempts: Dict[int, int] = defaultdict(int)
        pending = list(partitions)
        if pool_ok:
            pending = self._run_tasks_pooled(
                pending, task, stage_id, kind, busy, results
            )
        while pending:
            p = pending.pop(0)
            executor = ctx.executor_for_partition(p)
            if ctx.speculation and \
                    executor.slowdown >= ctx.speculation_multiplier:
                # Speculative execution, launch-time form: the preferred
                # executor is a known straggler, so the speculative copy
                # on the least-busy healthy executor wins and the
                # straggler attempt is never started (no duplicated side
                # effects).  Deterministic: ties break on executor index.
                healthy = [
                    ex for ex in ctx.executors
                    if ex.alive and ex.slowdown < ctx.speculation_multiplier
                ]
                if healthy:
                    executor = min(
                        healthy, key=lambda ex: (busy[ex.index], ex.index)
                    )
                    metrics.inc(TASKS_SPECULATED)
            tctx = TaskContext(stage_id, p, executor, attempt=attempts[p],
                               tracer=tracer)
            metrics.inc(TASKS_LAUNCHED)
            try:
                with task_scope(tctx):
                    executor.ensure_alive()
                    result = task(p, tctx)
            except ShuffleOutputLostError as lost:
                metrics.inc(TASKS_FAILED)
                failures += 1
                if tracer.enabled:
                    tracer.instant(
                        executor.id, "tasks", "task-failed",
                        executor.container.clock.now_s,
                        {"stage": stage_id, "partition": p,
                         "reason": f"shuffle-{lost.shuffle_id}-lost"},
                    )
                attempts[p] += 1
                if attempts[p] >= MAX_TASK_ATTEMPTS:
                    raise StageFailedError(
                        f"stage {stage_id} ({kind}): partition {p} kept "
                        f"losing shuffle {lost.shuffle_id}"
                    ) from lost
                self._retry_backoff(attempts[p])
                self._recompute_shuffle(lost.shuffle_id)
                pending.insert(0, p)
                continue
            except ContainerLostError:
                metrics.inc(TASKS_FAILED)
                failures += 1
                if tracer.enabled:
                    tracer.instant(
                        executor.id, "tasks", "task-failed",
                        executor.container.clock.now_s,
                        {"stage": stage_id, "partition": p,
                         "reason": "container-lost"},
                    )
                attempts[p] += 1
                if attempts[p] >= MAX_TASK_ATTEMPTS:
                    raise StageFailedError(
                        f"stage {stage_id} ({kind}): partition {p} failed "
                        f"{attempts[p]} times"
                    )
                self._retry_backoff(attempts[p])
                ctx.handle_executor_failure(executor)
                pending.insert(0, p)
                continue
            self._finish_task(tctx, result, busy, results, kind)
        # Sim-time: each executor worked its share in parallel with the
        # others; a stage ends at a barrier with the driver.
        clocks = [ctx.driver_clock]
        for ex in ctx.executors:
            if ex.index in busy:
                cores = max(1, ex.container.cores)
                ex.container.clock.advance(busy[ex.index] / cores)
            if ex.alive:
                clocks.append(ex.container.clock)
        end_s = barrier(clocks)
        if tracer.enabled:
            tracer.add(
                "driver", "stages", f"stage {stage_id} ({kind})",
                stage_start_s, end_s,
                {"stage": stage_id, "kind": kind,
                 "tasks": len(partitions), "failures": failures},
            )
        ctx.notify_tick(end_s)
        return results
