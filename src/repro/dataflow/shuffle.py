"""Hash shuffle with disk spill and metering.

This module implements the mechanism the paper blames for GraphX's
performance: "The join operation of Spark ... yields costly shuffle operation
between the map task and the reduce task, which needs to write and read
temporary data via the disk" (Sec. I).

Map tasks bucket their output by reduce partition, paying serialization CPU,
a transient in-memory sort buffer, and a disk write; reduce tasks pay a disk
read plus network time for the remote fraction of the bytes.  Map outputs
live on the executor that produced them, so killing an executor invalidates
its outputs and forces the scheduler to recompute them — the Spark recovery
path exercised by Table II.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.batch import (
    COMBINE_UFUNCS,
    RecordBatch,
    iter_records,
    segment_reduce,
    split_batch,
)
from repro.common.costs import CostModel
from repro.common.errors import PSGraphError
from repro.common.metrics import (
    SHUFFLE_BYTES_READ,
    SHUFFLE_BYTES_WRITTEN,
    SHUFFLE_FETCH_H,
    SHUFFLE_RECORDS,
    SHUFFLE_WRITE_H,
    MetricsRegistry,
)
from repro.common.simclock import TaskCost
from repro.common.sizeof import sizeof_records
from repro.dataflow.executor import Executor
from repro.dataflow.taskctx import task_span

# Shuffle-id allocation lives on SparkContext (``ctx.next_shuffle_id()``)
# so restarted contexts never drift; no module-global counter here.

#: One reduce bucket: a boxed record list or a columnar batch.
Bucket = Any


def bucket_map_output(
    records: List[Any],
    partitioner: Any,
    map_side_combine: Optional[Tuple[Callable, Callable]] = None,
    combine_op: Optional[str] = None,
) -> Dict[int, Bucket]:
    """Bucket one map task's records by reduce partition.

    When the partition consists entirely of columnar
    :class:`~repro.common.batch.RecordBatch` elements — and any requested
    map-side combine is one of the known numeric ops — bucketing runs
    vectorized: a segment-reduce for the combine, ``partition_array`` on
    the key column, and one stable argsort to split rows into per-bucket
    batches.  Anything else takes the boxed per-record loop (batches are
    exploded to pairs first), which is byte- and order-equivalent.
    """
    vectorizable = bool(records) and all(
        isinstance(r, RecordBatch) and r.is_columnar for r in records
    )
    if vectorizable and (map_side_combine is None
                         or combine_op in COMBINE_UFUNCS):
        merged = RecordBatch.concat(records)
        keys, values = merged.keys, merged.values
        if map_side_combine is not None:
            keys, values = segment_reduce(keys, values, combine_op)
        pids = partitioner.partition_array(keys)
        return split_batch(keys, values, pids)

    buckets: Dict[int, List[Any]] = defaultdict(list)
    stream = iter_records(records)
    if map_side_combine is not None:
        create, merge = map_side_combine
        combined: Dict[Any, Any] = {}
        for k, v in stream:
            if k in combined:
                combined[k] = merge(combined[k], v)
            else:
                combined[k] = create(v)
        for k, v in combined.items():
            buckets[partitioner.partition(k)].append((k, v))
    else:
        for k, v in stream:
            buckets[partitioner.partition(k)].append((k, v))
    return dict(buckets)


class ShuffleOutputLostError(PSGraphError):
    """A reduce task needed map output whose owning executor died."""

    def __init__(self, shuffle_id: int, map_partition: int) -> None:
        self.shuffle_id = shuffle_id
        self.map_partition = map_partition
        super().__init__(
            f"shuffle {shuffle_id} lost output of map partition {map_partition}"
        )


@dataclass
class MapOutput:
    """Bucketed output of one map task."""

    owner: str  # executor id that holds the files
    buckets: Dict[int, Bucket]
    bucket_bytes: Dict[int, int]
    records: int


@dataclass
class ShuffleService:
    """Cluster-wide registry of shuffle map outputs."""

    cost_model: CostModel
    metrics: MetricsRegistry | None = None
    _outputs: Dict[Tuple[int, int], MapOutput] = field(default_factory=dict)

    # -- map side ----------------------------------------------------------

    def write(self, shuffle_id: int, map_partition: int, executor: Executor,
              buckets: Dict[int, Bucket], cost: TaskCost) -> MapOutput:
        """Store one map task's bucketed output, charging the writer.

        The writer pays: per-bucket serialization CPU, a transient in-memory
        buffer of ``shuffle_buffer_overhead`` times the logical bytes (this
        is where an undersized executor OOMs), and a disk write.
        """
        bucket_bytes = {r: sizeof_records(b) for r, b in buckets.items()}
        total = sum(bucket_bytes.values())
        records = sum(len(b) for b in buckets.values())
        buffer_bytes = int(total * self.cost_model.shuffle_buffer_overhead)
        # Spark's sort buffer spills when execution memory runs out, so the
        # in-memory footprint is bounded; the full bytes still pay disk.
        capacity = executor.container.memory.capacity
        if capacity is not None:
            buffer_bytes = min(buffer_bytes, int(capacity * 0.5))
        tag = f"shuffle-buffer:{shuffle_id}:{map_partition}"
        executor.container.memory.allocate(buffer_bytes, tag=tag)
        try:
            with task_span("shuffle.write", cost,
                           {"shuffle": shuffle_id, "map": map_partition,
                            "bytes": total, "records": records}):
                cost.cpu_s += self.cost_model.serialization_time(total)
                cost.disk_s += self.cost_model.disk_write_time(total)
        finally:
            executor.container.memory.release_tag(tag)
        out = MapOutput(executor.id, buckets, bucket_bytes, records)
        self._outputs[(shuffle_id, map_partition)] = out
        if self.metrics is not None:
            self.metrics.inc(SHUFFLE_BYTES_WRITTEN, total)
            self.metrics.inc(SHUFFLE_RECORDS, records)
            self.metrics.observe(SHUFFLE_WRITE_H, total)
        return out

    def snapshot_keys(self) -> frozenset:
        """Keys of all registered outputs (pool-worker delta baseline)."""
        return frozenset(self._outputs)

    def added_since(self, keys: frozenset
                    ) -> Dict[Tuple[int, int], MapOutput]:
        """Outputs registered after :meth:`snapshot_keys` returned ``keys``."""
        return {k: v for k, v in self._outputs.items() if k not in keys}

    def install(self, shuffle_id: int, map_partition: int,
                out: MapOutput) -> None:
        """Adopt a map output computed elsewhere (a forked pool worker).

        Registers the output without charging costs or metrics: the worker
        that produced it already recorded the write's metric events, which
        the driver replays separately (see ``repro.dataflow.pool``).
        """
        self._outputs[(shuffle_id, map_partition)] = out

    def has_output(self, shuffle_id: int, map_partition: int,
                   live_executors: Dict[str, bool]) -> bool:
        """True if the map output exists and its owner is still alive."""
        out = self._outputs.get((shuffle_id, map_partition))
        return out is not None and live_executors.get(out.owner, False)

    # -- reduce side ---------------------------------------------------------

    def read(self, shuffle_id: int, reduce_partition: int,
             num_map_partitions: int, executor: Executor, cost: TaskCost,
             live_executors: Dict[str, bool]) -> List[Any]:
        """Fetch all buckets for ``reduce_partition``, charging the reader.

        Raises:
            ShuffleOutputLostError: if any required map output's owner died;
                the scheduler reacts by recomputing the map stage.
        """
        records: List[Any] = []
        local_bytes = 0
        remote_bytes = 0
        for mp in range(num_map_partitions):
            out = self._outputs.get((shuffle_id, mp))
            if out is None or not live_executors.get(out.owner, False):
                raise ShuffleOutputLostError(shuffle_id, mp)
            bucket = out.buckets.get(reduce_partition)
            if bucket is None or len(bucket) == 0:
                continue
            nbytes = out.bucket_bytes.get(reduce_partition, 0)
            if out.owner == executor.id:
                local_bytes += nbytes
            else:
                remote_bytes += nbytes
            if isinstance(bucket, RecordBatch):
                records.append(bucket)
            else:
                records.extend(bucket)
        total = local_bytes + remote_bytes
        with task_span("shuffle.fetch", cost,
                       {"shuffle": shuffle_id, "reduce": reduce_partition,
                        "local_bytes": local_bytes,
                        "remote_bytes": remote_bytes}):
            cost.disk_s += self.cost_model.disk_read_time(total)
            cost.net_s += self.cost_model.network_time(remote_bytes)
            cost.cpu_s += self.cost_model.serialization_time(total)
        if self.metrics is not None:
            self.metrics.inc(SHUFFLE_BYTES_READ, total)
            self.metrics.observe(SHUFFLE_FETCH_H, total)
        return records

    # -- failure handling ---------------------------------------------------

    def invalidate_executor(self, executor_id: str) -> int:
        """Drop every map output owned by a dead executor; returns count."""
        doomed = [
            k for k, out in self._outputs.items() if out.owner == executor_id
        ]
        for k in doomed:
            del self._outputs[k]
        return len(doomed)

    def drop_shuffle(self, shuffle_id: int) -> None:
        """Discard all outputs of one shuffle (job cleanup)."""
        doomed = [k for k in self._outputs if k[0] == shuffle_id]
        for k in doomed:
            del self._outputs[k]

    def output_exists(self, shuffle_id: int, map_partition: int) -> bool:
        """True if any output is registered (regardless of owner liveness)."""
        return (shuffle_id, map_partition) in self._outputs
