"""Partitioners for keyed RDDs.

A partitioner maps a record key to a reduce-partition index.  Hash
partitioning is Spark's default and is what GraphX uses for its vertex and
edge tables; range partitioning backs ``sortBy``.  Both offer a vectorized
``partition_array`` fast path for numpy integer keys, which the graph
algorithms use to bucket millions of edges without a Python-level loop.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.common.errors import ConfigError


class Partitioner:
    """Maps keys to ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        """Partition index for a single key."""
        raise NotImplementedError

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized partition indices for an array of integer keys."""
        return np.fromiter(
            (self.partition(k) for k in keys), dtype=np.int64, count=len(keys)
        )

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and (
            self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``hash(key) mod n`` (non-negative)."""

    def partition(self, key: Any) -> int:
        return hash(key) % self.num_partitions

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        if np.issubdtype(keys.dtype, np.integer):
            return (keys % self.num_partitions).astype(np.int64)
        return super().partition_array(keys)


class RangePartitioner(Partitioner):
    """Partitions keys by sorted range bounds (used by ``sortBy``).

    Args:
        bounds: ``num_partitions - 1`` ascending split points; key ``k`` goes
            to the first partition whose bound exceeds it.
    """

    def __init__(self, num_partitions: int, bounds: Sequence[Any]) -> None:
        super().__init__(num_partitions)
        if len(bounds) != num_partitions - 1:
            raise ConfigError(
                f"need {num_partitions - 1} bounds, got {len(bounds)}"
            )
        self.bounds = list(bounds)

    def partition(self, key: Any) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if key <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        if not self.bounds:
            return np.zeros(len(keys), dtype=np.int64)
        return np.searchsorted(
            np.asarray(self.bounds), keys, side="left"
        ).astype(np.int64)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", self.num_partitions, tuple(self.bounds)))
