"""Resilient Distributed Datasets — the Spark programming abstraction.

"Resilient distributed dataset (RDD), the core programming abstraction of
Spark, is a fault-tolerant collection of elements that can be operated in
parallel" (Sec. III-C).  This module reproduces the RDD model faithfully
enough for GraphX-style workloads:

* transformations are **lazy** and build a lineage DAG;
* wide transformations (``groupByKey``, ``reduceByKey``, ``join``, ...)
  introduce a :class:`ShuffleDependency`, which the DAG scheduler turns into
  a map stage writing through the metered shuffle;
* ``cache()`` persists computed partitions in executor memory (charged
  against the executor's grant — over-caching OOMs, as GraphX does);
* lost partitions are recomputed from lineage, which is the executor-failure
  recovery path of Table II.

Partition placement is deterministic (a multiplicative hash of the
partition id picks the preferred executor), making runs bit-reproducible.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Tuple,
)

from repro.common.batch import (
    COMBINE_FNS,
    COMBINE_UFUNCS,
    RecordBatch,
    explode_records,
    iter_records,
    records_nbytes,
    segment_reduce,
)
from repro.common.errors import ConfigError
from repro.common.rng import derive_seed, make_rng
from repro.dataflow.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.dataflow.taskctx import TaskContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext



class ShuffleDependency:
    """A wide dependency: the child reads bucketed output of the parent.

    Attributes:
        parent: the RDD whose records are shuffled.
        partitioner: maps record keys to reduce partitions.
        shuffle_id: unique id within the SparkContext.
        map_side_combine: optional ``(create, merge)`` pair applied inside
            each map task to pre-aggregate values per key before writing,
            which is how ``reduceByKey`` moves fewer bytes than ``groupByKey``.
        combine_op: optional name ("add"/"min"/"max") declaring that
            ``map_side_combine`` is that numeric op with an identity
            ``create``; columnar partitions then combine as a vectorized
            segment-reduce instead of the per-record fold.
    """

    def __init__(self, parent: "RDD", partitioner: Partitioner,
                 map_side_combine: Tuple[Callable[[Any], Any],
                                         Callable[[Any, Any], Any]] | None = None,
                 combine_op: str | None = None) -> None:
        self.parent = parent
        self.partitioner = partitioner
        self.shuffle_id = parent.ctx.next_shuffle_id()
        self.map_side_combine = map_side_combine
        self.combine_op = combine_op


class RDD:
    """Base class; subclasses define :meth:`compute` over one partition."""

    def __init__(self, ctx: "SparkContext", num_partitions: int,
                 narrow_parents: List["RDD"] | None = None,
                 shuffle_deps: List[ShuffleDependency] | None = None,
                 partitioner: Partitioner | None = None) -> None:
        if num_partitions <= 0:
            raise ConfigError("RDD must have at least one partition")
        self.ctx = ctx
        self.id = ctx.next_rdd_id()
        self.num_partitions = num_partitions
        self.narrow_parents = narrow_parents or []
        self.shuffle_deps = shuffle_deps or []
        self.partitioner = partitioner
        self._cached = False
        self._checkpoint_path: str | None = None

    # ------------------------------------------------------------------
    # computation & caching
    # ------------------------------------------------------------------

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        """Produce the records of partition ``split`` (subclass hook)."""
        raise NotImplementedError

    def iterator(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        """Cached-or-computed records of partition ``split``."""
        ckpt = self._checkpoint_path
        if ckpt is not None:
            return iter(self.ctx.hdfs.read_pickle(
                f"{ckpt}/part-{split:05d}", cost=tctx.cost
            ))
        if self._cached:
            hit = tctx.executor.cache_get(self.id, split)
            if hit is not None:
                return iter(hit)
            records = list(self.compute(split, tctx))
            tctx.executor.cache_put(self.id, split, records)
            return iter(records)
        return self.compute(split, tctx)

    def cache(self) -> "RDD":
        """Persist computed partitions in executor memory."""
        self._cached = True
        return self

    def checkpoint(self, path: str | None = None) -> "RDD":
        """Materialize every partition to HDFS and truncate lineage.

        Unlike :meth:`cache` (executor memory, lost with the executor), a
        checkpoint survives container failures: subsequent reads — including
        recovery after an executor death — load the partition back from
        HDFS instead of recomputing ancestors.  Eager, like Spark's
        ``checkpoint()`` + immediate materialization.
        """
        base = path or f"/rdd-checkpoints/rdd-{self.id}"
        hdfs = self.ctx.hdfs

        def write(p: int, tctx: TaskContext) -> None:
            records = list(self.iterator(p, tctx))
            hdfs.write_pickle(
                f"{base}/part-{p:05d}", records, overwrite=True,
                cost=tctx.cost,
            )

        self.ctx.scheduler.run_stage(
            self.num_partitions, write, kind="rdd-checkpoint"
        )
        self._checkpoint_path = base
        return self

    @property
    def is_checkpointed(self) -> bool:
        """Whether :meth:`checkpoint` has materialized this RDD to HDFS."""
        return self._checkpoint_path is not None

    persist = cache

    def unpersist(self) -> "RDD":
        """Drop cached partitions from every executor."""
        self._cached = False
        for ex in self.ctx.executors:
            ex.cache_drop_rdd(self.id)
        return self

    @property
    def is_cached(self) -> bool:
        """Whether :meth:`cache` has been requested."""
        return self._cached

    # ------------------------------------------------------------------
    # narrow transformations
    # ------------------------------------------------------------------

    def map(self, f: Callable[[Any], Any]) -> "RDD":
        """Apply ``f`` to every record."""
        return MapPartitionsRDD(
            self, lambda _i, it: (f(x) for x in it), preserves_partitioning=False
        )

    def filter(self, f: Callable[[Any], bool]) -> "RDD":
        """Keep records where ``f`` is true."""
        return MapPartitionsRDD(
            self, lambda _i, it: (x for x in it if f(x)),
            preserves_partitioning=True,
        )

    def flat_map(self, f: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Apply ``f`` and flatten the results."""
        return MapPartitionsRDD(
            self, lambda _i, it: (y for x in it for y in f(x)),
            preserves_partitioning=False,
        )

    def map_partitions(self, f: Callable[[Iterator[Any]], Iterable[Any]],
                       preserves_partitioning: bool = False) -> "RDD":
        """Apply ``f`` to each whole partition iterator."""
        return MapPartitionsRDD(
            self, lambda _i, it: f(it),
            preserves_partitioning=preserves_partitioning,
        )

    def map_partitions_with_index(
            self, f: Callable[[int, Iterator[Any]], Iterable[Any]],
            preserves_partitioning: bool = False) -> "RDD":
        """Like :meth:`map_partitions` but ``f`` also receives the index."""
        return MapPartitionsRDD(
            self, f, preserves_partitioning=preserves_partitioning
        )

    def glom(self) -> "RDD":
        """Collapse each partition into a single list record."""
        return MapPartitionsRDD(self, lambda _i, it: iter([list(it)]))

    def key_by(self, f: Callable[[Any], Any]) -> "RDD":
        """Turn records into ``(f(x), x)`` pairs."""
        return self.map(lambda x: (f(x), x))

    def keys(self) -> "RDD":
        """First elements of pair records."""
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        """Second elements of pair records."""
        return self.map(lambda kv: kv[1])

    def map_values(self, f: Callable[[Any], Any]) -> "RDD":
        """Apply ``f`` to pair values, preserving keys and partitioning."""
        return MapPartitionsRDD(
            self, lambda _i, it: ((k, f(v)) for k, v in it),
            preserves_partitioning=True,
        )

    def as_records(self) -> "RDD":
        """Explode columnar batches into boxed ``(key, value)`` pairs.

        Record-at-a-time operators (``map``, ``map_values``, ...) do not
        understand :class:`~repro.common.batch.RecordBatch` partition
        elements; call this first when mixing them with a batched
        pipeline.  Downstream metering then charges boxed rates — correct,
        because the data *is* boxed from here on.
        """
        return MapPartitionsRDD(
            self, lambda _i, it: iter_records(it),
            preserves_partitioning=True,
        )

    def to_batches(self) -> "RDD":
        """Collapse each partition's pair records into one columnar batch.

        Partitions whose keys are not numeric or whose values numpy cannot
        hold pass through unchanged (the boxed fallback).
        """
        def collapse(_i: int, it: Iterator[Any]) -> Iterator[Any]:
            items = list(it)
            if not items:
                return iter(())
            try:
                if all(isinstance(x, RecordBatch) for x in items):
                    return iter([RecordBatch.concat(items)])
                return iter([RecordBatch.from_pairs(iter_records(items))])
            except (ValueError, TypeError):
                return iter(items)

        return MapPartitionsRDD(self, collapse, preserves_partitioning=True)

    def flat_map_values(self, f: Callable[[Any], Iterable[Any]]) -> "RDD":
        """Expand each pair value into several pairs with the same key."""
        return MapPartitionsRDD(
            self, lambda _i, it: ((k, y) for k, v in it for y in f(v)),
            preserves_partitioning=True,
        )

    def union(self, other: "RDD") -> "RDD":
        """Concatenate two RDDs (partitions are appended)."""
        return UnionRDD(self.ctx, [self, other])

    def sample(self, fraction: float, seed: int = 7) -> "RDD":
        """Bernoulli sample of records with probability ``fraction``.

        Each partition draws from its own seeded stream (derived from
        ``seed`` and the partition id), so a recomputed partition — e.g.
        after an executor failure — resamples the identical subset.
        """
        def sampler(i: int, it: Iterator[Any]) -> Iterator[Any]:
            rng = make_rng(derive_seed(seed, "rdd-sample", i))
            return (x for x in it if rng.random() < fraction)

        return MapPartitionsRDD(self, sampler, preserves_partitioning=True)

    def zip_with_index(self) -> "RDD":
        """Pair each record with a global 0-based index (triggers a count)."""
        counts = self.map_partitions(lambda it: [sum(1 for _ in it)]).collect()
        offsets = [0]
        for c in counts[:-1]:
            offsets.append(offsets[-1] + c)

        def indexer(i: int, it: Iterator[Any]) -> Iterator[Any]:
            return ((x, offsets[i] + j) for j, x in enumerate(it))

        return MapPartitionsRDD(self, indexer)

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def repartition(self, num_partitions: int) -> "RDD":
        """Rebalance into ``num_partitions`` via a round-robin shuffle."""
        indexed = self.map_partitions_with_index(
            lambda i, it: (((i + 31 * j) % num_partitions, x)
                           for j, x in enumerate(it))
        )
        return ShuffledRDD(
            indexed, HashPartitioner(num_partitions),
            post=lambda pairs: (v for _k, v in pairs),
        )

    def distinct(self) -> "RDD":
        """Deduplicate records (one shuffle)."""
        paired = self.map(lambda x: (x, None))
        return ShuffledRDD(
            paired, HashPartitioner(self.num_partitions),
            map_side_combine=(lambda v: None, lambda a, _b: a),
            # dict.fromkeys dedups in arrival order; a set here would leak
            # hash order into the output sequence (repro-lint SIM004).
            post=lambda pairs: iter(dict.fromkeys(k for k, _v in pairs)),
        )

    def intersection(self, other: "RDD") -> "RDD":
        """Distinct records present in both RDDs (two shuffles)."""
        left = self.map(lambda x: (x, 1))
        right = other.map(lambda x: (x, 2))
        return left.cogroup(right).flat_map(
            lambda kv: [kv[0]] if kv[1][0] and kv[1][1] else []
        )

    def subtract(self, other: "RDD") -> "RDD":
        """Distinct records of self that do not appear in other."""
        left = self.map(lambda x: (x, 1))
        right = other.map(lambda x: (x, 2))
        return left.cogroup(right).flat_map(
            lambda kv: [kv[0]] if kv[1][0] and not kv[1][1] else []
        )

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs ``(a, b)`` — quadratic; for small RDDs (as in Spark)."""
        return CartesianRDD(self, other)

    def zip_partitions(self, other: "RDD",
                       f: Callable[[Iterator[Any], Iterator[Any]],
                                   Iterable[Any]]) -> "RDD":
        """Combine same-indexed partitions of two equal-width RDDs."""
        if self.num_partitions != other.num_partitions:
            raise ConfigError(
                "zip_partitions needs equal partition counts "
                f"({self.num_partitions} vs {other.num_partitions})"
            )
        return ZippedPartitionsRDD(self, other, f)

    # ------------------------------------------------------------------
    # wide (shuffle) transformations
    # ------------------------------------------------------------------

    def _target_partitioner(self, num_partitions: int | None) -> Partitioner:
        n = num_partitions or self.num_partitions
        return HashPartitioner(n)

    def partition_by(self, partitioner: Partitioner) -> "RDD":
        """Shuffle pairs so each key lands on ``partitioner``'s partition."""
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def group_by_key(self, num_partitions: int | None = None) -> "RDD":
        """Group pair values by key -> ``(key, list_of_values)``.

        This is the operator PSGraph uses to turn an edge list into neighbor
        tables (Sec. IV-A): ``(src, dst) -> (src, [dst, ...])``.
        """
        p = self._target_partitioner(num_partitions)
        return ShuffledRDD(self, p, post=_group_pairs)

    def group_by(self, f: Callable[[Any], Any],
                 num_partitions: int | None = None) -> "RDD":
        """Group records by ``f(record)``."""
        return self.key_by(f).group_by_key(num_partitions)

    def reduce_by_key(self, f: Callable[[Any, Any], Any] | None = None,
                      num_partitions: int | None = None,
                      op: str | None = None) -> "RDD":
        """Merge values per key with ``f``, combining map-side.

        Passing ``op`` ("add"/"min"/"max") instead of — or alongside —
        ``f`` declares the reduction as a known numeric op: columnar
        partitions then aggregate with a vectorized segment-reduce on both
        sides of the shuffle, while boxed partitions use the equivalent
        scalar fold.  Simulated costs are identical either way.
        """
        if op is not None:
            if op not in COMBINE_FNS:
                raise ConfigError(
                    f"unknown reduce op {op!r}; known: "
                    f"{', '.join(sorted(COMBINE_FNS))}"
                )
            if f is None:
                f = COMBINE_FNS[op]
        elif f is None:
            raise ConfigError("reduce_by_key needs a function or an op name")
        p = self._target_partitioner(num_partitions)
        return ShuffledRDD(
            self, p,
            map_side_combine=(lambda v: v, f),
            post=lambda pairs: iter(_reduce_pairs(pairs, f).items()),
            combine_op=op,
        )

    def fold_by_key(self, zero: Any, f: Callable[[Any, Any], Any],
                    num_partitions: int | None = None) -> "RDD":
        """Like :meth:`reduce_by_key` with an initial value per key."""
        return self.map_values(lambda v: f(zero, v)).reduce_by_key(
            f, num_partitions
        )

    def combine_by_key(self, create: Callable[[Any], Any],
                       merge_value: Callable[[Any, Any], Any],
                       merge_combiners: Callable[[Any, Any], Any],
                       num_partitions: int | None = None) -> "RDD":
        """Generic per-key aggregation with distinct combiner type."""
        p = self._target_partitioner(num_partitions)

        def post(pairs: List[Tuple[Any, Any]]) -> Iterator[Any]:
            acc: Dict[Any, Any] = {}
            for k, c in pairs:
                if k in acc:
                    acc[k] = merge_combiners(acc[k], c)
                else:
                    acc[k] = c
            return iter(acc.items())

        return ShuffledRDD(
            self, p, map_side_combine=(create, merge_value), post=post
        )

    def aggregate_by_key(self, zero: Any,
                         seq: Callable[[Any, Any], Any],
                         comb: Callable[[Any, Any], Any],
                         num_partitions: int | None = None) -> "RDD":
        """Aggregate values per key with a zero value and two merge fns."""
        return self.combine_by_key(
            lambda v: seq(zero, v), seq, comb, num_partitions
        )

    def cogroup(self, other: "RDD",
                num_partitions: int | None = None) -> "RDD":
        """Group both RDDs by key -> ``(key, (values_self, values_other))``."""
        n = num_partitions or max(self.num_partitions, other.num_partitions)
        return CoGroupedRDD(self.ctx, [self, other], HashPartitioner(n))

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Inner join on key -> ``(key, (v_self, v_other))``.

        This (plus :meth:`cogroup`) is the operator "GraphX uses ... to
        implement message passing" and whose temp tables blow executor
        memory at billion scale (Sec. I).
        """
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda vw: ((v, w) for v in vw[0] for w in vw[1])
        )

    def left_outer_join(self, other: "RDD",
                        num_partitions: int | None = None) -> "RDD":
        """Left outer join; missing right values become ``None``."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda vw: (
                (v, w) for v in vw[0] for w in (vw[1] or [None])
            )
        )

    def right_outer_join(self, other: "RDD",
                         num_partitions: int | None = None) -> "RDD":
        """Right outer join; missing left values become ``None``."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda vw: (
                (v, w) for w in vw[1] for v in (vw[0] or [None])
            )
        )

    def full_outer_join(self, other: "RDD",
                        num_partitions: int | None = None) -> "RDD":
        """Full outer join; missing sides become ``None``."""
        return self.cogroup(other, num_partitions).flat_map_values(
            lambda vw: (
                (v, w)
                for v in (vw[0] or [None])
                for w in (vw[1] or [None])
            )
        )

    def subtract_by_key(self, other: "RDD") -> "RDD":
        """Pairs of self whose key does not appear in other."""
        return self.cogroup(other).flat_map_values(
            lambda vw: iter(vw[0]) if not vw[1] else iter(())
        ).map_values(lambda v: v)

    def sort_by(self, key_fn: Callable[[Any], Any], ascending: bool = True,
                num_partitions: int | None = None) -> "RDD":
        """Globally sort records by ``key_fn`` via range partitioning."""
        n = num_partitions or self.num_partitions
        sample = self.map(key_fn).collect()
        sample.sort()
        if n == 1 or len(sample) == 0:
            bounds: List[Any] = []
            n_eff = 1
        else:
            step = max(1, len(sample) // n)
            bounds = sample[step::step][: n - 1]
            n_eff = len(bounds) + 1
        paired = self.key_by(key_fn)
        shuffled = ShuffledRDD(paired, RangePartitioner(n_eff, bounds))

        def post_sort(_i: int, it: Iterator[Any]) -> Iterator[Any]:
            pairs = sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            return (v for _k, v in pairs)

        sorted_parts = MapPartitionsRDD(shuffled, post_sort)
        if ascending:
            return sorted_parts
        # Range partitions hold ascending key ranges; a descending sort must
        # also emit the partitions themselves in reverse order.
        return ReversePartitionsRDD(sorted_parts)

    def sort_by_key(self, ascending: bool = True,
                    num_partitions: int | None = None) -> "RDD":
        """Sort pair records by key."""
        return self.sort_by(lambda kv: kv[0], ascending, num_partitions).map(
            lambda kv: kv
        )

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def collect(self) -> List[Any]:
        """Materialize every record at the driver."""
        parts = self.ctx.scheduler.run_job(
            self, lambda _i, it: list(it), pool_ok=True
        )
        out: List[Any] = []
        for p in parts:
            out.extend(p)
        self.ctx.charge_driver_result(records_nbytes(out))
        return out

    def collect_records(self) -> List[Any]:
        """Like :meth:`collect` but with batches exploded to boxed pairs."""
        return explode_records(self.collect())

    def collect_partitions(self) -> List[List[Any]]:
        """Materialize records, one list per partition."""
        parts = self.ctx.scheduler.run_job(
            self, lambda _i, it: list(it), pool_ok=True
        )
        self.ctx.charge_driver_result(sum(records_nbytes(p) for p in parts))
        return parts

    def count(self) -> int:
        """Number of records."""
        parts = self.ctx.scheduler.run_job(
            self, lambda _i, it: sum(1 for _ in it), pool_ok=True
        )
        return sum(parts)

    def is_empty(self) -> bool:
        """True if the RDD has no records."""
        return self.count() == 0

    def first(self) -> Any:
        """The first record (raises ``ValueError`` when empty)."""
        got = self.take(1)
        if not got:
            raise ValueError("RDD is empty")
        return got[0]

    def take(self, n: int) -> List[Any]:
        """Up to ``n`` records in partition order."""
        parts = self.ctx.scheduler.run_job(
            self, lambda _i, it: list(itertools.islice(it, n)), pool_ok=True
        )
        out: List[Any] = []
        for p in parts:
            out.extend(p)
            if len(out) >= n:
                break
        return out[:n]

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        """Fold all records with ``f`` (raises ``ValueError`` when empty)."""
        def part_reduce(_i: int, it: Iterator[Any]) -> List[Any]:
            acc = None
            seen = False
            for x in it:
                acc = x if not seen else f(acc, x)
                seen = True
            return [acc] if seen else []

        parts = self.ctx.scheduler.run_job(self, part_reduce, pool_ok=True)
        flat = [x for p in parts for x in p]
        if not flat:
            raise ValueError("reduce of empty RDD")
        acc = flat[0]
        for x in flat[1:]:
            acc = f(acc, x)
        return acc

    def fold(self, zero: Any, f: Callable[[Any, Any], Any]) -> Any:
        """Fold with a zero value applied per partition and at the driver."""
        def part_fold(_i: int, it: Iterator[Any]) -> Any:
            acc = zero
            for x in it:
                acc = f(acc, x)
            return acc

        parts = self.ctx.scheduler.run_job(self, part_fold, pool_ok=True)
        acc = zero
        for p in parts:
            acc = f(acc, p)
        return acc

    def aggregate(self, zero: Any, seq: Callable[[Any, Any], Any],
                  comb: Callable[[Any, Any], Any]) -> Any:
        """Two-function aggregation with distinct accumulator type."""
        def part_agg(_i: int, it: Iterator[Any]) -> Any:
            acc = zero
            for x in it:
                acc = seq(acc, x)
            return acc

        parts = self.ctx.scheduler.run_job(self, part_agg, pool_ok=True)
        acc = zero
        for p in parts:
            acc = comb(acc, p)
        return acc

    def sum(self) -> Any:
        """Sum of records."""
        return self.fold(0, lambda a, b: a + b)

    def max(self) -> Any:
        """Maximum record."""
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        """Minimum record."""
        return self.reduce(lambda a, b: a if a <= b else b)

    def mean(self) -> float:
        """Arithmetic mean of numeric records."""
        total, count = self.aggregate(
            (0.0, 0),
            lambda acc, x: (acc[0] + x, acc[1] + 1),
            lambda a, b: (a[0] + b[0], a[1] + b[1]),
        )
        if count == 0:
            raise ValueError("mean of empty RDD")
        return total / count

    def take_ordered(self, n: int,
                     key: Callable[[Any], Any] | None = None) -> List[Any]:
        """The ``n`` smallest records (per-partition heaps, then merged)."""
        import heapq

        def part_smallest(_i: int, it: Iterator[Any]) -> List[Any]:
            return heapq.nsmallest(n, it, key=key)

        parts = self.ctx.scheduler.run_job(self, part_smallest, pool_ok=True)
        return heapq.nsmallest(n, (x for p in parts for x in p), key=key)

    def top(self, n: int,
            key: Callable[[Any], Any] | None = None) -> List[Any]:
        """The ``n`` largest records, descending."""
        import heapq

        def part_largest(_i: int, it: Iterator[Any]) -> List[Any]:
            return heapq.nlargest(n, it, key=key)

        parts = self.ctx.scheduler.run_job(self, part_largest, pool_ok=True)
        return heapq.nlargest(n, (x for p in parts for x in p), key=key)

    def stats(self) -> "StatCounter":
        """Count / mean / variance / min / max of numeric records."""
        def part_stats(_i: int, it: Iterator[Any]) -> StatCounter:
            s = StatCounter()
            for x in it:
                s.merge_value(float(x))
            return s

        parts = self.ctx.scheduler.run_job(self, part_stats, pool_ok=True)
        total = StatCounter()
        for p in parts:
            total.merge_stats(p)
        return total

    def count_by_key(self) -> Dict[Any, int]:
        """Counts per key of pair records (driver-side dict)."""
        return dict(
            self.map_values(lambda _v: 1).reduce_by_key(lambda a, b: a + b)
            .collect()
        )

    def count_by_value(self) -> Dict[Any, int]:
        """Counts per distinct record."""
        return dict(
            self.map(lambda x: (x, 1)).reduce_by_key(lambda a, b: a + b)
            .collect()
        )

    def lookup(self, key: Any) -> List[Any]:
        """Values of pair records with the given key."""
        return self.filter(lambda kv: kv[0] == key).values().collect()

    def foreach(self, f: Callable[[Any], None]) -> None:
        """Run ``f`` for its side effects on every record (on executors)."""
        def runner(_i: int, it: Iterator[Any]) -> None:
            for x in it:
                f(x)

        self.ctx.scheduler.run_job(self, runner)

    def foreach_partition(self, f: Callable[[Iterator[Any]], Any]) -> List[Any]:
        """Run ``f`` on each partition iterator; returns per-partition results.

        Unlike Spark this returns the (small) value ``f`` produced per
        partition, which the PSGraph algorithms use to ship tiny summaries
        (e.g. "number of changed vertices") back to the driver cheaply.
        """
        return self.ctx.scheduler.run_job(self, lambda _i, it: f(it))

    def save_as_text_file(self, path: str) -> None:
        """Write one ``part-NNNNN`` text file per partition to HDFS."""
        hdfs = self.ctx.hdfs

        def writer(i: int, it: Iterator[Any]) -> None:
            from repro.dataflow.taskctx import current_task_context

            tctx = current_task_context()
            lines = [x if isinstance(x, str) else repr(x) for x in it]
            hdfs.write_text(
                f"{path}/part-{i:05d}", lines, overwrite=True,
                cost=tctx.cost if tctx else None,
            )

        self.ctx.scheduler.run_job(
            self, lambda i, it: writer(i, it)
        )


def _group_pairs(pairs: List[Tuple[Any, Any]]) -> Iterator[Tuple[Any, List[Any]]]:
    """groupByKey reduce-side: hash table of key -> values."""
    acc: Dict[Any, List[Any]] = {}
    for k, v in pairs:
        acc.setdefault(k, []).append(v)
    return iter(acc.items())


def _reduce_pairs(pairs: List[Tuple[Any, Any]],
                  f: Callable[[Any, Any], Any]) -> Dict[Any, Any]:
    """reduceByKey reduce-side: hash table of key -> folded value."""
    acc: Dict[Any, Any] = {}
    for k, v in pairs:
        if k in acc:
            acc[k] = f(acc[k], v)
        else:
            acc[k] = v
    return acc


class ParallelCollectionRDD(RDD):
    """An RDD over a driver-side list, split into even slices."""

    def __init__(self, ctx: "SparkContext", data: List[Any],
                 num_partitions: int) -> None:
        super().__init__(ctx, num_partitions)
        self._slices: List[List[Any]] = [
            list(data[i::num_partitions]) for i in range(num_partitions)
        ]

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        return iter(self._slices[split])


class MapPartitionsRDD(RDD):
    """Narrow transformation applying ``f(index, iterator)``."""

    def __init__(self, parent: RDD,
                 f: Callable[[int, Iterator[Any]], Any],
                 preserves_partitioning: bool = False) -> None:
        super().__init__(
            parent.ctx, parent.num_partitions, narrow_parents=[parent],
            partitioner=parent.partitioner if preserves_partitioning else None,
        )
        self._f = f

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        result = self._f(split, self.narrow_parents[0].iterator(split, tctx))
        if result is None:
            return iter(())
        return iter(result) if not hasattr(result, "__next__") else result


class UnionRDD(RDD):
    """Concatenation: partitions of all parents, in order."""

    def __init__(self, ctx: "SparkContext", parents: List[RDD]) -> None:
        super().__init__(
            ctx, sum(p.num_partitions for p in parents),
            narrow_parents=list(parents),
        )

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        for parent in self.narrow_parents:
            if split < parent.num_partitions:
                return parent.iterator(split, tctx)
            split -= parent.num_partitions
        raise IndexError("partition out of range")


class ReversePartitionsRDD(RDD):
    """Narrow RDD emitting the parent's partitions in reverse order."""

    def __init__(self, parent: RDD) -> None:
        super().__init__(parent.ctx, parent.num_partitions,
                         narrow_parents=[parent])

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        parent = self.narrow_parents[0]
        return parent.iterator(parent.num_partitions - 1 - split, tctx)


class CoalescedRDD(RDD):
    """Merge parent partitions into fewer, without shuffling."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.ctx, num_partitions, narrow_parents=[parent])
        self._groups: List[List[int]] = [
            list(range(i, parent.num_partitions, num_partitions))
            for i in range(num_partitions)
        ]

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        parent = self.narrow_parents[0]
        for p in self._groups[split]:
            yield from parent.iterator(p, tctx)


class ShuffledRDD(RDD):
    """Reduce side of one shuffle, with optional post-aggregation.

    ``post`` receives the full list of ``(key, value)`` pairs fetched for the
    partition and returns the records to emit; the transient hash tables it
    builds are charged against executor memory with the JVM-object overhead
    multiplier — these are the paper's "massive temporary data" of table
    joins.
    """

    def __init__(self, parent: RDD, partitioner: Partitioner,
                 map_side_combine: Tuple[Callable[[Any], Any],
                                         Callable[[Any, Any], Any]] | None = None,
                 post: Callable[[List[Tuple[Any, Any]]], Iterator[Any]] | None = None,
                 combine_op: str | None = None) -> None:
        dep = ShuffleDependency(parent, partitioner, map_side_combine,
                                combine_op=combine_op)
        super().__init__(
            parent.ctx, partitioner.num_partitions, shuffle_deps=[dep],
            partitioner=partitioner,
        )
        self._dep = dep
        self._post = post

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        pairs = self.ctx.shuffle_service.read(
            self._dep.shuffle_id, split, self._dep.parent.num_partitions,
            tctx.executor, tctx.cost, self.ctx.live_executor_map(),
        )
        if self._post is None:
            return iter(pairs)
        cm = self.ctx.cluster.cost_model
        temp_bytes = int(records_nbytes(pairs) * cm.jvm_object_overhead)
        tag = f"shuffle-agg:{self.id}:{split}"
        tctx.executor.container.memory.allocate(temp_bytes, tag=tag)
        try:
            op = self._dep.combine_op
            if (op in COMBINE_UFUNCS and pairs
                    and all(isinstance(b, RecordBatch) and b.is_columnar
                            for b in pairs)):
                # Columnar fast path: the reduce-side fold collapses to one
                # segment-reduce over the fetched batches; emits one batch.
                merged = RecordBatch.concat(pairs)
                keys, values = segment_reduce(merged.keys, merged.values, op)
                out: List[Any] = [RecordBatch(keys, values)]
            else:
                out = list(self._post(explode_records(pairs)))
        finally:
            tctx.executor.container.memory.release_tag(tag)
        return iter(out)


class CoGroupedRDD(RDD):
    """Group several pair-RDDs by key into tuples of value lists.

    Parents already partitioned by the target partitioner are read narrowly
    (no second shuffle) — the co-partitioning optimization GraphX relies on
    for its iterative vertex/message joins.
    """

    def __init__(self, ctx: "SparkContext", parents: List[RDD],
                 partitioner: Partitioner) -> None:
        narrow: List[RDD] = []
        deps: List[ShuffleDependency] = []
        self._sources: List[Tuple[str, Any]] = []
        for parent in parents:
            if (parent.partitioner == partitioner
                    and parent.num_partitions == partitioner.num_partitions):
                narrow.append(parent)
                self._sources.append(("narrow", parent))
            else:
                dep = ShuffleDependency(parent, partitioner)
                deps.append(dep)
                self._sources.append(("shuffle", dep))
        super().__init__(
            ctx, partitioner.num_partitions, narrow_parents=narrow,
            shuffle_deps=deps, partitioner=partitioner,
        )
        self._arity = len(parents)

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        groups: Dict[Any, Tuple[List[Any], ...]] = {}

        def slot(key: Any) -> Tuple[List[Any], ...]:
            got = groups.get(key)
            if got is None:
                got = tuple([] for _ in range(self._arity))
                groups[key] = got
            return got

        fetched: List[List[Tuple[Any, Any]]] = []
        for kind, source in self._sources:
            if kind == "narrow":
                pairs = list(source.iterator(split, tctx))
            else:
                pairs = self.ctx.shuffle_service.read(
                    source.shuffle_id, split, source.parent.num_partitions,
                    tctx.executor, tctx.cost, self.ctx.live_executor_map(),
                )
            fetched.append(explode_records(pairs))

        cm = self.ctx.cluster.cost_model
        temp_bytes = int(
            sum(records_nbytes(p) for p in fetched) * cm.jvm_object_overhead
        )
        tag = f"cogroup:{self.id}:{split}"
        tctx.executor.container.memory.allocate(temp_bytes, tag=tag)
        try:
            for i, pairs in enumerate(fetched):
                for k, v in pairs:
                    slot(k)[i].append(v)
            out = list(groups.items())
        finally:
            tctx.executor.container.memory.release_tag(tag)
        return iter(out)


class CartesianRDD(RDD):
    """Cross product: partition (i, j) pairs left partition i with right j."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx, left.num_partitions * right.num_partitions,
            narrow_parents=[left, right],
        )
        self._right_width = right.num_partitions

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        left, right = self.narrow_parents
        li, ri = divmod(split, self._right_width)
        left_records = list(left.iterator(li, tctx))
        for b in right.iterator(ri, tctx):
            for a in left_records:
                yield (a, b)


class ZippedPartitionsRDD(RDD):
    """Applies ``f(left_iter, right_iter)`` per same-indexed partition."""

    def __init__(self, left: RDD, right: RDD,
                 f: Callable[[Iterator[Any], Iterator[Any]],
                             Iterable[Any]]) -> None:
        super().__init__(left.ctx, left.num_partitions,
                         narrow_parents=[left, right])
        self._f = f

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        left, right = self.narrow_parents
        return iter(self._f(
            left.iterator(split, tctx), right.iterator(split, tctx)
        ))


class StatCounter:
    """Welford-style running statistics, mergeable across partitions."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def merge_value(self, x: float) -> "StatCounter":
        """Fold one value in."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.min = min(self.min, x)
        self.max = max(self.max, x)
        return self

    def merge_stats(self, other: "StatCounter") -> "StatCounter":
        """Fold another counter in (parallel-merge form of Welford)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return self
        delta = other.mean - self.mean
        total = self.count + other.count
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def stdev(self) -> float:
        """Population standard deviation."""
        return self.variance ** 0.5

    def __repr__(self) -> str:
        return (f"StatCounter(count={self.count}, mean={self.mean:.6g}, "
                f"stdev={self.stdev:.6g}, min={self.min:.6g}, "
                f"max={self.max:.6g})")


class TextFileRDD(RDD):
    """Lines of an HDFS directory (or single file), split across partitions."""

    def __init__(self, ctx: "SparkContext", path: str,
                 min_partitions: int | None = None) -> None:
        hdfs = ctx.hdfs
        if hdfs.exists(path):
            files = [path]
        else:
            files = hdfs.listdir(path)
        if not files:
            raise FileNotFoundError(f"no HDFS files under {path}")
        n = min_partitions or ctx.cluster.parallelism
        n = max(1, min(n, max(n, len(files))))
        super().__init__(ctx, n)
        self._files = files
        self._path = path

    def compute(self, split: int, tctx: TaskContext) -> Iterator[Any]:
        hdfs = self.ctx.hdfs
        # Deterministic assignment: file f's lines are range-split; each
        # partition reads its slice of every file assigned to it.
        for i, f in enumerate(self._files):
            if len(self._files) >= self.num_partitions:
                if i % self.num_partitions != split:
                    continue
                yield from hdfs.read_lines(f, cost=tctx.cost)
            else:
                lines = hdfs.read_lines(f, cost=tctx.cost)
                yield from lines[split::self.num_partitions]
