"""Broadcast variables — driver data shipped once to every executor.

Spark broadcasts read-only values (lookup maps, model snapshots) to the
executors instead of re-serializing them into every task closure.  The
simulated broadcast charges one network transfer per executor (a tree
broadcast would be log-depth; per-executor link time is what matters for
the stage critical path) and resident executor memory until
``unpersist()``.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.common.sizeof import sizeof

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext

_broadcast_ids = itertools.count()


class Broadcast:
    """Handle to a broadcast value.

    Attributes:
        value: the broadcast payload (read-only by convention).
    """

    def __init__(self, ctx: "SparkContext", value: Any) -> None:
        self._ctx = ctx
        self.id = next(_broadcast_ids)
        self.value = value
        self.nbytes = sizeof(value)
        self._live = True
        cm = ctx.cluster.cost_model
        transfer = cm.network_time(self.nbytes)
        tag = f"broadcast:{self.id}"
        for executor in ctx.executors:
            if not executor.alive:
                continue
            executor.container.clock.advance(transfer)
            executor.container.memory.allocate(self.nbytes, tag=tag)
        ctx.driver_clock.advance(transfer)

    def unpersist(self) -> None:
        """Release the broadcast copies from executor memory."""
        if not self._live:
            return
        self._live = False
        tag = f"broadcast:{self.id}"
        for executor in self._ctx.executors:
            executor.container.memory.release_tag(tag)

    @property
    def is_live(self) -> bool:
        """Whether executor copies are still resident."""
        return self._live
