"""Spark-like dataflow engine: lazy RDDs, DAG scheduler, metered shuffle."""

from repro.dataflow.broadcast import Broadcast
from repro.dataflow.context import SparkContext
from repro.dataflow.dataframe import DataFrame, GroupedData
from repro.dataflow.executor import Executor
from repro.dataflow.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.dataflow.rdd import RDD
from repro.dataflow.shuffle import ShuffleOutputLostError, ShuffleService
from repro.dataflow.taskctx import TaskContext, current_task_context

__all__ = [
    "Broadcast",
    "DataFrame",
    "Executor",
    "GroupedData",
    "HashPartitioner",
    "Partitioner",
    "RDD",
    "RangePartitioner",
    "ShuffleOutputLostError",
    "ShuffleService",
    "SparkContext",
    "TaskContext",
    "current_task_context",
]
