"""Wall-clock-parallel task execution under the deterministic simulator.

The columnar overhaul made single-core hot paths fast; this module adds the
next axis: running the tasks of one stage on a ``multiprocessing`` worker
pool so they use real cores, while keeping every *simulated* observable —
sim time, metrics, span sequences, collected results — bit-identical to
the serial scheduler loop.  PSGraph's premise is exactly this shape: Spark
executors saturate many cores per node while the driver remains the single
source of ordering (Sec. III-C / IV of the paper).

Design (see docs/performance.md for the full architecture write-up):

* **Fork-per-stage, optimistic.**  For an eligible stage the driver forks
  ``N = min(workers, partitions)`` workers; each inherits the entire
  driver state (RDD lineage, shuffle outputs, executor clocks) via
  copy-on-write, runs its ``partitions[w::N]`` slice sequentially, and
  ships one *task package* per task back through a pipe.

* **Deterministic merge barrier.**  Workers never mutate driver state.  A
  package carries the task's result, its ordered metric-event recording
  (:meth:`~repro.common.metrics.MetricsRegistry.begin_recording`), the
  spans it produced, any new shuffle map outputs, and its memory peak.
  The driver validates and replays packages **in partition dispatch
  order** — the exact order the serial loop would have used — so counter
  totals are the same IEEE additions in the same sequence, span lists are
  spliced identically, and executor clocks advance by the same busy time.

* **Shared-memory column transport.**  Columnar
  :class:`~repro.common.batch.RecordBatch` payloads (results and shuffle
  buckets) travel as one ``multiprocessing.shared_memory`` segment per
  package (:func:`~repro.common.batch.shm_export`); only tiny descriptors
  cross the pipe.  Boxed partitions fall back to pickle, counted by
  ``dataflow.pool.pickle_fallbacks``.

* **Serial fallback, never divergence.**  Any surprise — a worker death,
  a task exception, a metric event outside the replayable allowlist, a
  clock that moved during a task — invalidates the package, and the
  affected partitions (and everything after them) run through the
  unchanged serial loop, which reproduces errors, retries and side
  effects exactly.  Stages with cross-task couplings the fork cannot
  capture (task hooks, speculation, cached lineage, dead executors,
  PS/RPC side effects) are never dispatched in the first place — the
  scheduler checks eligibility before forking.

The pool is wall-clock machinery only: every ``dataflow.pool.*`` metric
is deliberately outside the simulated-cost contract, and equivalence
tests compare serial vs parallel runs modulo that prefix.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.common.batch import RecordBatch, shm_discard, shm_export, shm_import
from repro.common.metrics import (
    POOL_PICKLE_FALLBACKS,
    POOL_SHM_BYTES,
    POOL_TASKS_DISPATCHED,
    POOL_WORKERS_G,
    MetricsRegistry,
)
from repro.common.simclock import TaskCost
from repro.dataflow.taskctx import TaskContext, task_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext

#: Process-default worker count applied when a context is built without an
#: explicit ``parallel=`` argument.  Pool parallelism is host-side
#: configuration (like tracing), not simulated state: it cannot change any
#: simulated observable, only wall-clock speed.
DEFAULT_PARALLEL = 0

#: Seconds to wait for a worker to exit after its pipe closed.
WORKER_JOIN_TIMEOUT_S = 60.0


def set_default_parallel(workers: int | None) -> None:
    """Set the process-default pool width (0/None disables the pool).

    Used by CLIs (``--parallel N``) whose workloads build their contexts
    internally and cannot thread a constructor argument through.
    """
    global DEFAULT_PARALLEL
    DEFAULT_PARALLEL = int(workers) if workers else 0


def default_parallel() -> int:
    """The process-default pool width (see :func:`set_default_parallel`)."""
    return DEFAULT_PARALLEL


@dataclass
class TaskPackage:
    """Everything one pool task produced, for driver-side replay.

    Attributes:
        partition: partition the task computed.
        executor_index: index of the executor placement the worker used
            (validated against the driver's own placement on replay).
        cost: the task's simulated cost accumulator.
        result: the task function's return value.
        events: ordered metric events recorded while the task ran.
        spans: spans the task placed on its trace rows.
        outputs: shuffle map outputs the task registered, by
            ``(shuffle_id, map_partition)``.
        mem_peak: the executor's memory peak after the task (transient
            allocations net to zero; the peak is merged with ``max``).
        clock_drift: executor-clock movement during the task — must be
            0.0 (clocks stand still inside tasks) or the package is
            rejected.
        error: ``repr`` of the in-task exception, if one was raised.
    """

    partition: int
    executor_index: int
    cost: TaskCost
    result: Any = None
    events: List[Tuple[str, str, float]] = field(default_factory=list)
    spans: List[Any] = field(default_factory=list)
    outputs: Dict[Tuple[int, int], Any] = field(default_factory=dict)
    mem_peak: int = 0
    clock_drift: float = 0.0
    error: str | None = None


@dataclass
class _ShmRef:
    """Placeholder for a batch that travelled via shared memory."""

    index: int


def _batch_slots(pkg: TaskPackage) -> List[Tuple[Any, Any]]:
    """Locations in ``pkg`` that may hold a :class:`RecordBatch`.

    Returns ``(container, key)`` pairs such that ``container[key]`` is the
    batch — the encode pass swaps batches for :class:`_ShmRef` markers in
    place, and the decode pass swaps them back.  Batches appear in two
    places: elements of a list-shaped task result (or the result itself,
    boxed in its carrying list) and shuffle-output buckets.
    """
    slots: List[Tuple[Any, Any]] = []
    holder = pkg.__dict__
    if isinstance(pkg.result, (RecordBatch, _ShmRef)):
        slots.append((holder, "result"))
    elif isinstance(pkg.result, list):
        slots.extend(
            (pkg.result, i) for i, x in enumerate(pkg.result)
            if isinstance(x, (RecordBatch, _ShmRef))
        )
    for out in pkg.outputs.values():
        slots.extend(
            (out.buckets, pid) for pid, b in out.buckets.items()
            if isinstance(b, (RecordBatch, _ShmRef))
        )
    return slots


def _encode_package(pkg: TaskPackage) -> Tuple[Tuple, Optional[Any]]:
    """Swap columnar batches for shm refs; returns ``(message, shm)``.

    The message is ``(pkg, shm_name, shm_bytes, descriptors,
    pickled_batches)``; the caller must ``close()`` the returned segment
    (if any) once the message has been sent, and unlink it if the send
    failed (otherwise the importer unlinks).
    """
    slots = _batch_slots(pkg)
    columnar = [(c, k) for c, k in slots if c[k].is_columnar]
    pickled = len(slots) - len(columnar)
    if not columnar:
        return (pkg, None, 0, [], pickled), None
    shm, nbytes, descriptors = shm_export([c[k] for c, k in columnar])
    for i, (container, key) in enumerate(columnar):
        container[key] = _ShmRef(i)
    return (pkg, shm.name, nbytes, descriptors, pickled), shm


def _decode_package(message: Tuple,
                    metrics: MetricsRegistry) -> TaskPackage:
    """Adopt one worker message, restoring shm-shipped batches.

    Runs eagerly for *every* received package — including ones the
    scheduler later rejects — so each shared-memory segment is mapped,
    copied out and unlinked exactly once.
    """
    pkg, shm_name, nbytes, descriptors, pickled = message
    if shm_name is not None:
        batches = shm_import(shm_name, descriptors)
        for container, key in _batch_slots(pkg):
            ref = container[key]
            if isinstance(ref, _ShmRef):
                container[key] = batches[ref.index]
        metrics.inc(POOL_SHM_BYTES, float(nbytes))
    if pickled:
        metrics.inc(POOL_PICKLE_FALLBACKS, float(pickled))
    return pkg


def _run_one(ctx: "SparkContext", stage_id: int, partition: int,
             task: Callable[[int, TaskContext], Any]) -> TaskPackage:
    """Run one task inside a forked worker and capture its effects.

    Mirrors the serial loop's per-task body, but instead of mutating
    shared state it records metric events, new spans, new shuffle outputs
    and the memory peak for the driver to replay.  Exceptions (including
    simulated OOM) become error packages — the driver reruns the
    partition serially, reproducing the failure against real driver
    state.
    """
    executor = ctx.executor_for_partition(partition)
    tctx = TaskContext(stage_id, partition, executor, tracer=ctx.tracer)
    tracer = ctx.tracer
    span_mark = tracer.mark()
    outputs_before = ctx.shuffle_service.snapshot_keys()
    clock_before = executor.container.clock.now_s
    ctx.metrics.begin_recording()
    result: Any = None
    error: str | None = None
    try:
        with task_scope(tctx):
            executor.ensure_alive()
            result = task(partition, tctx)
    except BaseException as exc:  # noqa: BLE001 - driver reruns serially
        error = repr(exc)
    events = ctx.metrics.end_recording()
    return TaskPackage(
        partition=partition,
        executor_index=executor.index,
        cost=tctx.cost,
        result=result if error is None else None,
        events=events,
        spans=tracer.since(span_mark),
        outputs=ctx.shuffle_service.added_since(outputs_before),
        mem_peak=executor.container.memory.peak,
        clock_drift=executor.container.clock.now_s - clock_before,
        error=error,
    )


def _worker_main(conn: Any, ctx: "SparkContext", stage_id: int,
                 partitions: List[int],
                 task: Callable[[int, TaskContext], Any]) -> None:
    """Forked worker body: run assigned tasks, stream packages, exit.

    Ends with ``os._exit(0)`` so the inherited driver state (atexit
    handlers, buffered IO, resource-manager teardown) never runs twice.
    """
    try:
        for partition in partitions:
            pkg = _run_one(ctx, stage_id, partition, task)
            message, shm = _encode_package(pkg)
            try:
                conn.send(message)
            except Exception as exc:  # unpicklable result/spans/events
                if shm is not None:
                    shm_discard(shm)
                    shm = None
                # Pickling fails before any bytes hit the pipe, so the
                # stream is still clean for an error package.
                conn.send((TaskPackage(
                    partition=partition,
                    executor_index=pkg.executor_index,
                    cost=TaskCost(),
                    error=f"unpicklable package: {exc!r}",
                ), None, 0, [], 0))
            if shm is not None:
                shm.close()
        conn.send("done")
    except BaseException:  # noqa: BLE001 - worker death == serial fallback
        pass
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        os._exit(0)


class TaskPool:
    """Fork-per-stage process pool with a deterministic merge barrier.

    One instance lives on the :class:`SparkContext` when it is built with
    ``parallel >= 2``.  The pool owns no long-lived processes: workers are
    forked per eligible stage (a few ms on Linux) so they always see the
    driver's current lineage, caches and shuffle state without any
    shipping or synchronization protocol.

    Args:
        workers: maximum workers per stage (the effective width is
            ``min(workers, partitions)``).
        start_method: ``multiprocessing`` start method.  Only ``fork``
            can inherit the driver graph; ``spawn`` / ``forkserver``
            require the dispatch state to pickle, which the lambda-laden
            RDD lineage does not, so they probe and fall back to serial
            (see docs/performance.md for the caveat).
    """

    def __init__(self, workers: int, start_method: str = "fork") -> None:
        if workers < 2:
            raise ValueError("TaskPool needs at least 2 workers")
        if start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(f"unknown start method {start_method!r}")
        self.workers = int(workers)
        self.start_method = start_method

    def run_stage(self, ctx: "SparkContext", stage_id: int,
                  partitions: List[int],
                  task: Callable[[int, TaskContext], Any]
                  ) -> Optional[Dict[int, TaskPackage]]:
        """Run one stage's tasks on forked workers.

        Returns partition -> package for every task a worker delivered
        (possibly missing entries if a worker died), or ``None`` when the
        pool cannot run at all (start method cannot ship the closure).
        The caller — :meth:`DAGScheduler._run_tasks_pooled` — validates
        and replays the packages in dispatch order.
        """
        n = min(self.workers, len(partitions))
        if n < 2:
            return None
        mp_ctx = multiprocessing.get_context(self.start_method)
        if self.start_method != "fork":
            # Non-fork start methods pickle the Process args; the driver
            # graph (live contexts, lambdas in the lineage) is not
            # picklable, so probe instead of crashing mid-dispatch.
            try:
                pickle.dumps((ctx, task))
            except Exception:
                return None
        metrics = ctx.metrics
        metrics.set_gauge(POOL_WORKERS_G, float(n))
        metrics.inc(POOL_TASKS_DISPATCHED, float(len(partitions)))
        workers = []
        for w in range(n):
            recv_conn, send_conn = mp_ctx.Pipe(duplex=False)
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(send_conn, ctx, stage_id, partitions[w::n], task),
                daemon=True,
            )
            proc.start()
            # The parent drops its copy of the write end immediately so a
            # worker death surfaces as EOF on the read end.
            send_conn.close()
            workers.append((proc, recv_conn))
        packages: Dict[int, TaskPackage] = {}
        for proc, conn in workers:
            try:
                while True:
                    message = conn.recv()
                    if message == "done":
                        break
                    pkg = _decode_package(message, metrics)
                    packages[pkg.partition] = pkg
            except (EOFError, OSError):
                # Worker died mid-stream; its remaining partitions are
                # simply absent and fall back to the serial loop.
                pass
            finally:
                conn.close()
        for proc, _conn in workers:
            proc.join(timeout=WORKER_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.kill()
                proc.join()
        return packages
