"""SparkContext — the driver-side entry point of the dataflow engine.

"Spark has a context shared by all the executors, called SparkContext.
PSGraph uses it to get Spark settings and runtime statistics" (Sec. III-C).
The simulated context additionally owns the pieces a real cluster would
distribute: the executors (Yarn containers), the shuffle service, the DAG
scheduler, the HDFS client and the RPC environment shared with the parameter
server.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, List

import numpy as np

from repro.common.config import ClusterConfig
from repro.common.metrics import EXECUTORS_ALIVE_G, MetricsRegistry
from repro.common.simclock import SimClock, barrier
from repro.dataflow.executor import Executor
from repro.obs.tracer import NOOP_TRACER, NoopTracer
from repro.dataflow.pool import TaskPool, default_parallel
from repro.dataflow.rdd import RDD, ParallelCollectionRDD, TextFileRDD
from repro.dataflow.scheduler import DAGScheduler
from repro.dataflow.shuffle import ShuffleService
from repro.hdfs.filesystem import Hdfs
from repro.net.rpc import RpcEnv
from repro.yarn.resource_manager import Container, ResourceManager

#: Hook signature: ``hook(stage_id, partition, kind)`` called after each task.
TaskHook = Callable[[int, int, str], None]

#: Hook signature: ``hook(now_s)`` called on sim-clock ticks (stage ends,
#: PS barriers, recovery detection) — the telemetry sampling points.
TickHook = Callable[[float], None]


class SparkContext:
    """Driver for one simulated Spark application.

    Args:
        cluster: resource allocation and cost model for the job.
        hdfs: shared filesystem; created fresh when omitted.
        metrics: shared metrics registry; created fresh when omitted.
        resource_manager: shared Yarn; created fresh when omitted.
        rpc: shared RPC fabric (the PS attaches here); created when omitted.
        tracer: sim-time span tracer threaded into every subsystem this
            context creates; the default no-op tracer records nothing.
            (Subsystems passed in pre-built keep their own tracer.)
        app_name: label used for the driver container id.
        auto_restart_executors: when True (Spark's behaviour), a task routed
            to a dead executor restarts it via the resource manager instead
            of failing the job.
        retry_backoff_base_s / retry_backoff_max_s: exponential backoff the
            driver waits (in sim-time) before re-launching a failed task
            attempt: ``min(max, base * 2**(attempt-1))`` seconds.
        speculation: when True, a task whose preferred executor is a known
            straggler (``slowdown >= speculation_multiplier``) launches its
            speculative copy on the least-busy healthy executor instead —
            the copy wins and the straggler attempt is never started.
        speculation_multiplier: slowdown factor above which an executor is
            treated as a straggler by speculation.
        parallel: process-pool width for wall-clock-parallel task
            execution (``repro.dataflow.pool``).  ``None`` reads the
            process default set by ``--parallel`` CLIs; values below 2
            disable the pool.  Parallelism is host-side machinery only —
            sim time, metrics and spans are bit-identical either way.
        pool_start_method: ``multiprocessing`` start method for pool
            workers (default ``fork``; ``spawn``/``forkserver`` cannot
            ship the driver graph and fall back to serial).
    """

    def __init__(self, cluster: ClusterConfig, *,
                 hdfs: Hdfs | None = None,
                 metrics: MetricsRegistry | None = None,
                 resource_manager: ResourceManager | None = None,
                 rpc: RpcEnv | None = None,
                 tracer: NoopTracer = NOOP_TRACER,
                 app_name: str = "app",
                 auto_restart_executors: bool = True,
                 retry_backoff_base_s: float = 1.0,
                 retry_backoff_max_s: float = 60.0,
                 speculation: bool = False,
                 speculation_multiplier: float = 1.5,
                 parallel: int | None = None,
                 pool_start_method: str | None = None) -> None:
        self.cluster = cluster
        self.app_name = app_name
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.hdfs = hdfs if hdfs is not None else Hdfs(
            cluster.cost_model, self.metrics
        )
        self.resource_manager = (
            resource_manager if resource_manager is not None
            else ResourceManager(self.metrics, tracer=tracer)
        )
        self.rpc = rpc if rpc is not None else RpcEnv(
            cluster.cost_model, self.metrics
        )
        self.auto_restart_executors = auto_restart_executors
        self.retry_backoff_base_s = retry_backoff_base_s
        self.retry_backoff_max_s = retry_backoff_max_s
        self.speculation = speculation
        self.speculation_multiplier = speculation_multiplier
        self.parallel = max(
            0, default_parallel() if parallel is None else int(parallel)
        )
        self.pool: TaskPool | None = (
            TaskPool(self.parallel, pool_start_method or "fork")
            if self.parallel >= 2 else None
        )
        self.driver: Container = self.resource_manager.request(
            "driver", cluster.executor_mem_bytes, name=f"driver-{app_name}"
        )
        self.executors: List[Executor] = [
            Executor(i, c)
            for i, c in enumerate(
                self.resource_manager.request_many(
                    "executor", cluster.num_executors,
                    cluster.executor_mem_bytes, cluster.executor_cores,
                )
            )
        ]
        # The shuffle service, HDFS and RPC fabric trace their in-task
        # operations through the running TaskContext (see taskctx.task_span),
        # so only clock-owning subsystems receive the tracer directly.
        self.shuffle_service = ShuffleService(cluster.cost_model, self.metrics)
        self.scheduler = DAGScheduler(self)
        self._task_hooks: List[TaskHook] = []
        self._tick_hooks: List[TickHook] = []
        self._stopped = False
        self._update_liveness_gauge()
        # Per-context id streams: shuffle/RDD ids must restart at 0 for
        # every application so that span tags (e.g. "shuffle-3") are
        # reproducible across runs in the same process.
        self._shuffle_ids = itertools.count()
        self._rdd_ids = itertools.count()

    def next_shuffle_id(self) -> int:
        """Allocate a shuffle id unique within this context."""
        return next(self._shuffle_ids)

    def next_rdd_id(self) -> int:
        """Allocate an RDD id unique within this context."""
        return next(self._rdd_ids)

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------

    def parallelize(self, data: Iterable[Any],
                    num_partitions: int | None = None) -> RDD:
        """Distribute a driver-side collection into an RDD."""
        data = list(data)
        n = num_partitions or min(self.cluster.parallelism, max(1, len(data)))
        return ParallelCollectionRDD(self, data, max(1, n))

    def parallelize_batches(self, keys: Any, values: Any,
                            num_partitions: int | None = None) -> RDD:
        """Distribute aligned key/value columns as one RecordBatch per
        partition.

        Carries exactly the records ``parallelize(list(zip(keys, values)),
        n)`` would place in each partition (the same ``[i::n]`` slices, in
        the same order) but keeps them columnar, so the shuffle and
        reduce-by-key hot paths run vectorized.
        """
        from repro.common.batch import RecordBatch

        keys = np.asarray(keys)
        values = np.asarray(values)
        n = num_partitions or min(self.cluster.parallelism, max(1, len(keys)))
        n = max(1, n)
        batches = [
            RecordBatch(keys[i::n].copy(), values[i::n].copy())
            for i in range(n)
        ]
        return ParallelCollectionRDD(self, batches, n)

    def range(self, n: int, num_partitions: int | None = None) -> RDD:
        """RDD of ``0 .. n-1``."""
        return self.parallelize(range(n), num_partitions)

    def empty_rdd(self) -> RDD:
        """An RDD with a single empty partition."""
        return ParallelCollectionRDD(self, [], 1)

    def text_file(self, path: str,
                  min_partitions: int | None = None) -> RDD:
        """Lines of an HDFS file or directory."""
        return TextFileRDD(self, path, min_partitions)

    def union(self, rdds: List[RDD]) -> RDD:
        """Union of several RDDs."""
        from repro.dataflow.rdd import UnionRDD

        return UnionRDD(self, rdds)

    def broadcast(self, value: Any):
        """Ship a read-only value to every executor (charged once each)."""
        from repro.dataflow.broadcast import Broadcast

        return Broadcast(self, value)

    # ------------------------------------------------------------------
    # executors, placement and failure
    # ------------------------------------------------------------------

    def live_executor_map(self) -> dict:
        """Map of executor container id -> liveness, for the shuffle layer."""
        return {ex.id: ex.alive for ex in self.executors}

    def executor_for_partition(self, partition: int) -> Executor:
        """Deterministic preferred executor for a partition, with failover.

        Placement mixes the partition id (Knuth multiplicative hash) so
        that partition schemes which are themselves modular (``v mod P``)
        do not alias onto ``P mod E`` — otherwise several partitions of
        the *same* skewed key range would stack on one executor.
        """
        mixed = (partition * 2654435761 + 0x9E3779B9) & 0xFFFFFFFF
        idx = mixed % len(self.executors)
        executor = self.executors[idx]
        if executor.alive:
            return executor
        if self.auto_restart_executors:
            self.restart_executor(idx)
            # Verify the restart actually re-registered the executor as
            # alive before placing work on it; fall through to failover
            # if the container did not come back.
            if executor.alive:
                return executor
        # Failover: re-mix the already-mixed id over the *live* executors
        # so the dead executor's partitions spread across all survivors
        # instead of stacking onto the next index (skew).
        live = [ex for ex in self.executors if ex.alive]
        if not live:
            raise RuntimeError("no live executors")
        remixed = ((mixed ^ 0x85EBCA6B) * 0xC2B2AE35) & 0xFFFFFFFF
        return live[remixed % len(live)]

    def kill_executor(self, index: int, reason: str = "failure injection"
                      ) -> None:
        """Failure injection: kill one executor, losing its cache and
        shuffle outputs (Table II's "manually kill an executor")."""
        executor = self.executors[index]
        self.resource_manager.kill(executor.container, reason)
        executor.invalidate()
        self.shuffle_service.invalidate_executor(executor.id)
        self._update_liveness_gauge()

    def restart_executor(self, index: int) -> Executor:
        """Restart a dead executor via the resource manager."""
        executor = self.executors[index]
        self.resource_manager.restart(executor.container)
        executor.invalidate()
        self._update_liveness_gauge()
        return executor

    def handle_executor_failure(self, executor: Executor) -> None:
        """React to a mid-task container loss (scheduler callback)."""
        executor.invalidate()
        self.shuffle_service.invalidate_executor(executor.id)
        if self.auto_restart_executors:
            self.resource_manager.restart(executor.container)
        self._update_liveness_gauge()

    def _update_liveness_gauge(self) -> None:
        """Refresh the executor-liveness gauge after membership changes."""
        self.metrics.set_gauge(
            EXECUTORS_ALIVE_G,
            float(sum(1 for ex in self.executors if ex.alive)),
        )

    # ------------------------------------------------------------------
    # hooks & time
    # ------------------------------------------------------------------

    @property
    def has_task_hooks(self) -> bool:
        """Whether any post-task hooks are registered.

        The pool checks this for stage eligibility: hooks (chaos fault
        injection, telemetry probes) couple tasks to each other and to
        driver state mid-stage, which a forked worker cannot see, so
        hooked stages always run serially.
        """
        return bool(self._task_hooks)

    def add_task_hook(self, hook: TaskHook) -> None:
        """Register a post-task callback (used for failure injection)."""
        self._task_hooks.append(hook)

    def remove_task_hook(self, hook: TaskHook) -> None:
        """Unregister a post-task callback.

        Idempotent: removing a hook that is not (or no longer) registered
        is a no-op, so nested failure-injection experiments can tear down
        unconditionally.
        """
        try:
            self._task_hooks.remove(hook)
        except ValueError:
            pass

    def notify_task_complete(self, stage_id: int, partition: int,
                             kind: str) -> None:
        """Invoke registered task hooks (called by the scheduler)."""
        for hook in list(self._task_hooks):
            hook(stage_id, partition, kind)

    def add_tick_hook(self, hook: TickHook) -> None:
        """Register a sim-clock tick callback (telemetry sampling)."""
        self._tick_hooks.append(hook)

    def remove_tick_hook(self, hook: TickHook) -> None:
        """Unregister a tick callback (idempotent, like task hooks)."""
        try:
            self._tick_hooks.remove(hook)
        except ValueError:
            pass

    def notify_tick(self, now_s: float) -> None:
        """Invoke tick hooks at a deterministic sim-time sampling point.

        Called at stage-end barriers, PS epoch barriers and recovery
        detection — never from wall-clock timers, so a seeded run ticks
        at exactly the same sim times every time.
        """
        for hook in list(self._tick_hooks):
            hook(now_s)

    @property
    def driver_clock(self) -> SimClock:
        """The driver container's clock; job time is read from here."""
        return self.driver.clock

    def charge_driver_result(self, nbytes: int) -> None:
        """Charge the driver for collecting ``nbytes`` of results."""
        self.driver.clock.advance(
            self.cluster.cost_model.network_time(nbytes)
        )

    def sim_time(self) -> float:
        """Current simulated job time in seconds (driver clock)."""
        return self.driver.clock.now_s

    def sync_clocks(self) -> float:
        """Barrier the driver with every live executor; returns the time."""
        clocks = [self.driver.clock] + [
            ex.container.clock for ex in self.executors if ex.alive
        ]
        return barrier(clocks)

    def reset_clocks(self) -> None:
        """Zero all clocks (between independent measurements)."""
        self.driver.clock.reset()
        for ex in self.executors:
            ex.container.clock.reset()

    def stop(self) -> None:
        """Release every container owned by this context."""
        if self._stopped:
            return
        self._stopped = True
        for ex in self.executors:
            self.resource_manager.release(ex.container)
        self.resource_manager.release(self.driver)
