"""PSGraph reproduction (ICDE 2020).

A production-style Python implementation of Tencent's PSGraph — a graph
processing system that couples a Spark-like dataflow engine with a
distributed parameter server and an embedded autograd engine — running on a
simulated cluster with metered network/disk/memory so the paper's evaluation
(Fig. 6, Table I, Table II, Sec. V-B2) can be regenerated on one machine.

Public entry points:

* :class:`repro.core.PSGraphContext` — the PSGraph session (Spark + PS).
* :mod:`repro.core.algorithms` — PageRank, common neighbor, fast unfolding,
  K-core, triangle count, label propagation, LINE, GraphSage.
* :mod:`repro.graphx` — the GraphX baseline.
* :mod:`repro.experiments` — regenerate every table and figure.
"""

__version__ = "1.0.0"
