"""Command-line job submission — Listing 1's ``GraphRunner.main``.

Submits one algorithm over an edge-list file on the local filesystem (it is
staged into the simulated HDFS), prints the result summary, and optionally
writes the output back out::

    python -m repro.cli pagerank --input edges.tsv --iterations 20
    python -m repro.cli fast-unfolding --input weighted.tsv --weighted
    python -m repro.cli line --input edges.tsv --dim 32 --epochs 5
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Sequence

from repro.chaos import ChaosEngine, FaultSchedule
from repro.common.config import GB, ClusterConfig
from repro.obs import (
    NOOP_TRACER,
    TelemetryCollector,
    Tracer,
    build_telemetry_doc,
    timeline_report,
    write_chrome_trace,
    write_metrics_json,
)
from repro.core.algorithms import (
    CommonNeighbor,
    ConnectedComponents,
    DeepWalk,
    FastUnfolding,
    KCore,
    LabelPropagation,
    Line,
    PageRank,
    TriangleCount,
)
from repro.core.context import PSGraphContext
from repro.core.runner import GraphRunner

#: CLI name -> algorithm factory (configured from parsed args).
ALGORITHMS = (
    "pagerank", "common-neighbor", "fast-unfolding", "kcore",
    "triangle-count", "label-propagation", "connected-components",
    "line", "deepwalk",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run a PSGraph algorithm on an edge list.",
        epilog=(
            "Observability: --trace writes a Chrome-trace JSON (open in "
            "chrome://tracing or https://ui.perfetto.dev), --metrics dumps "
            "counters/gauges/histograms as JSON, --timeline prints a "
            "per-stage sim-time report.  See docs/observability.md."
        ),
    )
    parser.add_argument("algorithm", choices=ALGORITHMS)
    parser.add_argument("--input", required=True,
                        help="edge-list file: 'src<TAB>dst[<TAB>weight]'")
    parser.add_argument("--output", default=None,
                        help="write the result table to this local file")
    parser.add_argument("--weighted", action="store_true",
                        help="parse a third weight column")
    parser.add_argument("--executors", type=int, default=8)
    parser.add_argument("--servers", type=int, default=4)
    parser.add_argument("--executor-gb", type=float, default=4.0)
    parser.add_argument("--server-gb", type=float, default=4.0)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--dim", type=int, default=16,
                        help="embedding dimension (line / deepwalk)")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace JSON of the simulated "
                             "schedule to PATH")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write counters/gauges/histograms to PATH "
                             "as JSON")
    parser.add_argument("--timeline", action="store_true",
                        help="print a per-stage / per-iteration sim-time "
                             "timeline after the run")
    parser.add_argument("--telemetry", default=None, metavar="PATH",
                        help="sample windowed time-series + SLO burn-rate "
                             "alerts during the run and write the telemetry "
                             "document (render with 'repro-obs report')")
    parser.add_argument("--chaos", default=None, metavar="SCHEDULE.JSON",
                        help="inject this deterministic fault schedule "
                             "during the run and print a fault report "
                             "(see docs/fault-tolerance.md)")
    parser.add_argument("--speculation", action="store_true",
                        help="enable speculative execution for straggler "
                             "executors")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="run stage tasks on N worker processes "
                             "(wall-clock only; sim time, metrics and "
                             "results are bit-identical to serial — see "
                             "docs/performance.md)")
    parser.add_argument("--pool-start", default="fork",
                        choices=("fork", "spawn", "forkserver"),
                        help="multiprocessing start method for --parallel "
                             "workers (non-fork methods fall back to "
                             "serial when the job graph cannot pickle)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="PS auto-checkpoint interval in iterations "
                             "(default: 1 when --chaos is given, else 0)")
    return parser


def make_algorithm(args: argparse.Namespace):
    """Instantiate the requested algorithm from parsed args."""
    name = args.algorithm
    if name == "pagerank":
        return PageRank(max_iterations=args.iterations)
    if name == "common-neighbor":
        return CommonNeighbor()
    if name == "fast-unfolding":
        return FastUnfolding()
    if name == "kcore":
        return KCore(max_iterations=args.iterations)
    if name == "triangle-count":
        return TriangleCount()
    if name == "label-propagation":
        return LabelPropagation(max_iterations=args.iterations)
    if name == "connected-components":
        return ConnectedComponents(max_iterations=args.iterations)
    if name == "line":
        return Line(dim=args.dim, epochs=args.epochs, seed=args.seed)
    if name == "deepwalk":
        return DeepWalk(dim=args.dim, epochs=args.epochs, seed=args.seed)
    raise ValueError(name)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    with open(args.input) as f:
        lines: List[str] = [ln.strip() for ln in f if ln.strip()]
    cluster = ClusterConfig(
        num_executors=args.executors,
        executor_mem_bytes=int(args.executor_gb * GB),
        num_servers=args.servers,
        server_mem_bytes=int(args.server_gb * GB),
    )
    # Telemetry needs spans for the critical-path profile, so --telemetry
    # implies tracing.
    tracing = (args.trace is not None or args.timeline
               or args.telemetry is not None)
    tracer = Tracer() if tracing else NOOP_TRACER
    checkpoint_every = args.checkpoint_every
    if checkpoint_every is None:
        checkpoint_every = 1 if args.chaos else 0
    schedule = FaultSchedule.load(args.chaos) if args.chaos else None
    with PSGraphContext(cluster, app_name=f"cli-{args.algorithm}",
                        tracer=tracer,
                        checkpoint_interval=checkpoint_every,
                        speculation=args.speculation,
                        parallel=args.parallel,
                        pool_start_method=args.pool_start) as ctx:
        ctx.hdfs.write_text("/input/edges/part-00000", lines)
        collector = None
        if args.telemetry is not None:
            collector = TelemetryCollector(
                ctx.metrics, tracer).attach(ctx.spark)
        engine = None
        if schedule is not None:
            engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
            if collector is not None:
                engine.bind_telemetry(collector)
        try:
            result = GraphRunner(ctx).run(
                make_algorithm(args), "/input/edges",
                "/output" if args.output else None,
                weighted=args.weighted,
            )
        finally:
            if engine is not None:
                engine.detach()
            if collector is not None:
                collector.finalize(ctx.sim_time())
                collector.detach()
        if engine is not None:
            print(engine.describe())
        print(f"algorithm : {args.algorithm}")
        print(f"iterations: {result.iterations}")
        for key, value in sorted(result.stats.items()):
            if isinstance(value, (int, float)):
                print(f"{key:10s}: {value}")
        print(f"sim time  : {ctx.sim_time():.3f} s")
        if args.output:
            rows = ctx.spark.text_file("/output").collect()
            with open(args.output, "w") as f:
                f.write("\n".join(rows) + "\n")
            print(f"wrote {len(rows)} rows to {args.output}")
        # Artifact writes come after the run; a bad path must not dump a
        # traceback over the (already printed) results.
        rc = 0
        if args.trace:
            try:
                n = write_chrome_trace(args.trace, tracer)
                print(f"wrote {n} trace events to {args.trace}")
            except OSError as e:
                print(f"error: cannot write trace: {e}", file=sys.stderr)
                rc = 1
        if args.metrics:
            try:
                write_metrics_json(args.metrics, ctx.metrics)
                print(f"wrote metrics to {args.metrics}")
            except OSError as e:
                print(f"error: cannot write metrics: {e}", file=sys.stderr)
                rc = 1
        if args.telemetry and collector is not None:
            doc = build_telemetry_doc(
                collector, tracer, ctx.sim_time(),
                meta={"algorithm": args.algorithm, "seed": args.seed,
                      "executors": args.executors,
                      "servers": args.servers},
                chaos=engine.report() if engine is not None else None,
            )
            try:
                with open(args.telemetry, "w") as f:
                    json.dump(doc, f, indent=2, sort_keys=True)
                alerts = collector.alerts
                print(f"wrote telemetry ({len(alerts)} alert(s)) to "
                      f"{args.telemetry}; render with "
                      f"'repro-obs report {args.telemetry}'")
            except OSError as e:
                print(f"error: cannot write telemetry: {e}",
                      file=sys.stderr)
                rc = 1
        if args.timeline:
            print()
            print(timeline_report(tracer, sim_time_s=ctx.sim_time()))
    return rc


if __name__ == "__main__":
    sys.exit(main())
