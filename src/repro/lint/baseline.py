"""Finding baselines: accept today's debt, fail on anything new.

A baseline is a committed JSON file (conventionally
``lint-baseline.json`` at the repository root) mapping violation
*fingerprints* to accepted occurrence counts.  Linting against it
subtracts up to that many matching findings per fingerprint, so
pre-existing, deliberately-kept findings do not fail CI while any new
finding — or an extra occurrence of a baselined one — still does.

Fingerprints deliberately exclude line and column numbers: unrelated
edits that shift a finding up or down the file must not invalidate the
baseline.  They include the rule id, the module-relative path, and a
short hash of the message, which for the SIM1xx rules embeds the
function and callee names — specific enough that a *different* finding
in the same file does not silently ride along.

Workflow::

    python -m repro.lint src/repro --write-baseline   # accept current
    python -m repro.lint src/repro                    # auto-detects it

Shrink the file over time by fixing findings and re-writing; a stale
entry (baselined finding that no longer occurs) is reported by
:func:`apply_baseline` so CI can keep the file honest.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.rules import Violation

#: Conventional baseline file name, auto-detected by the CLI.
DEFAULT_BASELINE = "lint-baseline.json"

_FORMAT_VERSION = 1


def fingerprint(v: Violation) -> str:
    """Stable identity of a finding: ``RULE|path|msghash``."""
    digest = hashlib.sha256(v.message.encode("utf-8")).hexdigest()[:12]
    return f"{v.rule_id}|{v.path}|{digest}"


def write_baseline(violations: Sequence[Violation],
                   path: str | Path) -> Dict[str, int]:
    """Write ``path`` accepting every given violation; returns entries."""
    entries: Dict[str, int] = {}
    for v in violations:
        fp = fingerprint(v)
        entries[fp] = entries.get(fp, 0) + 1
    doc = {
        "version": _FORMAT_VERSION,
        "comment": ("Accepted repro-lint findings; regenerate with "
                    "`python -m repro.lint src/repro --write-baseline`. "
                    "Each entry is RULE|path|message-hash -> count."),
        "entries": dict(sorted(entries.items())),
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")
    return entries


def load_baseline(path: str | Path) -> Dict[str, int]:
    """Read a baseline file; returns fingerprint -> accepted count."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    entries = doc.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}


def apply_baseline(
    violations: Sequence[Violation], entries: Dict[str, int],
) -> Tuple[List[Violation], int, List[str]]:
    """Split findings into (new, suppressed count, stale fingerprints).

    Matching is per fingerprint with a count budget: the baseline
    absorbs at most ``entries[fp]`` findings of each fingerprint; any
    surplus is new.  Fingerprints with leftover budget are stale —
    their finding was fixed and the baseline should be regenerated.
    """
    budget = dict(entries)
    fresh: List[Violation] = []
    suppressed = 0
    for v in violations:
        fp = fingerprint(v)
        if budget.get(fp, 0) > 0:
            budget[fp] -= 1
            suppressed += 1
        else:
            fresh.append(v)
    stale = sorted(fp for fp, left in budget.items() if left > 0)
    return fresh, suppressed, stale
