"""Staleness / race detection by replaying PS access spans.

GraphTheta-style flexible sync strategies (and our own ASP mode) are
exactly where stale-read and lost-update hazards hide: two workers touch
the same PS matrix in overlapping sim-time windows with no synchronization
edge between them.  This module replays the spans a
:class:`~repro.obs.tracer.Tracer` recorded during a run and applies a
happens-before check:

* **accesses** are the client-side ``ps.*`` spans (executor task rows and
  the driver's ``ps-agent`` row) — each tagged with the matrix (and
  column, when the operation is column-scoped) it touched;
* **fences** are global synchronization points: the end of every dataflow
  stage (the scheduler barriers all live executor clocks) and every BSP
  iteration barrier of :class:`~repro.ps.sync.SyncController`.  ASP
  iteration marks are *not* fences — that is the point of ASP;
* access ``a`` happens-before ``b`` iff they are on the same component in
  program order, or a fence separates them.

Two accesses to the same matrix location conflict when neither
happens-before the other, they come from different components, and at
least one writes.  Conflicts classify as:

* ``stale-read`` — a read concurrent with a write: the reader may observe
  the pre-write value (bounded staleness under ASP);
* ``lost-update`` — two concurrent writes where at least one is a
  destructive ``set``-style overwrite.  Concurrent *increments*
  (``push``-family ops) commute on the server and are not reported.

The detector is deliberately a reporting tool, not a gate: Pregel-style
algorithms tolerate bounded intra-stage staleness by design.  The
determinism harness surfaces the windows so a reviewer can decide whether
they are accepted semantics or a bug.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import INSTANT, Span

#: Fence kinds (for diagnostics).
FENCE_STAGE = "stage-barrier"
FENCE_BARRIER = "bsp-barrier"

#: Client-side PS operations that only read server state.
READ_OPS = {"pull", "pull_slices", "get_neighbors", "degrees",
            "table_size"}

#: Client-side PS operations that write server state.
WRITE_OPS = {"push", "set", "push_slices", "set_slices", "push_neighbors",
             "apply_gradients", "psfunc", "compact"}

#: Writes that are commutative increments: concurrent ones merge cleanly.
COMMUTATIVE_OPS = {"push", "push_slices", "push_neighbors"}


@dataclass(frozen=True)
class PsAccess:
    """One client-side PS matrix access reconstructed from a span."""

    component: str
    op: str
    matrix: str
    col: int | None
    start_s: float
    end_s: float

    @property
    def is_write(self) -> bool:
        """Whether the access mutates server state."""
        return self.op in WRITE_OPS

    @property
    def is_commutative(self) -> bool:
        """Whether concurrent instances of this write merge cleanly."""
        return self.op in COMMUTATIVE_OPS

    def describe(self) -> str:
        loc = self.matrix if self.col is None else \
            f"{self.matrix}[col={self.col}]"
        return (f"{self.component} {self.op} {loc} "
                f"@[{self.start_s:.6f}, {self.end_s:.6f}]")


@dataclass(frozen=True)
class RaceReport:
    """One hazard: a pair of unsynchronized conflicting accesses."""

    kind: str  # "stale-read" | "lost-update"
    matrix: str
    a: PsAccess
    b: PsAccess
    count: int = 1

    def describe(self) -> str:
        more = f" (+{self.count - 1} more like this)" if self.count > 1 \
            else ""
        return (f"{self.kind} on `{self.matrix}`: {self.a.describe()} "
                f"unordered with {self.b.describe()}{more}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "matrix": self.matrix,
            "a": self.a.describe(),
            "b": self.b.describe(),
            "count": self.count,
        }


def extract_accesses(spans: Iterable[Span]) -> List[PsAccess]:
    """Client-side PS accesses from a recorded span list.

    Server-side spans (the ``ops`` track of ``ps-server-*`` components)
    show the *serialized* order the simulator happened to execute in; the
    logical concurrency lives in the client-side spans, which is what a
    race is about.
    """
    out: List[PsAccess] = []
    for span in spans:
        if span.kind == INSTANT or not span.name.startswith("ps."):
            continue
        if span.track == "ops":  # server-side view
            continue
        tags = span.tags or {}
        matrix = tags.get("matrix")
        if not isinstance(matrix, str):
            continue
        op = span.name[3:]
        if op not in READ_OPS and op not in WRITE_OPS:
            continue
        col = tags.get("col")
        out.append(PsAccess(
            span.component, op, matrix,
            int(col) if col is not None else None,
            span.start_s, span.end_s,
        ))
    out.sort(key=lambda a: (a.start_s, a.end_s, a.component, a.op))
    return out


def extract_fences(spans: Iterable[Span]) -> List[Tuple[float, str]]:
    """Global synchronization points, sorted by time.

    Stage ends are fences because the DAG scheduler barriers every live
    executor clock at the end of a stage; BSP iteration marks are fences
    because :meth:`SyncController.barrier` aligns executors *and* servers.
    ASP iteration marks are intentionally not fences.
    """
    fences: List[Tuple[float, str]] = []
    for span in spans:
        if span.component != "driver":
            continue
        if span.track == "stages" and span.kind != INSTANT:
            fences.append((span.end_s, FENCE_STAGE))
        elif span.track == "iterations" and span.kind == INSTANT:
            if (span.tags or {}).get("mode") == "bsp":
                fences.append((span.start_s, FENCE_BARRIER))
    fences.sort()
    return fences


def _fence_between(times: Sequence[float], lo: float, hi: float) -> bool:
    """Whether some fence time t satisfies ``lo <= t <= hi``."""
    if lo > hi:
        return False
    i = bisect_left(times, lo)
    return i < len(times) and times[i] <= hi


def happens_before(a: PsAccess, b: PsAccess,
                   fence_times: Sequence[float]) -> bool:
    """Whether ``a`` happens-before ``b`` under the fence set.

    Same-component accesses are ordered by program order (the simulator
    runs one component's operations serially on its own clock); cross-
    component ordering needs a fence between the two windows.
    """
    if a.end_s > b.start_s:
        return False
    if a.component == b.component:
        return True
    return _fence_between(fence_times, a.end_s, b.start_s)


def _conflict_kind(a: PsAccess, b: PsAccess) -> str | None:
    """Classify a concurrent pair; None when it is not a hazard."""
    if not (a.is_write or b.is_write):
        return None
    if a.is_write and b.is_write:
        if a.is_commutative and b.is_commutative:
            return None  # concurrent increments merge on the server
        return "lost-update"
    return "stale-read"


def _same_location(a: PsAccess, b: PsAccess) -> bool:
    """Column-scoped ops on different columns touch disjoint locations."""
    if a.matrix != b.matrix:
        return False
    return a.col is None or b.col is None or a.col == b.col


def find_races(spans: Iterable[Span] | None = None, *,
               accesses: Sequence[PsAccess] | None = None,
               fences: Sequence[Tuple[float, str]] | None = None,
               ) -> List[RaceReport]:
    """Find unsynchronized conflicting PS access pairs.

    Call with a raw span list (accesses and fences are extracted), or pass
    ``accesses`` / ``fences`` directly for hand-built sequences in tests.
    Reports are deduplicated per (matrix, kind, op pair) — which pair of
    *operations* conflicts, not which executors happened to collide — and
    the ``count`` field carries how many concrete windows matched.
    """
    if accesses is None:
        accesses = extract_accesses(spans or [])
    if fences is None:
        fences = extract_fences(spans or []) if spans is not None else []
    fence_times = sorted(t for t, _kind in fences)

    by_matrix: Dict[str, List[PsAccess]] = {}
    for acc in sorted(accesses,
                      key=lambda a: (a.start_s, a.end_s, a.component)):
        by_matrix.setdefault(acc.matrix, []).append(acc)

    found: Dict[Tuple, RaceReport] = {}
    for matrix, accs in by_matrix.items():
        for i, a in enumerate(accs):
            # Once a fence separates `a` from everything later, program
            # order + that fence orders all remaining pairs: stop early.
            nxt = bisect_left(fence_times, a.end_s)
            horizon = fence_times[nxt] if nxt < len(fence_times) else None
            for b in accs[i + 1:]:
                if horizon is not None and b.start_s >= horizon:
                    break
                if a.component == b.component:
                    continue
                if not _same_location(a, b):
                    continue
                if happens_before(a, b, fence_times) \
                        or happens_before(b, a, fence_times):
                    continue
                kind = _conflict_kind(a, b)
                if kind is None:
                    continue
                key = (matrix, kind, tuple(sorted([a.op, b.op])))
                prior = found.get(key)
                if prior is None:
                    found[key] = RaceReport(kind, matrix, a, b)
                else:
                    found[key] = RaceReport(
                        prior.kind, prior.matrix, prior.a, prior.b,
                        prior.count + 1,
                    )
    return sorted(found.values(),
                  key=lambda r: (r.matrix, r.kind,
                                 r.a.start_s, r.b.start_s))
