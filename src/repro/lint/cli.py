"""``python -m repro.lint`` / ``repro-lint`` — the linter's front door.

Static pass::

    python -m repro.lint src/repro              # lint the package
    python -m repro.lint --list-rules           # show the rule set
    python -m repro.lint src --disable SIM005   # drop one rule
    python -m repro.lint src --json             # machine-readable output
    python -m repro.lint src --sarif out.sarif  # GitHub code scanning
    python -m repro.lint src --cache .lint-cache.json   # incremental
    python -m repro.lint src --write-baseline   # accept current findings

A committed ``lint-baseline.json`` next to the current working directory
is picked up automatically; findings recorded there don't fail the run,
anything new does.

Dynamic pass::

    python -m repro.lint --dynamic pagerank graphsage --strict
    python -m repro.lint --dynamic pagerank --seed 7 --fail-on-races

Exit codes: 0 clean, 1 violations / determinism failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.dynamic import WORKLOADS, check_determinism
from repro.lint.engine import format_human, format_json, lint_tree
from repro.lint.rules import RULES, get_rules
from repro.lint.sarif import format_sarif


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("Simulation-invariant static analyzer and "
                     "determinism harness for the PSGraph reproduction."),
        epilog=("Suppress a finding with `# repro-lint: disable=RULE` on "
                "the offending line, or `# repro-lint: disable-file=RULE` "
                "for a whole module.  See docs/static-analysis.md."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit JSON instead of human-readable lines")
    parser.add_argument(
        "--enable", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--disable", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="also write the findings as SARIF 2.1.0 to FILE "
             "('-' for stdout)")
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline of accepted findings (default: auto-detect "
             f"./{DEFAULT_BASELINE}; pass an empty string to disable)")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0")
    parser.add_argument(
        "--cache", metavar="FILE",
        help="incremental-analysis cache (e.g. .lint-cache.json); "
             "unchanged files are not re-parsed")
    parser.add_argument(
        "--dynamic", nargs="+", metavar="WORKLOAD",
        choices=sorted(WORKLOADS),
        help="run the determinism harness on these workloads instead of "
             f"the static pass (choices: {', '.join(sorted(WORKLOADS))})")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for the determinism harness (default: the repo seed)")
    parser.add_argument(
        "--strict", action="store_true",
        help="determinism: fail on any float drift > 0 between the runs")
    parser.add_argument(
        "--fail-on-races", action="store_true",
        help="determinism: also fail when unsynchronized PS access "
             "windows are observed (default: report only)")
    parser.add_argument(
        "--parallel", type=int, default=0, metavar="N",
        help="determinism: run the workloads with an N-worker task pool "
             "(both runs; proves pool execution is bit-identical too)")
    return parser


def _run_static(args: argparse.Namespace) -> int:
    try:
        rules = get_rules(
            args.enable.split(",") if args.enable else None,
            args.disable.split(",") if args.disable else None,
        )
    except KeyError as exc:
        print(f"error: unknown rule {exc.args[0]} "
              f"(known: {', '.join(sorted(RULES))})", file=sys.stderr)
        return 2
    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    violations, _stats = lint_tree(paths, rules, cache_path=args.cache)

    baseline_path: Path | None = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not args.write_baseline and not baseline_path.exists():
            print(f"error: no such baseline: {baseline_path}",
                  file=sys.stderr)
            return 2
    elif args.baseline is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = Path(DEFAULT_BASELINE)

    if args.write_baseline:
        target = baseline_path if baseline_path is not None \
            else Path(DEFAULT_BASELINE)
        entries = write_baseline(violations, target)
        print(f"wrote {target} ({len(entries)} fingerprint"
              f"{'s' if len(entries) != 1 else ''}, "
              f"{len(violations)} finding"
              f"{'s' if len(violations) != 1 else ''})")
        return 0

    suppressed = 0
    if baseline_path is not None:
        violations, suppressed, stale = apply_baseline(
            violations, load_baseline(baseline_path))
        for fp in stale:
            print(f"note: stale baseline entry (finding fixed?): {fp}",
                  file=sys.stderr)

    if args.sarif:
        sarif_text = format_sarif(violations, rules)
        if args.sarif == "-":
            print(sarif_text, end="")
        else:
            Path(args.sarif).write_text(sarif_text, encoding="utf-8")
    if not (args.sarif == "-"):
        print(format_json(violations) if args.json
              else format_human(violations))
        if suppressed and not args.json:
            print(f"repro-lint: {suppressed} baselined finding"
                  f"{'s' if suppressed != 1 else ''} suppressed")
    return 1 if violations else 0


def _run_dynamic(args: argparse.Namespace) -> int:
    from repro.common.rng import DEFAULT_SEED
    from repro.dataflow.pool import set_default_parallel

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    # Workloads build their contexts internally, so the pool width goes
    # through the process default rather than a constructor argument.
    set_default_parallel(args.parallel)
    reports = []
    failed = False
    try:
        for name in args.dynamic:
            report = check_determinism(name, seed, strict=args.strict)
            reports.append(report)
            if not report.ok or (args.fail_on_races and report.races):
                failed = True
    finally:
        set_default_parallel(0)
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.describe())
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name:22s} {rule.description}")
        return 0
    if args.dynamic:
        return _run_dynamic(args)
    return _run_static(args)


if __name__ == "__main__":
    sys.exit(main())
