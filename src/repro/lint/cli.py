"""``python -m repro.lint`` / ``repro-lint`` — the linter's front door.

Static pass::

    python -m repro.lint src/repro              # lint the package
    python -m repro.lint --list-rules           # show the rule set
    python -m repro.lint src --disable SIM005   # drop one rule
    python -m repro.lint src --json             # machine-readable output

Dynamic pass::

    python -m repro.lint --dynamic pagerank graphsage --strict
    python -m repro.lint --dynamic pagerank --seed 7 --fail-on-races

Exit codes: 0 clean, 1 violations / determinism failure, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.lint.dynamic import WORKLOADS, check_determinism
from repro.lint.engine import format_human, format_json, lint_paths
from repro.lint.rules import RULES, get_rules


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description=("Simulation-invariant static analyzer and "
                     "determinism harness for the PSGraph reproduction."),
        epilog=("Suppress a finding with `# repro-lint: disable=RULE` on "
                "the offending line, or `# repro-lint: disable-file=RULE` "
                "for a whole module.  See docs/static-analysis.md."),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit JSON instead of human-readable lines")
    parser.add_argument(
        "--enable", metavar="RULES",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--disable", metavar="RULES",
        help="comma-separated rule ids to skip")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit")
    parser.add_argument(
        "--dynamic", nargs="+", metavar="WORKLOAD",
        choices=sorted(WORKLOADS),
        help="run the determinism harness on these workloads instead of "
             f"the static pass (choices: {', '.join(sorted(WORKLOADS))})")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="seed for the determinism harness (default: the repo seed)")
    parser.add_argument(
        "--strict", action="store_true",
        help="determinism: fail on any float drift > 0 between the runs")
    parser.add_argument(
        "--fail-on-races", action="store_true",
        help="determinism: also fail when unsynchronized PS access "
             "windows are observed (default: report only)")
    return parser


def _run_static(args: argparse.Namespace) -> int:
    try:
        rules = get_rules(
            args.enable.split(",") if args.enable else None,
            args.disable.split(",") if args.disable else None,
        )
    except KeyError as exc:
        print(f"error: unknown rule {exc.args[0]}", file=sys.stderr)
        return 2
    paths = args.paths or ["src/repro"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    violations = lint_paths(paths, rules)
    print(format_json(violations) if args.json
          else format_human(violations))
    return 1 if violations else 0


def _run_dynamic(args: argparse.Namespace) -> int:
    from repro.common.rng import DEFAULT_SEED

    seed = args.seed if args.seed is not None else DEFAULT_SEED
    reports = []
    failed = False
    for name in args.dynamic:
        report = check_determinism(name, seed, strict=args.strict)
        reports.append(report)
        if not report.ok or (args.fail_on_races and report.races):
            failed = True
    if args.json:
        print(json.dumps([r.to_dict() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.describe())
    return 1 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.name:22s} {rule.description}")
        return 0
    if args.dynamic:
        return _run_dynamic(args)
    return _run_static(args)


if __name__ == "__main__":
    sys.exit(main())
