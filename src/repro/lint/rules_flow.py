"""Flow-sensitive lint rules SIM101..SIM105.

Where the SIM0xx rules pattern-match single expressions, this family
reasons over the control-flow graphs of :mod:`repro.lint.cfg` and the
interprocedural summaries of :mod:`repro.lint.dataflow`:

* **SIM101** — closure-capture safety for RDD operations: a closure
  shipped to ``map``/``filter``-family methods must not capture a
  ``SparkContext``/``PSContext``, an open resource, or a name that is
  rebound after the closure is created (the late-binding trap that
  turns latent under lazy or multi-process execution — the exact
  precondition for running map tasks on a ``multiprocessing`` pool).
* **SIM102** — unpicklable captures: locks, threads, sockets, open
  generators and lambda-bound names cannot cross a process boundary.
* **SIM103** — metering contract: inside the sim subsystems, a function
  that moves bytes (file/socket IO, pickling, numpy materializations —
  directly or via a callee) must charge ``TaskCost`` / a sim clock /
  a metering span on **every** path from entry to exit.
* **SIM104** — RNG taint: a value derived from an unseeded generator
  must not reach a partitioner, sampler, or PS push — those sinks feed
  placement and training state, where nondeterminism silently changes
  results instead of failing loudly.
* **SIM105** — resource leaks: a span/file/handle opened on some path
  must be released, returned, or escape on every path to the exit.

All five report through the same :class:`~repro.lint.rules.Violation`
machinery, honour ``# repro-lint: disable=...`` suppressions, and run
from the same CLI; the engine supplies a shared
:class:`~repro.lint.dataflow.ProgramIndex` when linting a whole tree so
summaries cross file boundaries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.cfg import (
    CFG,
    EXCEPT,
    ITER,
    TEST,
    WITH,
    _walk_same_scope,
    build_cfg,
)
from repro.lint.dataflow import (
    CHARGES_METERING,
    MOVES_BYTES,
    RETURNS_RESOURCE,
    UNSEEDED_RNG,
    RESOURCE_RELEASERS,
    ProgramIndex,
    annotated_param_types,
    _call_effects,
    _is_unseeded_ctor,
    _METERING_CALLS,
    _module_class_map,
    _RESOURCE_OPENERS,
)
from repro.lint.rules import (
    Rule,
    SIM_SUBSYSTEMS,
    Violation,
    _RDD_METHODS,
    _bound_names,
    _dotted,
    _import_aliases,
    _resolve,
    register,
)


class FlowRule(Rule):
    """A rule that needs CFGs and (optionally) whole-program summaries.

    The engine calls :meth:`check_flow` with a shared
    :class:`ProgramIndex` covering every linted module; the plain
    :meth:`check` entry point still works for single-file use and
    builds a one-module index on the fly.
    """

    needs_program = True

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        index = ProgramIndex()
        index.add_module(relpath, tree)
        index.resolve()
        return self.check_flow(tree, relpath, index)

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared walking helpers
# ----------------------------------------------------------------------


def iter_functions_with_class(
        tree: ast.AST
) -> Iterable[Tuple[ast.FunctionDef, Optional[str]]]:
    """Yield every (async) function def with its enclosing class name."""
    stack: List[Tuple[ast.AST, Optional[str]]] = [(tree, None)]
    while stack:
        node, cls = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                stack.append((child, cls))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            else:
                stack.append((child, cls))


def _stmt_contains(stmt: ast.AST, needle: ast.AST) -> bool:
    for sub in ast.walk(stmt):
        if sub is needle:
            return True
    return False


def _node_for(cfg: CFG, needle: ast.AST) -> Optional[int]:
    """The CFG node whose evaluated statement contains ``needle``.

    Compound statements are split by the builder — their test/iter/items
    live on dedicated nodes — so containment is checked against the part
    each node actually evaluates.
    """
    for node in cfg.nodes:
        stmt = node.stmt
        if stmt is None:
            continue
        if node.kind == TEST:
            root: ast.AST = stmt.test  # type: ignore[attr-defined]
        elif node.kind == ITER:
            root = stmt.iter  # type: ignore[attr-defined]
        elif node.kind == WITH and isinstance(stmt, ast.withitem):
            root = stmt.context_expr
        elif node.kind == EXCEPT:
            continue
        elif isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor,
                               ast.With, ast.AsyncWith, ast.Try)):
            continue  # handled via their split nodes
        else:
            root = stmt
        if _stmt_contains(root, needle):
            # Do not attribute a nested function's body to the node that
            # merely defines it — except when the needle IS that def.
            return node.idx
    return None


def _free_names(func: ast.Lambda | ast.FunctionDef) -> Set[str]:
    """Names the closure reads from the enclosing scope."""
    bound = _bound_names(func)
    body = func.body if isinstance(func.body, list) else [func.body]
    free: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                    and node.id not in bound:
                free.add(node.id)
    return free


def _closure_args(call: ast.Call,
                  local_defs: Dict[str, ast.FunctionDef]
                  ) -> List[ast.Lambda | ast.FunctionDef]:
    """Function-valued arguments of one RDD-method call."""
    out: List[ast.Lambda | ast.FunctionDef] = []
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Lambda):
            out.append(arg)
        elif isinstance(arg, ast.Name) and arg.id in local_defs:
            out.append(local_defs[arg.id])
    return out


#: Methods that submit a closure to the process pool, where it must
#: survive a fork/pickle boundary (see ``repro.dataflow.pool`` and the
#: multiprocessing checklist in docs/static-analysis.md).
_POOL_SUBMIT_METHODS = {"run_stage", "run_job"}


def _rdd_calls(func: ast.AST,
               methods: Set[str] = _RDD_METHODS) -> List[ast.Call]:
    """Calls to closure-shipping methods inside one function body."""
    out = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in methods:
            out.append(node)
    return out


#: Driver-context constructors a shipped closure must never capture.
_DRIVER_CONTEXTS = {
    "SparkContext", "PSContext", "GraphContext", "SparkSession",
}

#: Constructors whose instances cannot cross a pickle boundary.
_UNPICKLABLE_CTORS = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "threading.Thread", "threading.local",
    "socket.socket", "iter", "memoryview",
}


def _def_value(node_stmt: ast.AST | None, name: str) -> Optional[ast.AST]:
    """The RHS expression a def node binds ``name`` to, when syntactic."""
    if isinstance(node_stmt, ast.Assign):
        for t in node_stmt.targets:
            if isinstance(t, ast.Name) and t.id == name:
                return node_stmt.value
    if isinstance(node_stmt, ast.AnnAssign) \
            and isinstance(node_stmt.target, ast.Name) \
            and node_stmt.target.id == name:
        return node_stmt.value
    return None


def _ctor_name(value: ast.AST | None,
               aliases: Dict[str, str]) -> Optional[str]:
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            return _resolve(dotted, aliases)
    return None


def _annotation_name(func: ast.FunctionDef | ast.AsyncFunctionDef,
                     param: str) -> Optional[str]:
    args = func.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        if a.arg == param and a.annotation is not None:
            dotted = _dotted(a.annotation)
            if dotted:
                return dotted
            if isinstance(a.annotation, ast.Constant) \
                    and isinstance(a.annotation.value, str):
                return a.annotation.value
    return None


# ----------------------------------------------------------------------
# SIM101 — closure-capture safety
# ----------------------------------------------------------------------


@register
class ClosureCaptureRule(FlowRule):
    """SIM101: RDD closures must capture only stable, shippable values."""

    id = "SIM101"
    name = "closure-capture"
    description = ("RDD closure captures a driver context, an open "
                   "resource, or a name rebound after creation (unsafe "
                   "for process-pool execution)")

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for func, _cls in iter_functions_with_class(tree):
            out.extend(self._check_function(func, relpath, aliases))
        return out

    def _check_function(self, func: ast.FunctionDef, relpath: str,
                        aliases: Dict[str, str]) -> List[Violation]:
        calls = _rdd_calls(func)
        if not calls:
            return []
        cfg = build_cfg(func)
        in_sets = cfg.reaching_definitions()
        gen = cfg.definitions()
        local_defs = {
            n.name: n for n in ast.walk(func)
            if isinstance(n, ast.FunctionDef) and n is not func
        }
        out: List[Violation] = []
        reported: Set[Tuple[int, str, str]] = set()
        for call in calls:
            node_idx = _node_for(cfg, call)
            if node_idx is None:
                continue
            for closure in _closure_args(call, local_defs):
                for name in sorted(_free_names(closure)):
                    v = self._check_capture(
                        cfg, in_sets, gen, node_idx, call, closure, name,
                        func, relpath, aliases)
                    if v is not None:
                        key = (v.line, name, v.message[:40])
                        if key not in reported:
                            reported.add(key)
                            out.append(v)
        return out

    def _check_capture(self, cfg: CFG, in_sets, gen, node_idx: int,
                       call: ast.Call,
                       closure: ast.Lambda | ast.FunctionDef, name: str,
                       func: ast.FunctionDef, relpath: str,
                       aliases: Dict[str, str]) -> Optional[Violation]:
        defs = {idx for (n, idx) in in_sets[node_idx] if n == name}
        # (a) capture of a driver context or open resource
        for d in defs:
            stmt = cfg.nodes[d].stmt
            ctor = _ctor_name(_def_value(stmt, name), aliases)
            if ctor is not None:
                bare = ctor.rsplit(".", 1)[-1]
                if bare in _DRIVER_CONTEXTS:
                    return self.violation(
                        call,
                        f"closure captures `{name}`, a {bare} — driver "
                        "contexts hold sockets and scheduler state and "
                        "must never ship to executors", relpath)
                if ctor in _RESOURCE_OPENERS:
                    return self.violation(
                        call,
                        f"closure captures `{name}`, an open resource "
                        f"from `{ctor}(...)`; open handles cannot cross "
                        "a task boundary", relpath)
            if isinstance(stmt, ast.arguments):
                ann = _annotation_name(func, name)
                if ann and ann.rsplit(".", 1)[-1] in _DRIVER_CONTEXTS:
                    return self.violation(
                        call,
                        f"closure captures parameter `{name}` annotated "
                        f"{ann} — driver contexts must never ship to "
                        "executors", relpath)
        # (b) rebinding after closure creation: a definition of the name
        # reachable *from* the call site means some execution order has
        # the closure observe a different value than the one captured
        # here (late binding; real once tasks are deferred to a pool).
        all_defs = {
            n.idx for n in cfg.nodes
            if name in gen.get(n.idx, ())
        }
        later = {
            d for d in all_defs
            if d != node_idx and cfg.exists_path(node_idx, d)
        }
        if later:
            line = min(cfg.nodes[d].lineno for d in later)
            return self.violation(
                call,
                f"closure captures `{name}` which is rebound afterwards "
                f"(e.g. line {line}); late binding makes the task read "
                "whichever value is current when it finally runs — bind "
                "it via a default argument or a local", relpath)
        return None


# ----------------------------------------------------------------------
# SIM102 — unpicklable captures
# ----------------------------------------------------------------------


@register
class UnpicklableCaptureRule(FlowRule):
    """SIM102: RDD closures must only capture picklable values."""

    id = "SIM102"
    name = "unpicklable-capture"
    description = ("RDD or pool-submitted closure captures an unpicklable "
                   "object (lock, thread, socket, generator, lambda) that "
                   "cannot cross a process boundary")

    #: RDD methods plus the pool submission boundary: closures handed to
    #: ``TaskPool.run_stage`` / ``DAGScheduler.run_job`` additionally run
    #: in forked worker processes, so the same capture rules apply (see
    #: the multiprocessing checklist in docs/static-analysis.md).
    _METHODS = _RDD_METHODS | _POOL_SUBMIT_METHODS

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for func, _cls in iter_functions_with_class(tree):
            calls = _rdd_calls(func, self._METHODS)
            if not calls:
                continue
            cfg = build_cfg(func)
            in_sets = cfg.reaching_definitions()
            local_defs = {
                n.name: n for n in ast.walk(func)
                if isinstance(n, ast.FunctionDef) and n is not func
            }
            for call in calls:
                node_idx = _node_for(cfg, call)
                if node_idx is None:
                    continue
                for closure in _closure_args(call, local_defs):
                    out.extend(self._check_closure(
                        cfg, in_sets, node_idx, call, closure,
                        relpath, aliases))
        return out

    def _check_closure(self, cfg: CFG, in_sets, node_idx: int,
                       call: ast.Call,
                       closure: ast.Lambda | ast.FunctionDef,
                       relpath: str,
                       aliases: Dict[str, str]) -> List[Violation]:
        out: List[Violation] = []
        for name in sorted(_free_names(closure)):
            defs = {idx for (n, idx) in in_sets[node_idx] if n == name}
            for d in defs:
                stmt = cfg.nodes[d].stmt
                value = _def_value(stmt, name)
                ctor = _ctor_name(value, aliases)
                what: Optional[str] = None
                if ctor is not None and ctor in _UNPICKLABLE_CTORS:
                    what = f"a `{ctor}(...)` instance"
                elif isinstance(value, ast.GeneratorExp):
                    what = "a generator (consumed-once iterator state)"
                elif isinstance(value, ast.Lambda):
                    what = "a lambda (pickle cannot serialize lambdas)"
                if what is not None:
                    out.append(self.violation(
                        call,
                        f"closure captures `{name}`, {what}; it cannot "
                        "be serialized to a worker process", relpath))
                    break
        return out


# ----------------------------------------------------------------------
# SIM103 — metering contract
# ----------------------------------------------------------------------


def _call_full(call: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    dotted = _dotted(call.func)
    return _resolve(dotted, aliases) if dotted is not None else None


#: Parameter names that identify a cost accumulator / task context.
_COST_PARAMS = {"cost", "tctx", "task_cost", "taskctx"}

#: Annotations that identify metering capability.
_COST_ANNOTATIONS = {"TaskCost", "TaskContext"}


def _has_metering_capability(func: ast.FunctionDef) -> bool:
    """Whether ``func`` is a party to the metering contract.

    A function that receives a cost accumulator / task context, consults
    the cost model, or charges anywhere has opted into the metering
    regime: byte-moving work on an uncharged path is then a broken
    contract.  A pure math helper with no access to any accumulator
    cannot charge — its *callers* hold the obligation, and the
    ``moves_bytes`` effect propagates up to them through the summaries.
    """
    args = func.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        if a.arg in _COST_PARAMS:
            return True
        if a.annotation is not None:
            ann = _dotted(a.annotation)
            if ann and ann.rsplit(".", 1)[-1] in _COST_ANNOTATIONS:
                return True
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            continue
        if isinstance(node, ast.Name) \
                and node.id in ("cost_model", "tctx", "cost"):
            return True
        if isinstance(node, ast.Attribute) \
                and node.attr in ("cost_model", "cost"):
            return True
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted and dotted.rsplit(".", 1)[-1] \
                    == "current_task_context":
                return True
    return False


def _passes_cost_accumulator(call: ast.Call) -> bool:
    """Whether a call hands its cost accumulator to the callee.

    ``shuffle.read(..., tctx.cost, ...)`` delegates metering — the
    callee charges on the caller's accumulator — so the call site
    satisfies the contract on its path.
    """
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Name) \
                and (arg.id in ("cost", "tctx")
                     or arg.id.endswith("_cost")):
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == "cost":
            return True
    return False


#: Conventional names for the current task context.
_TCTX_NAMES = {"tctx", "task_ctx", "taskctx"}


def _none_guard_shape(test: ast.AST) -> Tuple[Optional[str], str]:
    """Decompose a None-guard test: (guarded name, vacuous branch label).

    The *vacuous* branch is the one taken when the guarded value is
    None — i.e. when there is no task context to charge.
    """
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None \
            and isinstance(test.left, ast.Name):
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, "true"
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, "false"
    if isinstance(test, ast.Name):
        return test.id, "false"
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) \
            and isinstance(test.operand, ast.Name):
        return test.operand.id, "true"
    return None, ""


def _is_task_context(cfg: CFG, in_sets, idx: int, name: str,
                     aliases: Dict[str, str]) -> bool:
    """Whether ``name`` at node ``idx`` holds the current task context."""
    if name in _TCTX_NAMES:
        return True
    defs = {d for (n, d) in in_sets[idx] if n == name}
    if not defs:
        return False
    for d in defs:
        value = _def_value(cfg.nodes[d].stmt, name)
        if not isinstance(value, ast.Call):
            return False
        full = _call_full(value, aliases)
        if not (full and full.rsplit(".", 1)[-1]
                == "current_task_context"):
            return False
    return True


def _vacuous_guard_edges(cfg: CFG,
                         aliases: Dict[str, str]
                         ) -> Set[Tuple[int, int]]:
    """Edges entering the context-is-None branch of a task-ctx guard.

    ``charge_primitive_compute`` and friends are documented no-ops when
    ``current_task_context()`` is None (driver-side execution, where
    there is no accumulator to charge).  A path through the None branch
    of ``if tctx is not None: <charge>`` is therefore vacuously
    compliant, not an unmetered path — cutting these edges keeps SIM103
    focused on paths where a context exists and is never charged.
    """
    candidates = [
        n for n in cfg.nodes
        if n.kind == TEST and isinstance(n.stmt, ast.If)
        and _none_guard_shape(n.stmt.test)[0] is not None
    ]
    if not candidates:
        return set()
    in_sets = cfg.reaching_definitions()
    cut: Set[Tuple[int, int]] = set()
    for node in candidates:
        name, vacuous = _none_guard_shape(node.stmt.test)
        if not _is_task_context(cfg, in_sets, node.idx, name, aliases):
            continue
        for s in cfg.succ[node.idx]:
            if cfg.edge_labels.get((node.idx, s)) == vacuous:
                cut.add((node.idx, s))
    return cut


@register
class MeteringContractRule(FlowRule):
    """SIM103: byte-moving sim-subsystem code must charge the cost model."""

    id = "SIM103"
    name = "metering-contract"
    description = ("metering-party function moves bytes (IO / pickling / "
                   "numpy materialization) on a path that never charges "
                   "TaskCost, a sim clock, or a metering span")
    scope = SIM_SUBSYSTEMS
    exempt = ("cli.py",)

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        program.resolve()
        aliases = _import_aliases(tree)
        class_map = _module_class_map(relpath, tree)
        out: List[Violation] = []
        for func, cls in iter_functions_with_class(tree):
            if not _has_metering_capability(func):
                continue
            ptypes = annotated_param_types(func, aliases, class_map)
            out.extend(self._check_function(
                func, cls, relpath, aliases, program, ptypes))
        return out

    def _node_roles(self, cfg: CFG, func_cls: Optional[str], relpath: str,
                    aliases: Dict[str, str], program: ProgramIndex,
                    ptypes: Dict[str, str],
                    ) -> Tuple[Dict[int, str], Set[int]]:
        """Classify nodes: byte movers and metering points."""
        movers: Dict[int, str] = {}
        meters: Set[int] = set()
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None or isinstance(stmt, ast.arguments):
                continue
            if node.kind in (TEST, ITER):
                roots: List[ast.AST] = [stmt.test if node.kind == TEST
                                        else stmt.iter]  # type: ignore
            elif node.kind == WITH and isinstance(stmt, ast.withitem):
                roots = [stmt.context_expr]
            elif node.kind == EXCEPT:
                continue
            elif isinstance(stmt, (ast.If, ast.While, ast.For,
                                   ast.AsyncFor, ast.With, ast.AsyncWith,
                                   ast.Try)):
                continue
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                # A def statement only binds a name; its body runs when
                # *called* and is analyzed as its own function.
                continue
            else:
                roots = [stmt]
            charges = False
            moves: Optional[str] = None
            for root in roots:
                for sub in _walk_same_scope(root):
                    if isinstance(sub, (ast.Assign, ast.AugAssign)):
                        targets = (sub.targets
                                   if isinstance(sub, ast.Assign)
                                   else [sub.target])
                        for t in targets:
                            if isinstance(t, ast.Attribute) \
                                    and t.attr in ("cpu_s", "net_s",
                                                   "disk_s"):
                                charges = True
                    if not isinstance(sub, ast.Call):
                        continue
                    full = _call_full(sub, aliases)
                    effects = set(_call_effects(full)) if full else set()
                    if full:
                        tail = full.rsplit(".", 1)[-1]
                        if tail in _METERING_CALLS:
                            charges = True
                    if _passes_cost_accumulator(sub):
                        charges = True
                    summary = program.summary_for_call(
                        sub, relpath, func_cls, aliases, ptypes)
                    if summary is not None:
                        effects |= summary.effects
                        if CHARGES_METERING in summary.effects:
                            charges = True
                    if MOVES_BYTES in effects and moves is None:
                        moves = full or "<call>"
            if charges:
                meters.add(node.idx)
            elif moves is not None:
                movers[node.idx] = moves
        return movers, meters

    def _check_function(self, func: ast.FunctionDef, cls: Optional[str],
                        relpath: str, aliases: Dict[str, str],
                        program: ProgramIndex,
                        ptypes: Dict[str, str]) -> List[Violation]:
        cfg = build_cfg(func)
        movers, meters = self._node_roles(cfg, cls, relpath, aliases,
                                          program, ptypes)
        if not movers:
            return []
        out: List[Violation] = []
        # A mover is in violation iff some entry->exit path passes it
        # while touching no metering node at all.  Paths entering the
        # None branch of a task-context guard are vacuously compliant
        # (nothing to charge to) and are cut from the search.
        cut = _vacuous_guard_edges(cfg, aliases)
        fwd = cfg.reachable_from(cfg.entry, meters, cut)
        bwd = cfg.reaches(cfg.exit, meters, cut)
        for idx, what in sorted(movers.items()):
            if idx in fwd and idx in bwd:
                node = cfg.nodes[idx]
                out.append(Violation(
                    self.id, relpath, node.lineno,
                    getattr(node.stmt, "col_offset", 0),
                    f"`{cfg.name}` moves bytes via `{what}(...)` on a "
                    "path that never charges TaskCost / a sim clock / a "
                    "metering span; unmetered work is invisible to the "
                    "cost model",
                ))
        return out


# ----------------------------------------------------------------------
# SIM104 — RNG taint
# ----------------------------------------------------------------------

#: Method names whose arguments feed placement, sampling, or PS state.
_TAINT_SINKS = {
    "partition_by", "get_partition", "push", "increment", "set",
    "sample", "take_sample", "sample_neighbors", "negative_sample",
}


@register
class RngTaintRule(FlowRule):
    """SIM104: unseeded randomness must not feed partitioning or PS state."""

    id = "SIM104"
    name = "rng-taint"
    description = ("value derived from an unseeded RNG flows into a "
                   "partitioner, sampler, or PS push — placement and "
                   "training state silently stop being reproducible")
    scope = SIM_SUBSYSTEMS + ("core/", "experiments/")

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        program.resolve()
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for func, cls in iter_functions_with_class(tree):
            out.extend(self._check_function(
                func, cls, relpath, aliases, program))
        return out

    def _rng_call(self, value: ast.AST, relpath: str, cls: Optional[str],
                  aliases: Dict[str, str],
                  program: ProgramIndex) -> Optional[str]:
        """The unseeded source inside ``value``, if any."""
        for sub in _walk_same_scope(value):
            if not isinstance(sub, ast.Call):
                continue
            full = _call_full(sub, aliases)
            if full is not None:
                if UNSEEDED_RNG in _call_effects(full) \
                        or _is_unseeded_ctor(sub, full):
                    return full
            summary = program.summary_for_call(sub, relpath, cls, aliases)
            if summary is not None and UNSEEDED_RNG in summary.effects:
                return summary.name + "()"
        return None

    def _check_function(self, func: ast.FunctionDef, cls: Optional[str],
                        relpath: str, aliases: Dict[str, str],
                        program: ProgramIndex) -> List[Violation]:
        cfg = build_cfg(func)
        in_sets = cfg.reaching_definitions()
        gen = cfg.definitions()
        # def-site taint: (name, node) -> source description
        taint: Dict[Tuple[str, int], str] = {}
        changed = True
        while changed:
            changed = False
            for node in cfg.nodes:
                names = gen.get(node.idx, ())
                if not names:
                    continue
                stmt = node.stmt
                for name in names:
                    key = (name, node.idx)
                    if key in taint:
                        continue
                    value = _def_value(stmt, name)
                    if value is None and node.kind == ITER:
                        value = stmt.iter  # type: ignore[attr-defined]
                    if value is None:
                        continue
                    src = self._rng_call(value, relpath, cls, aliases,
                                         program)
                    if src is None:
                        # derived taint: RHS reads a tainted name
                        for sub in ast.walk(value):
                            if isinstance(sub, ast.Name) \
                                    and isinstance(sub.ctx, ast.Load):
                                defs = {
                                    idx for (n, idx)
                                    in in_sets[node.idx] if n == sub.id
                                }
                                for d in defs:
                                    hit = taint.get((sub.id, d))
                                    if hit is not None:
                                        src = hit
                                        break
                            if src is not None:
                                break
                    if src is not None:
                        taint[key] = src
                        changed = True
        if not taint:
            return []
        out: List[Violation] = []
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None or isinstance(stmt, ast.arguments) \
                    or node.kind == EXCEPT \
                    or isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef)):
                continue
            root: ast.AST = stmt
            if node.kind == TEST:
                root = stmt.test  # type: ignore[attr-defined]
            elif node.kind == ITER:
                root = stmt.iter  # type: ignore[attr-defined]
            for sub in _walk_same_scope(root):
                if not (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in _TAINT_SINKS):
                    continue
                args = list(sub.args) + [kw.value for kw in sub.keywords]
                for arg in args:
                    for leaf in ast.walk(arg):
                        if not (isinstance(leaf, ast.Name)
                                and isinstance(leaf.ctx, ast.Load)):
                            continue
                        defs = {
                            idx for (n, idx) in in_sets[node.idx]
                            if n == leaf.id
                        }
                        srcs = {taint[(leaf.id, d)] for d in defs
                                if (leaf.id, d) in taint}
                        if srcs:
                            out.append(self.violation(
                                sub,
                                f"`{leaf.id}` is derived from unseeded "
                                f"`{sorted(srcs)[0]}` and flows into "
                                f"`.{sub.func.attr}(...)`; seed it via "
                                "repro.common.rng so placement/state "
                                "stays reproducible", relpath))
                            break
                    else:
                        continue
                    break
        return out


# ----------------------------------------------------------------------
# SIM105 — resource leaks
# ----------------------------------------------------------------------


@register
class ResourceLeakRule(FlowRule):
    """SIM105: opened spans/handles must be released on every path."""

    id = "SIM105"
    name = "resource-leak"
    description = ("span/file/handle opened but not released, returned, "
                   "or handed off on some path to the function exit")

    def check_flow(self, tree: ast.AST, relpath: str,
                   program: ProgramIndex) -> List[Violation]:
        program.resolve()
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for func, cls in iter_functions_with_class(tree):
            out.extend(self._check_function(
                func, cls, relpath, aliases, program))
        return out

    def _opens_resource(self, value: ast.AST, relpath: str,
                        cls: Optional[str], aliases: Dict[str, str],
                        program: ProgramIndex) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        full = _call_full(value, aliases)
        if full is not None:
            if full in _RESOURCE_OPENERS:
                return full
            tail = full.rsplit(".", 1)[-1]
            if tail in ("clock_span", "cost_span", "task_span"):
                return full
        summary = program.summary_for_call(value, relpath, cls, aliases)
        if summary is not None \
                and RETURNS_RESOURCE in summary.local_effects:
            return summary.name + "()"
        return None

    def _check_function(self, func: ast.FunctionDef, cls: Optional[str],
                        relpath: str, aliases: Dict[str, str],
                        program: ProgramIndex) -> List[Violation]:
        cfg = build_cfg(func)
        opens: List[Tuple[int, str, str]] = []  # (node, name, what)
        for node in cfg.nodes:
            stmt = node.stmt
            if node.kind == WITH:
                continue  # `with open(...)` is the safe form
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                what = self._opens_resource(stmt.value, relpath, cls,
                                            aliases, program)
                if what is not None:
                    opens.append((node.idx, stmt.targets[0].id, what))
        if not opens:
            return []
        out: List[Violation] = []
        gen = cfg.definitions()
        for open_idx, name, what in opens:
            discharge = self._discharge_nodes(cfg, name)
            # Re-binding the name also ends our tracking window.
            rebinds = {
                n.idx for n in cfg.nodes
                if n.idx != open_idx
                and name in gen.get(n.idx, ())
            }
            safe = discharge | rebinds
            if cfg.exists_path(open_idx, cfg.exit, safe):
                node = cfg.nodes[open_idx]
                out.append(Violation(
                    self.id, relpath, node.lineno,
                    getattr(node.stmt, "col_offset", 0),
                    f"`{name}` holds an open resource from `{what}(...)` "
                    "but some path reaches the function exit without "
                    "closing/releasing it; use `with` or release in a "
                    "`finally`",
                ))
        return out

    def _discharge_nodes(self, cfg: CFG, name: str) -> Set[int]:
        """Nodes that release ``name`` or transfer ownership of it."""
        out: Set[int] = set()
        for node in cfg.nodes:
            stmt = node.stmt
            if stmt is None or isinstance(stmt, ast.arguments):
                continue
            if node.kind == WITH and isinstance(stmt, ast.withitem):
                expr = stmt.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    out.add(node.idx)
                continue
            roots: List[ast.AST]
            if node.kind == TEST:
                roots = [stmt.test]  # type: ignore[attr-defined]
            elif node.kind == ITER:
                roots = [stmt.iter]  # type: ignore[attr-defined]
            elif node.kind == EXCEPT:
                continue
            elif isinstance(stmt, (ast.If, ast.While, ast.For,
                                   ast.AsyncFor, ast.With, ast.AsyncWith,
                                   ast.Try)):
                continue
            else:
                roots = [stmt]
            for root in roots:
                if self._discharges(root, name):
                    out.add(node.idx)
                    break
        return out

    @staticmethod
    def _discharges(root: ast.AST, name: str) -> bool:
        for sub in ast.walk(root):
            # r.close() / r.release() / r.__exit__()
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and isinstance(sub.func.value, ast.Name) \
                    and sub.func.value.id == name \
                    and sub.func.attr in RESOURCE_RELEASERS:
                return True
            # ownership transfer: return r / yield r / f(r) / obj.x = r /
            # container[k] = r / alias = r
            if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                v = sub.value
                if isinstance(v, ast.Name) and v.id == name:
                    return True
            if isinstance(sub, ast.Call):
                for arg in list(sub.args) + [kw.value for kw
                                             in sub.keywords]:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
            if isinstance(sub, ast.Assign):
                if isinstance(sub.value, ast.Name) \
                        and sub.value.id == name:
                    return True
        return False
