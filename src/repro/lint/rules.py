"""Simulation-invariant lint rules (SIM001..SIM005).

Each rule is a small AST pass scoped to the package-relative paths where
its invariant must hold.  The registry maps rule ids to singleton rule
instances; :func:`get_rules` resolves ``--enable`` / ``--disable``
selections for the CLI.

The invariants (see ``docs/static-analysis.md`` for the full rationale):

* **SIM001** — simulated components must read :class:`~repro.common.
  simclock.SimClock` / :class:`~repro.common.simclock.TaskCost`, never the
  wall clock, or sim-time results depend on host speed.
* **SIM002** — randomness must come from seeded :mod:`repro.common.rng`
  streams, never the ambient ``random`` / ``numpy.random`` module state,
  or runs stop being bit-reproducible.
* **SIM003** — simulated subsystems must do IO through the metered
  :mod:`repro.hdfs` / RPC fabric, never the host filesystem, or costs
  leak out of the simulation.
* **SIM004** — iterating a ``set`` feeds hash order into shuffle
  partitioning / PS row ordering, which breaks run-to-run determinism
  under hash randomization.
* **SIM005** — closures shipped into RDD operations must not mutate
  captured driver state (lost on a real cluster, where closures are
  serialized) or sort/reverse partition data in place (aliases shuffled
  records shared with caches).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Package-relative directories that form the simulated cluster: code here
#: must not touch the host filesystem, wall clock or ambient RNG.
SIM_SUBSYSTEMS: Tuple[str, ...] = (
    "dataflow/", "ps/", "hdfs/", "graphx/", "core/", "net/", "yarn/",
)


@dataclass(frozen=True)
class Violation:
    """One rule hit: where it is and what invariant it breaks."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` (clickable in most editors)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} {self.message}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class Rule:
    """Base class: id/description plus path scoping.

    Attributes:
        id: stable rule identifier (``SIM001`` ...).
        name: short human name.
        description: one-line summary shown by ``--list-rules``.
        scope: relpath prefixes the rule applies to; empty = everywhere.
        exempt: relpath prefixes (or exact files) the rule skips.
    """

    id: str = "SIM000"
    name: str = "base"
    description: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        """Whether this rule runs on the module at ``relpath``."""
        if any(relpath == e or relpath.startswith(e) for e in self.exempt):
            return False
        if self.scope:
            return any(relpath.startswith(s) for s in self.scope)
        return True

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        """Return the rule's violations for one parsed module."""
        raise NotImplementedError

    def violation(self, node: ast.AST, message: str,
                  relpath: str) -> Violation:
        """Helper: a violation anchored at ``node``."""
        return Violation(
            self.id, relpath,
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            message,
        )


#: Registry of rule id -> singleton instance, in registration order.
RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of ``cls`` to :data:`RULES`."""
    inst = cls()
    RULES[inst.id] = inst
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in registration order."""
    return list(RULES.values())


def get_rules(enable: Iterable[str] | None = None,
              disable: Iterable[str] | None = None) -> List[Rule]:
    """Resolve a rule selection.

    Args:
        enable: when given, only these ids run.
        disable: ids to drop (applied after ``enable``).

    Raises:
        KeyError: an id that is not registered.
    """
    chosen = list(RULES)
    if enable:
        wanted = [r.upper() for r in enable]
        for r in wanted:
            if r not in RULES:
                raise KeyError(r)
        chosen = [r for r in chosen if r in wanted]
    if disable:
        dropped = {r.upper() for r in disable}
        for r in dropped:
            if r not in RULES:
                raise KeyError(r)
        chosen = [r for r in chosen if r not in dropped]
    return [RULES[r] for r in chosen]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------


def _import_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted thing they import.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve(dotted: str, aliases: Dict[str, str]) -> str:
    """Rewrite the head of a dotted chain through the import aliases."""
    head, _, rest = dotted.partition(".")
    full = aliases.get(head)
    if full is None:
        return dotted
    return f"{full}.{rest}" if rest else full


# ----------------------------------------------------------------------
# SIM001 — wall-clock use
# ----------------------------------------------------------------------

#: Fully-qualified callables that read the host clock.
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}


@register
class WallClockRule(Rule):
    """SIM001: simulated time must come from SimClock / TaskCost."""

    id = "SIM001"
    name = "wall-clock"
    description = ("wall-clock read (time.time / perf_counter / "
                   "datetime.now) outside the common/ shims")
    exempt = ("common/",)

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    full = f"{node.module}.{a.name}"
                    if full in _WALL_CLOCK:
                        out.append(self.violation(
                            node,
                            f"imports wall-clock `{full}`; use "
                            "SimClock.now_s / TaskCost instead", relpath,
                        ))
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                full = _resolve(dotted, aliases)
                if full in _WALL_CLOCK:
                    out.append(self.violation(
                        node,
                        f"wall-clock read `{full}()`; simulated components "
                        "must read SimClock.now_s / TaskCost", relpath,
                    ))
        return out


# ----------------------------------------------------------------------
# SIM002 — ambient randomness
# ----------------------------------------------------------------------

#: numpy.random attributes that are fine: explicit generator construction.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "RandomState",
}


@register
class AmbientRandomnessRule(Rule):
    """SIM002: randomness must flow through repro.common.rng streams."""

    id = "SIM002"
    name = "ambient-randomness"
    description = ("ambient `random` / module-level `numpy.random` use "
                   "instead of seeded repro.common.rng streams")
    exempt = ("common/rng.py",)

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        flagged: Set[int] = set()  # attribute nodes already reported
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "random" or a.name.startswith("random."):
                        out.append(self.violation(
                            node,
                            "imports the ambient `random` module; derive "
                            "a stream via repro.common.rng.make_rng / "
                            "derive_seed", relpath,
                        ))
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random" or (
                        node.module or "").startswith("random."):
                    out.append(self.violation(
                        node,
                        "imports from the ambient `random` module; derive "
                        "a stream via repro.common.rng.make_rng / "
                        "derive_seed", relpath,
                    ))
            elif isinstance(node, (ast.Call, ast.Attribute)):
                target = node.func if isinstance(node, ast.Call) else node
                if id(target) in flagged:
                    continue  # already reported via the enclosing call
                dotted = _dotted(target)
                if dotted is None:
                    continue
                full = _resolve(dotted, aliases)
                parts = full.split(".")
                if len(parts) >= 3 and parts[0] == "numpy" \
                        and parts[1] == "random" \
                        and parts[2] not in _NP_RANDOM_OK:
                    flagged.add(id(target))
                    out.append(self.violation(
                        node,
                        f"module-level `{full}` draws from numpy's global "
                        "state; use repro.common.rng.make_rng(seed)",
                        relpath,
                    ))
        return out


# ----------------------------------------------------------------------
# SIM003 — direct filesystem IO inside sim subsystems
# ----------------------------------------------------------------------

#: ``os.*`` members that touch the host filesystem / environment.
_OS_IO = {
    "remove", "unlink", "rename", "replace", "rmdir", "removedirs",
    "mkdir", "makedirs", "listdir", "scandir", "stat", "lstat", "walk",
    "open", "system", "popen", "getenv", "putenv", "environ", "chdir",
    "truncate", "symlink", "link", "getcwd",
}

#: ``os.path.*`` members that hit the filesystem (join/basename are pure).
_OS_PATH_IO = {
    "exists", "isfile", "isdir", "islink", "getsize", "getmtime",
    "getatime", "getctime", "samefile", "realpath",
}


@register
class DirectIORule(Rule):
    """SIM003: sim subsystems must do IO via the metered HDFS/RPC fabric."""

    id = "SIM003"
    name = "direct-io"
    description = ("direct filesystem IO (`open`, `os.*`, pathlib, shutil) "
                   "inside a simulated subsystem; use repro.hdfs / RPC")
    scope = SIM_SUBSYSTEMS
    exempt = ("cli.py", "obs/export.py")

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        aliases = _import_aliases(tree)
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                full = _resolve(dotted, aliases)
                parts = full.split(".")
                hit = (
                    full == "open"
                    or full == "io.open"
                    or (parts[0] == "os" and len(parts) == 2
                        and parts[1] in _OS_IO)
                    or (parts[0] == "os" and len(parts) == 3
                        and parts[1] == "path" and parts[2] in _OS_PATH_IO)
                    or parts[0] == "shutil"
                    or parts[0] == "tempfile"
                    or full.startswith("pathlib.")
                )
                if hit:
                    out.append(self.violation(
                        node,
                        f"direct IO `{full}(...)` inside a simulated "
                        "subsystem; route through repro.hdfs (metered) "
                        "or move to the CLI/export layer", relpath,
                    ))
            elif isinstance(node, ast.Attribute):
                if _resolve(_dotted(node) or "", aliases) == "os.environ":
                    out.append(self.violation(
                        node,
                        "reads `os.environ` inside a simulated subsystem; "
                        "thread configuration through ClusterConfig",
                        relpath,
                    ))
        return out


# ----------------------------------------------------------------------
# SIM004 — unordered set iteration on determinism-critical paths
# ----------------------------------------------------------------------

#: Consumers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = {"sorted", "len", "min", "max", "any", "all",
                      "set", "frozenset"}

#: Consumers that materialize the (hash-ordered) iteration sequence.
_ORDER_SENSITIVE = {"iter", "list", "tuple", "enumerate", "reversed"}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register
class UnorderedIterationRule(Rule):
    """SIM004: set iteration order must not feed partitioning/row order."""

    id = "SIM004"
    name = "unordered-iteration"
    description = ("iteration over a set feeds hash order into shuffle "
                   "partitioning / PS row ordering; sort or use "
                   "dict.fromkeys")
    scope = SIM_SUBSYSTEMS

    _MSG = ("iterates a set whose hash order is not deterministic across "
            "runs; wrap in sorted(...) or dedup with dict.fromkeys(...)")

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        out: List[Violation] = []
        for node in ast.walk(tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                out.append(self.violation(node.iter, self._MSG, relpath))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        out.append(self.violation(
                            gen.iter, self._MSG, relpath))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in _ORDER_SENSITIVE:
                    for arg in node.args:
                        if _is_set_expr(arg):
                            out.append(self.violation(
                                arg, self._MSG, relpath))
                for arg in node.args:
                    if isinstance(arg, ast.Starred) \
                            and _is_set_expr(arg.value):
                        out.append(self.violation(
                            arg.value, self._MSG, relpath))
        return out


# ----------------------------------------------------------------------
# SIM005 — RDD closures mutating captured state / aliasing records
# ----------------------------------------------------------------------

#: RDD / DataFrame methods whose function arguments ship to executors.
_RDD_METHODS = {
    "map", "flat_map", "filter", "map_partitions",
    "map_partitions_with_index", "foreach_partition", "foreach",
    "map_values", "flat_map_values", "key_by", "group_by", "sort_by",
    "reduce_by_key", "aggregate_by_key", "combine_by_key", "fold_by_key",
}

#: Method calls that mutate their receiver.
_MUTATORS = {
    "append", "extend", "insert", "remove", "clear", "update",
    "setdefault", "popitem", "add", "discard", "sort", "reverse",
    "pop", "write",
}

#: In-place reorderings: called on a parameter they alias shuffled records.
_INPLACE_REORDER = {"sort", "reverse"}


def _bound_names(func: ast.Lambda | ast.FunctionDef) -> Set[str]:
    """Names bound inside ``func``: parameters plus local assignments."""
    args = func.args
    bound: Set[str] = {
        a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)
    }
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    body = func.body if isinstance(func.body, list) else [func.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, (ast.Store, ast.Del)):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.comprehension):
                for t in ast.walk(node.target):
                    if isinstance(t, ast.Name):
                        bound.add(t.id)
    return bound


def _param_names(func: ast.Lambda | ast.FunctionDef) -> Set[str]:
    args = func.args
    names = {a.arg for a in (args.posonlyargs + args.args
                             + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


@register
class ClosureMutationRule(Rule):
    """SIM005: executor closures must be pure w.r.t. captured state."""

    id = "SIM005"
    name = "closure-mutation"
    description = ("RDD closure mutates captured driver state or sorts "
                   "partition data in place (aliases shuffled records)")

    def check(self, tree: ast.AST, relpath: str) -> List[Violation]:
        # Local function definitions, so `rdd.map(fn)` by name resolves.
        defs: Dict[str, ast.FunctionDef] = {
            n.name: n for n in ast.walk(tree)
            if isinstance(n, ast.FunctionDef)
        }
        out: List[Violation] = []
        checked: Set[int] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RDD_METHODS):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                func: ast.Lambda | ast.FunctionDef | None = None
                if isinstance(arg, ast.Lambda):
                    func = arg
                elif isinstance(arg, ast.Name) and arg.id in defs:
                    func = defs[arg.id]
                if func is None or id(func) in checked:
                    continue
                checked.add(id(func))
                out.extend(self._check_closure(func, relpath))
        return out

    def _check_closure(self, func: ast.Lambda | ast.FunctionDef,
                       relpath: str) -> List[Violation]:
        bound = _bound_names(func)
        params = _param_names(func)
        out: List[Violation] = []
        body = func.body if isinstance(func.body, list) else [func.body]
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Nonlocal):
                    out.append(self.violation(
                        node,
                        "closure rebinds captured driver state via "
                        "`nonlocal`; executors never see the driver's "
                        "frame on a real cluster", relpath,
                    ))
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets
                               if isinstance(node, ast.Assign)
                               else [node.target])
                    for t in targets:
                        base = t
                        while isinstance(base, (ast.Subscript,
                                                ast.Attribute)):
                            base = base.value
                        if isinstance(base, ast.Name) \
                                and base.id not in bound \
                                and not isinstance(t, ast.Name):
                            out.append(self.violation(
                                node,
                                f"closure mutates captured object "
                                f"`{base.id}`; the write is lost when the "
                                "closure runs on a remote executor",
                                relpath,
                            ))
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name):
                    recv = node.func.value.id
                    meth = node.func.attr
                    if meth in _MUTATORS and recv not in bound:
                        out.append(self.violation(
                            node,
                            f"closure calls mutating `{recv}.{meth}(...)` "
                            "on captured driver state; the effect is lost "
                            "on a remote executor", relpath,
                        ))
                    elif meth in _INPLACE_REORDER and recv in params:
                        out.append(self.violation(
                            node,
                            f"closure reorders its input `{recv}` in "
                            f"place (`.{meth}()`); partition data may be "
                            "aliased by caches / shuffle buffers — copy "
                            "before sorting", relpath,
                        ))
        return out
