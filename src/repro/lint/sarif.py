"""SARIF 2.1.0 output for repro-lint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests: uploading the
file produced here (``--sarif``) via ``github/codeql-action/upload-sarif``
turns every finding into an inline PR annotation.

Only the required core of the format is emitted — one ``run`` with a
``tool.driver`` describing the rule set and one ``result`` per
violation, each carrying a ``physicalLocation``.  Paths are emitted
as-is (repo-relative when the linter was invoked from the repo root),
which is what the code-scanning UI expects.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.rules import Rule, Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Tool metadata for the driver object.
_TOOL_NAME = "repro-lint"
_TOOL_INFO_URI = "docs/static-analysis.md"


def to_sarif(violations: Sequence[Violation],
             rules: Sequence[Rule]) -> Dict[str, object]:
    """The findings as a SARIF 2.1.0 log (as a JSON-ready dict)."""
    rule_objs: List[Dict[str, object]] = []
    index: Dict[str, int] = {}
    for rule in rules:
        index[rule.id] = len(rule_objs)
        rule_objs.append({
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        })
    results: List[Dict[str, object]] = []
    for v in violations:
        result: Dict[str, object] = {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(1, v.line),
                        "startColumn": max(1, v.col + 1),
                    },
                },
            }],
        }
        if v.rule_id in index:
            result["ruleIndex"] = index[v.rule_id]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _TOOL_INFO_URI,
                    "rules": rule_objs,
                },
            },
            "results": results,
        }],
    }


def format_sarif(violations: Sequence[Violation],
                 rules: Sequence[Rule]) -> str:
    """The SARIF log serialized to indented JSON."""
    return json.dumps(to_sarif(violations, rules), indent=2) + "\n"
