"""Interprocedural function summaries for the SIM1xx rules.

The syntactic rules (SIM001..SIM005) see one expression at a time; the
flow rules need to know what a *callee* does: ``schedule()`` is clean in
isolation, but if it calls ``helper()`` which calls ``time.time()``, the
wall-clock taint must surface at every caller.  This module computes a
conservative **effect summary** per function and propagates it over a
best-effort call graph to a fixpoint.

Facts tracked per function (:class:`FunctionSummary.effects`):

* ``wall_clock`` — may read the host clock (``time.time`` family).
* ``unseeded_rng`` — may draw from an unseeded generator (ambient
  ``random``, module-level ``numpy.random`` draws, or a zero-argument
  ``default_rng()`` / ``Random()``); a call to such a function is a
  taint *source* for SIM104.
* ``unmetered_io`` — may perform host file/socket IO directly.
* ``moves_bytes`` — may perform byte-moving work (file/socket IO,
  pickling, numpy materializations); SIM103 demands such functions
  charge the cost model.
* ``charges_metering`` — charges ``TaskCost`` / advances a sim clock /
  opens a metering span somewhere.
* ``returns_resource`` — may return an open resource (file handle or
  span scope); a call to such a function is a resource *source* for
  SIM105.

Call resolution is deliberately modest — exactly the cases that are
unambiguous from the source text:

* plain names defined in the same module (including nested defs),
* ``from repro.x.y import f`` / ``import repro.x.y as m; m.f(...)``,
* ``self.method(...)`` within the same class,
* ``p.method(...)`` where ``p`` is a parameter annotated with a
  ``repro`` class (``def kcore(graph: Graph, ...)``) — the annotation
  names the receiver type, so the method summary is unambiguous.

Anything else (arbitrary ``obj.method(...)``) resolves to nothing and
contributes no effects: the summaries under-approximate unknown code
rather than drowning callers in speculative taint.  The propagated
effects are ``wall_clock``, ``unseeded_rng``, ``unmetered_io`` and
``moves_bytes``; ``charges_metering`` also propagates (a callee that
charges satisfies the caller's metering obligation at the call node),
while ``returns_resource`` stays local to the returning function by
design — the *caller* holding the handle is the one on the hook, which
is rule SIM105's job to check at the call site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.rules import (
    _WALL_CLOCK,
    _NP_RANDOM_OK,
    _OS_IO,
    _OS_PATH_IO,
    _dotted,
    _import_aliases,
    _resolve,
)

# Effect names.
WALL_CLOCK = "wall_clock"
UNSEEDED_RNG = "unseeded_rng"
UNMETERED_IO = "unmetered_io"
MOVES_BYTES = "moves_bytes"
CHARGES_METERING = "charges_metering"
RETURNS_RESOURCE = "returns_resource"

#: Effects that flow from callee to caller at the fixpoint.
PROPAGATED = frozenset({
    WALL_CLOCK, UNSEEDED_RNG, UNMETERED_IO, MOVES_BYTES, CHARGES_METERING,
})

#: numpy array materializations big enough to count as byte-moving work.
_NP_BYTE_MOVERS = {
    "copy", "concatenate", "ascontiguousarray", "frombuffer", "vstack",
    "hstack", "stack", "repeat", "tile", "resize",
}

#: Function/method names whose call charges the cost model or opens a
#: metering span.  Receiver-insensitive on purpose: `clock.advance`,
#: `self.clock.advance`, `tracer.cost_span` all count.
_METERING_CALLS = {
    "advance", "task_span", "cost_span", "clock_span", "metered",
    "charge", "charge_cost", "charge_driver_result",
    "accumulate_sequential",
}

#: Attribute tails whose (aug)assignment charges a TaskCost.
_COST_FIELDS = {"cpu_s", "net_s", "disk_s"}

#: Callables whose result is an open resource needing close/release.
_RESOURCE_OPENERS = {
    "open", "io.open", "task_span", "cost_span", "clock_span",
    "socket.socket",
}

#: Methods that release a resource.
RESOURCE_RELEASERS = {"close", "release", "stop", "end", "done", "__exit__"}


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function.

    Attributes:
        qualname: ``relpath::Class.name`` (module-unique).
        relpath: package-relative module path.
        name: bare function name.
        lineno: definition line.
        effects: resolved effect set (after fixpoint propagation).
        local_effects: effects observed directly in the body.
        calls: resolved callee qualnames.
    """

    qualname: str
    relpath: str
    name: str
    lineno: int
    effects: Set[str] = field(default_factory=set)
    local_effects: Set[str] = field(default_factory=set)
    calls: Set[str] = field(default_factory=set)

    def to_dict(self) -> Dict[str, object]:
        """Serializable form (for the incremental cache)."""
        return {
            "qualname": self.qualname,
            "relpath": self.relpath,
            "name": self.name,
            "lineno": self.lineno,
            "local_effects": sorted(self.local_effects),
            "calls": sorted(self.calls),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(doc["qualname"]),
            relpath=str(doc["relpath"]),
            name=str(doc["name"]),
            lineno=int(doc["lineno"]),  # type: ignore[arg-type]
            local_effects=set(doc.get("local_effects", ())),
            calls=set(doc.get("calls", ())),
        )


# ----------------------------------------------------------------------
# local effect extraction
# ----------------------------------------------------------------------


def _call_effects(full: str) -> Set[str]:
    """Effects implied by calling the fully-resolved name ``full``."""
    out: Set[str] = set()
    parts = full.split(".")
    if full in _WALL_CLOCK:
        out.add(WALL_CLOCK)
    if parts[0] == "random":
        # `random.Random(seed)` is seeded construction; everything else
        # on the ambient module draws global state.
        if not (len(parts) == 2 and parts[1] in ("Random", "SystemRandom",
                                                 "seed")):
            out.add(UNSEEDED_RNG)
    if len(parts) >= 3 and parts[0] == "numpy" and parts[1] == "random" \
            and parts[2] not in _NP_RANDOM_OK:
        out.add(UNSEEDED_RNG)
    is_file_io = (
        full in ("open", "io.open")
        or (parts[0] == "os" and len(parts) == 2 and parts[1] in _OS_IO)
        or (parts[0] == "os" and len(parts) == 3 and parts[1] == "path"
            and parts[2] in _OS_PATH_IO)
        or parts[0] in ("shutil", "tempfile")
        or full.startswith("socket.")
    )
    if is_file_io:
        out.add(UNMETERED_IO)
        out.add(MOVES_BYTES)
    if parts[0] == "pickle" and parts[-1] in ("dumps", "loads", "dump",
                                              "load"):
        out.add(MOVES_BYTES)
    if parts[0] == "numpy" and len(parts) == 2 \
            and parts[1] in _NP_BYTE_MOVERS:
        out.add(MOVES_BYTES)
    return out


def _is_unseeded_ctor(node: ast.Call, full: str) -> bool:
    """``default_rng()`` / ``Random()`` with no seed argument."""
    tail = full.rsplit(".", 1)[-1]
    if tail in ("default_rng", "Random", "RandomState"):
        return not node.args and not node.keywords
    return False


def _module_class_map(relpath: str, tree: ast.AST) -> Dict[str, str]:
    """Top-level class name -> fully-qualified ``repro.`` dotted name."""
    mod = _module_name(relpath)
    return {
        child.name: f"{mod}.{child.name}"
        for child in ast.iter_child_nodes(tree)
        if isinstance(child, ast.ClassDef)
    }


def annotated_param_types(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    aliases: Dict[str, str],
    class_map: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """Parameter name -> fully-qualified ``repro`` class, when annotated.

    Only annotations that resolve to a ``repro.`` class (through the
    module's imports, or ``class_map`` for classes defined in the same
    module) are kept — foreign types tell us nothing about summaries.
    """
    out: Dict[str, str] = {}
    args = func.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        if a.annotation is None:
            continue
        dotted = _dotted(a.annotation)
        if dotted is None and isinstance(a.annotation, ast.Constant) \
                and isinstance(a.annotation.value, str):
            dotted = a.annotation.value
        if not dotted:
            continue
        full = _resolve(dotted, aliases)
        if not full.startswith("repro.") and class_map:
            full = class_map.get(full, full)
        if full.startswith("repro."):
            out[a.arg] = full
    return out


class _LocalEffects(ast.NodeVisitor):
    """Collects a function body's direct effects and callee names.

    Nested function definitions are skipped — they are separate summary
    subjects; their effects reach the parent only if the parent *calls*
    them, which the call graph records.
    """

    def __init__(self, aliases: Dict[str, str],
                 param_types: Optional[Dict[str, str]] = None) -> None:
        self.aliases = aliases
        self.param_types = param_types or {}
        self.effects: Set[str] = set()
        #: raw callee expressions for the resolver: ("name", "f") for a
        #: plain call, ("self", "m") for self.m(), ("dotted", "a.b.f")
        #: for alias-qualified calls.
        self.raw_calls: List[Tuple[str, str]] = []
        self.returns_resource = False
        self._resource_names: Set[str] = set()
        self._depth = 0

    # -- scope fencing -------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth == 0:
            self._depth += 1
            self.generic_visit(node)
            self._depth -= 1
        # nested def: don't descend

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda body runs when called, usually via an RDD op whose
        # executor-side effects the closure rules inspect separately.
        return

    # -- effects -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            full = _resolve(dotted, self.aliases)
            self.effects |= _call_effects(full)
            if _is_unseeded_ctor(node, full):
                self.effects.add(UNSEEDED_RNG)
            tail = full.rsplit(".", 1)[-1]
            if tail in _METERING_CALLS:
                self.effects.add(CHARGES_METERING)
            # record for call-graph resolution
            if isinstance(node.func, ast.Name):
                self.raw_calls.append(("name", node.func.id))
            elif isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id == "self":
                    self.raw_calls.append(("self", node.func.attr))
                elif isinstance(recv, ast.Name) \
                        and recv.id in self.param_types:
                    self.raw_calls.append((
                        "dotted",
                        f"{self.param_types[recv.id]}.{node.func.attr}",
                    ))
                else:
                    self.raw_calls.append(("dotted", full))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute) \
                and node.target.attr in _COST_FIELDS:
            self.effects.add(CHARGES_METERING)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for t in node.targets:
            if isinstance(t, ast.Attribute) and t.attr in _COST_FIELDS:
                self.effects.add(CHARGES_METERING)
        # Track names bound to fresh resources, for returns_resource.
        if isinstance(node.value, ast.Call):
            dotted = _dotted(node.value.func)
            if dotted is not None \
                    and _resolve(dotted, self.aliases) in _RESOURCE_OPENERS:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self._resource_names.add(t.id)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None \
                    and _resolve(dotted, self.aliases) in _RESOURCE_OPENERS:
                self.returns_resource = True
        elif isinstance(value, ast.Name) \
                and value.id in self._resource_names:
            self.returns_resource = True
        self.generic_visit(node)


# ----------------------------------------------------------------------
# program index + fixpoint
# ----------------------------------------------------------------------


def _module_name(relpath: str) -> str:
    """``dataflow/rdd.py`` -> ``repro.dataflow.rdd``."""
    stem = relpath[:-3] if relpath.endswith(".py") else relpath
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    return "repro." + stem.replace("/", ".") if stem else "repro"


@dataclass
class _FuncInfo:
    node: ast.AST
    qualname: str
    relpath: str
    cls: Optional[str]


class ProgramIndex:
    """Function summaries for a set of modules, resolved to a fixpoint.

    Build incrementally: feed every module with :meth:`add_module` (or
    pre-computed summaries with :meth:`add_summaries` when a cache knows
    the file did not change), then call :meth:`resolve`.
    """

    def __init__(self) -> None:
        self.summaries: Dict[str, FunctionSummary] = {}
        #: bare name -> qualnames (cross-module fallback resolution).
        self._by_name: Dict[str, Set[str]] = {}
        #: (relpath, Class.name) and (relpath, name) -> qualname.
        self._by_module: Dict[Tuple[str, str], str] = {}
        self._resolved = False

    # -- construction -------------------------------------------------

    def add_module(self, relpath: str, tree: ast.AST) -> List[FunctionSummary]:
        """Summarize every function in one parsed module."""
        aliases = _import_aliases(tree)
        class_map = _module_class_map(relpath, tree)
        out: List[FunctionSummary] = []
        for func, cls in _iter_functions(tree):
            qual = f"{relpath}::{cls + '.' if cls else ''}{func.name}"
            collector = _LocalEffects(
                aliases, annotated_param_types(func, aliases, class_map))
            collector.visit(func)
            summary = FunctionSummary(
                qualname=qual, relpath=relpath, name=func.name,
                lineno=func.lineno,
                local_effects=set(collector.effects),
            )
            if collector.returns_resource:
                summary.local_effects.add(RETURNS_RESOURCE)
            summary.calls = self._resolve_raw_calls(
                collector.raw_calls, relpath, cls, aliases)
            self._register(summary, cls)
            out.append(summary)
        self._resolved = False
        return out

    def add_summaries(self, summaries: Iterable[FunctionSummary]) -> None:
        """Install pre-computed local summaries (cache restore path)."""
        for s in summaries:
            cls = None
            bare = s.qualname.rsplit("::", 1)[-1]
            if "." in bare:
                cls = bare.split(".", 1)[0]
            self._register(s, cls)
        self._resolved = False

    def _register(self, summary: FunctionSummary, cls: Optional[str]) -> None:
        # Rebuild effects from local on every (re)registration so a
        # stale propagated set never leaks across resolves.
        summary.effects = set(summary.local_effects)
        self.summaries[summary.qualname] = summary
        self._by_name.setdefault(summary.name, set()).add(summary.qualname)
        key_bare = (summary.relpath, summary.name)
        self._by_module.setdefault(key_bare, summary.qualname)
        if cls:
            self._by_module[(summary.relpath, f"{cls}.{summary.name}")] = \
                summary.qualname

    def _resolve_raw_calls(self, raw: List[Tuple[str, str]], relpath: str,
                           cls: Optional[str],
                           aliases: Dict[str, str]) -> Set[str]:
        """Turn collected call expressions into candidate qualnames.

        Resolution happens lazily against the *final* index at fixpoint
        time for cross-module names, so here we normalize to resolvable
        keys: ``mod:relpath:bare`` / ``cls:relpath:Class.bare`` /
        ``imp:repro.x.y.f`` markers.
        """
        out: Set[str] = set()
        for kind, name in raw:
            if kind == "name":
                full = aliases.get(name)
                if full and full.startswith("repro."):
                    out.add(f"imp:{full}")
                else:
                    out.add(f"mod:{relpath}:{name}")
            elif kind == "self" and cls:
                out.add(f"cls:{relpath}:{cls}.{name}")
            elif kind == "dotted":
                # `m.f(...)` where m aliases a repro module.
                if name.startswith("repro."):
                    out.add(f"imp:{name}")
        return out

    # -- fixpoint -----------------------------------------------------

    def _lookup(self, key: str) -> Optional[FunctionSummary]:
        """Resolve one call key to a summary, if the target is indexed."""
        if key.startswith("mod:") or key.startswith("cls:"):
            _, relpath, bare = key.split(":", 2)
            qual = self._by_module.get((relpath, bare))
            if qual is None and key.startswith("cls:") and "." in bare:
                # fall back to a module-level function of the same name
                qual = self._by_module.get((relpath, bare.split(".", 1)[1]))
            return self.summaries.get(qual) if qual else None
        if key.startswith("imp:"):
            # `repro.a.b.f` -> module a/b.py, function f (possibly a
            # re-export through a package __init__; try both).
            dotted = key[4:]
            mod, _, func = dotted.rpartition(".")
            if not mod.startswith("repro"):
                return None
            sub = mod[len("repro"):].lstrip(".").replace(".", "/")
            for rel in (f"{sub}.py" if sub else "__init__.py",
                        f"{sub}/__init__.py" if sub else "__init__.py"):
                qual = self._by_module.get((rel, func))
                if qual:
                    return self.summaries.get(qual)
            # class-qualified: `repro.a.b.Class.method` -> module a/b.py,
            # entry "Class.method" (annotation-guided receiver calls).
            mod2, _, clsname = mod.rpartition(".")
            if mod2.startswith("repro"):
                sub2 = mod2[len("repro"):].lstrip(".").replace(".", "/")
                for rel in (f"{sub2}.py" if sub2 else "__init__.py",
                            f"{sub2}/__init__.py" if sub2
                            else "__init__.py"):
                    qual = self._by_module.get((rel, f"{clsname}.{func}"))
                    if qual:
                        return self.summaries.get(qual)
            # last resort: unique bare-name match anywhere
            quals = self._by_name.get(func, ())
            if len(quals) == 1:
                return self.summaries[next(iter(quals))]
        return None

    def resolve(self) -> None:
        """Propagate effects over the call graph to a fixpoint."""
        if self._resolved:
            return
        for s in self.summaries.values():
            s.effects = set(s.local_effects)
        changed = True
        while changed:
            changed = False
            for s in self.summaries.values():
                for key in s.calls:
                    callee = self._lookup(key)
                    if callee is None:
                        continue
                    gained = (callee.effects & PROPAGATED) - s.effects
                    if gained:
                        s.effects |= gained
                        changed = True
        self._resolved = True

    # -- queries used by the rules ------------------------------------

    def effects_of_call(self, call: ast.Call, relpath: str,
                        cls: Optional[str],
                        aliases: Dict[str, str]) -> FrozenSet[str]:
        """Resolved effects of one call expression (empty if unknown)."""
        self.resolve()
        summary = self.summary_for_call(call, relpath, cls, aliases)
        if summary is None:
            return frozenset()
        return frozenset(summary.effects | (
            {RETURNS_RESOURCE} if RETURNS_RESOURCE in summary.local_effects
            else set()))

    def summary_for_call(self, call: ast.Call, relpath: str,
                         cls: Optional[str],
                         aliases: Dict[str, str],
                         param_types: Optional[Dict[str, str]] = None,
                         ) -> Optional[FunctionSummary]:
        """The callee's summary for one call expression, if resolvable.

        ``param_types`` (see :func:`annotated_param_types`) lets calls
        on annotated parameters resolve to the annotated class's
        methods.
        """
        func = call.func
        if isinstance(func, ast.Name):
            full = aliases.get(func.id)
            if full and full.startswith("repro."):
                return self._lookup(f"imp:{full}")
            return self._lookup(f"mod:{relpath}:{func.id}")
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name) and recv.id == "self" and cls:
                return self._lookup(f"cls:{relpath}:{cls}.{func.attr}")
            if isinstance(recv, ast.Name) and param_types \
                    and recv.id in param_types:
                return self._lookup(
                    f"imp:{param_types[recv.id]}.{func.attr}")
            dotted = _dotted(func)
            if dotted is not None:
                full = _resolve(dotted, aliases)
                if full.startswith("repro."):
                    return self._lookup(f"imp:{full}")
        return None

    def digest(self) -> str:
        """Stable hash of the resolved summary table.

        Cached per-file findings stay valid exactly while this digest is
        unchanged: the flow rules read nothing else across file
        boundaries.
        """
        import hashlib

        self.resolve()
        h = hashlib.sha256()
        for qual in sorted(self.summaries):
            s = self.summaries[qual]
            h.update(qual.encode())
            h.update(",".join(sorted(s.effects)).encode())
            h.update(b";")
        return h.hexdigest()


def _iter_functions(tree: ast.AST):
    """Yield (function node, enclosing class name or None), all depths."""
    stack: List[Tuple[ast.AST, Optional[str]]] = [(tree, None)]
    while stack:
        node, cls = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                stack.append((child, cls))
            elif isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            else:
                stack.append((child, cls))


def build_index(modules: Iterable[Tuple[str, ast.AST]]) -> ProgramIndex:
    """Index + fixpoint over ``(relpath, parsed tree)`` pairs."""
    index = ProgramIndex()
    for relpath, tree in modules:
        index.add_module(relpath, tree)
    index.resolve()
    return index
