"""Per-function control-flow graphs with reaching definitions.

The SIM1xx rule family (:mod:`repro.lint.rules_flow`) needs more than a
syntactic AST walk: "is metering charged on *every* path", "which
definition does this captured name see", "can this resource reach the
function exit without a release".  This module provides the three pieces
those questions reduce to:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function (or lambda), covering branches, ``while``/``for`` loops with
  ``break``/``continue``/``else``, ``try``/``except``/``finally``,
  ``with`` blocks, ``return`` and ``raise``.
* :meth:`CFG.reaching_definitions` — the classic forward may-analysis:
  for every node, the set of definitions (name, node) that may reach it.
* :meth:`CFG.use_defs` — use-def chains derived from the reaching sets:
  for every ``Name`` load in a node, the definitions it may observe.

Design choices, deliberately documented because they bound what the
rules can claim:

* Nodes are *statements* (plus synthetic entry/exit and loop-test
  nodes), not basic blocks.  The functions under analysis are tens of
  statements; simplicity beats constant factors.
* Only **explicit** control flow creates edges.  An arbitrary expression
  may raise, but modelling every call as a potential jump to the
  function exit would fabricate a "path" around any metering or release
  statement and drown the path-sensitive rules in false positives.
  ``try`` bodies are the exception: every statement in a ``try`` gets an
  edge to each handler, because catching is the stated intent.
* ``while True:`` (any constant-true test) has no fall-through exit
  edge; the loop exits only via ``break``/``return``/``raise``.  A
  fabricated zero-iteration path around the body of an intentional
  infinite loop is exactly the kind of noise the previous point avoids.
* ``return``/``raise``/``break``/``continue`` inside a ``try`` with a
  ``finally`` route *through* the finally suite — there is no edge that
  skips it — so a release in a ``finally`` dominates early exits the
  way it does at runtime.  The price is a mild over-approximation: the
  finally suite's exits fan out to every pending jump target as well as
  the normal continuation.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Kinds of synthetic / classified nodes.
ENTRY = "entry"
EXIT = "exit"
STMT = "stmt"
TEST = "test"          # if / while condition
ITER = "iter"          # for-loop iterator evaluation (also the target bind)
WITH = "with"          # with-item enter (binds the `as` name)
EXCEPT = "except"      # except handler head (binds the `as` name)


@dataclass
class CFGNode:
    """One node: a statement (or synthetic point) in the flow graph.

    Attributes:
        idx: dense node id, stable for a given function body.
        kind: :data:`ENTRY`, :data:`EXIT`, :data:`STMT`, :data:`TEST`,
            :data:`ITER`, :data:`WITH` or :data:`EXCEPT`.
        stmt: the AST node this CFG node evaluates (None for entry/exit).
        label: short human-readable description for golden-file dumps.
    """

    idx: int
    kind: str
    stmt: ast.AST | None = None
    label: str = ""

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


#: A definition site: (variable name, node index where it is bound).
Definition = Tuple[str, int]


class CFG:
    """Statement-level control-flow graph of one function."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[CFGNode] = []
        self.succ: Dict[int, List[int]] = {}
        self.pred: Dict[int, List[int]] = {}
        #: (a, b) -> "true" | "false" for edges leaving an If test on a
        #: known branch; edges carrying both polarities (empty branch)
        #: or unrelated flow are absent.
        self.edge_labels: Dict[Tuple[int, int], str] = {}
        self.entry = self._add(ENTRY, None, "ENTRY")
        self.exit = self._add(EXIT, None, "EXIT")

    # -- construction -------------------------------------------------

    def _add(self, kind: str, stmt: ast.AST | None, label: str) -> int:
        idx = len(self.nodes)
        self.nodes.append(CFGNode(idx, kind, stmt, label))
        self.succ[idx] = []
        self.pred[idx] = []
        return idx

    def _edge(self, a: int, b: int, label: str | None = None) -> None:
        if b not in self.succ[a]:
            self.succ[a].append(b)
            self.pred[b].append(a)
            if label is not None:
                self.edge_labels[(a, b)] = label
        elif label is not None \
                and self.edge_labels.get((a, b), label) != label:
            # Same edge reached on both branches (e.g. empty body):
            # polarity is meaningless, drop the label.
            self.edge_labels.pop((a, b), None)

    # -- queries -------------------------------------------------------

    def reachable_from(self, start: int,
                       avoiding: Iterable[int] = (),
                       avoiding_edges: Iterable[Tuple[int, int]] = (),
                       ) -> Set[int]:
        """Node ids reachable from ``start`` without entering ``avoiding``
        or traversing an edge in ``avoiding_edges``.

        ``start`` itself is included (unless it is avoided); traversal
        never passes *through* an avoided node.
        """
        blocked = set(avoiding)
        cut = set(avoiding_edges)
        if start in blocked:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            n = stack.pop()
            for s in self.succ[n]:
                if s not in seen and s not in blocked \
                        and (n, s) not in cut:
                    seen.add(s)
                    stack.append(s)
        return seen

    def reaches(self, target: int, avoiding: Iterable[int] = (),
                avoiding_edges: Iterable[Tuple[int, int]] = (),
                ) -> Set[int]:
        """Node ids from which ``target`` is reachable, avoiding a set."""
        blocked = set(avoiding)
        cut = set(avoiding_edges)
        if target in blocked:
            return set()
        seen = {target}
        stack = [target]
        while stack:
            n = stack.pop()
            for p in self.pred[n]:
                if p not in seen and p not in blocked \
                        and (p, n) not in cut:
                    seen.add(p)
                    stack.append(p)
        return seen

    def exists_path(self, start: int, end: int,
                    avoiding: Iterable[int] = ()) -> bool:
        """Whether a path ``start -> end`` exists whose *interior* avoids
        the given nodes (the endpoints themselves are never blocked)."""
        blocked = set(avoiding) - {start, end}
        return end in self.reachable_from(start, blocked)

    # -- reaching definitions -----------------------------------------

    def definitions(self) -> Dict[int, List[str]]:
        """Names bound at each node (the GEN sets, as name lists)."""
        gen: Dict[int, List[str]] = {}
        for node in self.nodes:
            names = _bound_at(node)
            if names:
                gen[node.idx] = names
        return gen

    def reaching_definitions(self) -> Dict[int, Set[Definition]]:
        """IN sets: definitions that may reach each node's evaluation."""
        gen = self.definitions()
        # OUT[n] = gen[n] + (IN[n] - kill[n]); kill = same-name defs.
        in_sets: Dict[int, Set[Definition]] = {
            n.idx: set() for n in self.nodes
        }
        out_sets: Dict[int, Set[Definition]] = {
            n.idx: set() for n in self.nodes
        }
        order = [n.idx for n in self.nodes]
        changed = True
        while changed:
            changed = False
            for idx in order:
                new_in: Set[Definition] = set()
                for p in self.pred[idx]:
                    new_in |= out_sets[p]
                names_here = set(gen.get(idx, ()))
                new_out = {d for d in new_in if d[0] not in names_here}
                new_out |= {(name, idx) for name in names_here}
                if new_in != in_sets[idx] or new_out != out_sets[idx]:
                    in_sets[idx] = new_in
                    out_sets[idx] = new_out
                    changed = True
        return in_sets

    def use_defs(self) -> Dict[int, Dict[str, Set[int]]]:
        """For each node: loaded name -> node ids of its reaching defs."""
        in_sets = self.reaching_definitions()
        out: Dict[int, Dict[str, Set[int]]] = {}
        for node in self.nodes:
            uses = _used_at(node)
            if not uses:
                continue
            chains: Dict[str, Set[int]] = {}
            for name in uses:
                sites = {idx for (n, idx) in in_sets[node.idx] if n == name}
                chains[name] = sites
            out[node.idx] = chains
        return out

    # -- debugging / golden files -------------------------------------

    def dump(self) -> str:
        """Stable text form, one node per line: ``idx kind label -> succs``."""
        lines = []
        for node in self.nodes:
            succs = ",".join(str(s) for s in sorted(self.succ[node.idx]))
            lines.append(
                f"{node.idx} {node.kind}"
                f"{' ' + node.label if node.label else ''}"
                f" -> [{succs}]"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# name binding / use extraction per node
# ----------------------------------------------------------------------


def _target_names(target: ast.AST) -> List[str]:
    """Names bound by an assignment target (tuples unpacked)."""
    out: List[str] = []
    for node in ast.walk(target):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            out.append(node.id)
    return out


def _bound_at(node: CFGNode) -> List[str]:
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == ITER and isinstance(stmt, (ast.For, ast.AsyncFor)):
        return _target_names(stmt.target)
    if node.kind == WITH and isinstance(stmt, ast.withitem):
        return _target_names(stmt.optional_vars) if stmt.optional_vars \
            else []
    if node.kind == EXCEPT and isinstance(stmt, ast.ExceptHandler):
        return [stmt.name] if stmt.name else []
    if isinstance(stmt, ast.Assign):
        out: List[str] = []
        for t in stmt.targets:
            out.extend(_target_names(t))
        return out
    if isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(stmt.target, ast.Name):
            return [stmt.target.id]
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return [stmt.name]
    if isinstance(stmt, ast.Import):
        return [a.asname or a.name.split(".")[0] for a in stmt.names]
    if isinstance(stmt, ast.ImportFrom):
        return [a.asname or a.name for a in stmt.names if a.name != "*"]
    if isinstance(stmt, ast.arguments):  # parameter binding at entry
        args = stmt
        names = [a.arg for a in
                 (args.posonlyargs + args.args + args.kwonlyargs)]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names
    return []


def _used_at(node: CFGNode) -> Set[str]:
    """Names loaded while evaluating this node (nested scopes excluded)."""
    stmt = node.stmt
    if stmt is None:
        return set()
    # Only the parts evaluated *at* this node: the builder splits
    # tests/iters/with-items into their own nodes, so a compound
    # statement's condition is never re-attributed to its body.
    roots: List[ast.AST]
    if node.kind == TEST:
        roots = [stmt.test]  # type: ignore[attr-defined]
    elif node.kind == ITER:
        roots = [stmt.iter]  # type: ignore[attr-defined]
    elif node.kind == WITH and isinstance(stmt, ast.withitem):
        roots = [stmt.context_expr]
    elif node.kind == EXCEPT and isinstance(stmt, ast.ExceptHandler):
        roots = [stmt.type] if stmt.type else []
    elif isinstance(stmt, ast.arguments):
        roots = [d for d in stmt.defaults + list(stmt.kw_defaults)
                 if d is not None]
    else:
        roots = [stmt]
    used: Set[str] = set()
    for root in roots:
        for sub in _walk_same_scope(root):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                used.add(sub.id)
    return used


def _walk_same_scope(root: ast.AST):
    """``ast.walk`` that does not descend into nested function scopes.

    Free names *inside* a nested def/lambda are still uses of the outer
    scope at the point of closure creation, but treating every inner
    local as an outer use would wreck the chains; rules that care about
    captures resolve them explicitly.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------


def _is_const_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


#: A pending jump waiting for an enclosing finally suite:
#: (node id, kind, loop record or None).
_Jump = Tuple[int, str, tuple | None]


class _Builder:
    """Recursive-descent CFG builder for one function body."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        #: (break-exit list, continue target, finally depth) per loop.
        self.loops: List[tuple] = []
        #: one pending-jump list per enclosing try-with-finally.
        self.fin_pending: List[List[_Jump]] = []
        #: handler-head nodes of enclosing try bodies, for raise edges.
        self.handlers: List[List[int]] = []
        #: If-test node -> label for its *next* outgoing edge.  Set to
        #: "true" before the then-suite is built and "false" before the
        #: else-suite (or left as "false" so the fall-through edge to the
        #: join point is labelled when it is eventually created).
        self._branch_pending: Dict[int, str] = {}

    # Every build method takes the node ids that flow *into* the construct
    # and returns the ids that flow *out* of it (its normal exits).

    def body(self, stmts: Sequence[ast.stmt],
             frontier: List[int]) -> List[int]:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier)
        return frontier

    def _link(self, frontier: List[int], node: int) -> None:
        for f in frontier:
            self.cfg._edge(f, node, self._branch_pending.pop(f, None))

    def _maybe_raise_edges(self, node: int) -> None:
        """Inside a try body, any statement may jump to the handlers."""
        if self.handlers:
            for h in self.handlers[-1]:
                self.cfg._edge(node, h)

    def _dispatch_jump(self, node: int, kind: str, loop: tuple | None,
                       fin_depth_of_target: int) -> None:
        """Route a jump either through a pending finally or to its
        target.  ``fin_depth_of_target``: how many finallys enclose the
        jump's destination (0 for return/raise)."""
        if len(self.fin_pending) > fin_depth_of_target:
            self.fin_pending[-1].append((node, kind, loop))
            return
        cfg = self.cfg
        if kind in ("return", "raise"):
            cfg._edge(node, cfg.exit)
        elif kind == "break" and loop is not None:
            loop[0].append(node)
        elif kind == "continue" and loop is not None:
            cfg._edge(node, loop[1])

    def stmt(self, stmt: ast.stmt, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            test = cfg._add(TEST, stmt, f"if L{stmt.lineno}")
            self._link(frontier, test)
            self._maybe_raise_edges(test)
            self._branch_pending[test] = "true"
            then_out = self.body(stmt.body, [test])
            self._branch_pending[test] = "false"
            if stmt.orelse:
                else_out = self.body(stmt.orelse, [test])
            else:
                # Leave the pending "false": the fall-through edge to
                # whatever joins after this If consumes it.
                else_out = [test]
            return then_out + else_out

        if isinstance(stmt, ast.While):
            test = cfg._add(TEST, stmt, f"while L{stmt.lineno}")
            self._link(frontier, test)
            self._maybe_raise_edges(test)
            breaks: List[int] = []
            self.loops.append((breaks, test, len(self.fin_pending)))
            body_out = self.body(stmt.body, [test])
            self.loops.pop()
            self._link(body_out, test)  # back edge
            exits: List[int] = list(breaks)
            if not _is_const_true(stmt.test):
                if stmt.orelse:
                    exits += self.body(stmt.orelse, [test])
                else:
                    exits.append(test)
            elif stmt.orelse:
                # `while True: ... else:` — else runs only on normal
                # termination, which a constant-true test never reaches.
                self.body(stmt.orelse, [])
            return exits

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            it = cfg._add(ITER, stmt, f"for L{stmt.lineno}")
            self._link(frontier, it)
            self._maybe_raise_edges(it)
            breaks = []
            self.loops.append((breaks, it, len(self.fin_pending)))
            body_out = self.body(stmt.body, [it])
            self.loops.pop()
            self._link(body_out, it)  # back edge
            exits = list(breaks)
            if stmt.orelse:
                exits += self.body(stmt.orelse, [it])
            else:
                exits.append(it)  # zero-iteration path
            return exits

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                node = cfg._add(
                    WITH, item,
                    f"with L{getattr(item.context_expr, 'lineno', 0)}")
                self._link(frontier, node)
                self._maybe_raise_edges(node)
                frontier = [node]
            return self.body(stmt.body, frontier)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)

        # --- simple statements -------------------------------------
        if isinstance(stmt, ast.Return):
            node = cfg._add(STMT, stmt, f"return L{stmt.lineno}")
            self._link(frontier, node)
            self._maybe_raise_edges(node)
            self._dispatch_jump(node, "return", None, 0)
            return []
        if isinstance(stmt, ast.Raise):
            node = cfg._add(STMT, stmt, f"raise L{stmt.lineno}")
            self._link(frontier, node)
            self._maybe_raise_edges(node)
            self._dispatch_jump(node, "raise", None, 0)
            return []
        if isinstance(stmt, ast.Break):
            node = cfg._add(STMT, stmt, f"break L{stmt.lineno}")
            self._link(frontier, node)
            if self.loops:
                loop = self.loops[-1]
                self._dispatch_jump(node, "break", loop, loop[2])
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._add(STMT, stmt, f"continue L{stmt.lineno}")
            self._link(frontier, node)
            if self.loops:
                loop = self.loops[-1]
                self._dispatch_jump(node, "continue", loop, loop[2])
            return []
        node = cfg._add(STMT, stmt,
                        f"{type(stmt).__name__.lower()} L{stmt.lineno}")
        self._link(frontier, node)
        self._maybe_raise_edges(node)
        return [node]

    def _try(self, stmt: ast.Try, frontier: List[int]) -> List[int]:
        cfg = self.cfg
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self.fin_pending.append([])
        handler_heads: List[int] = []
        handler_nodes: List[Tuple[int, ast.ExceptHandler]] = []
        for handler in stmt.handlers:
            h = cfg._add(EXCEPT, handler, f"except L{handler.lineno}")
            handler_heads.append(h)
            handler_nodes.append((h, handler))
        if handler_heads:
            self.handlers.append(handler_heads)
        try_out = self.body(stmt.body, frontier)
        if handler_heads:
            self.handlers.pop()
            # An exception may also occur before the first body statement
            # evaluates anything observable; connect the frontier too so
            # handlers are never orphaned in an empty-body edge case.
            for h in handler_heads:
                self._link(frontier, h)
        if stmt.orelse:
            else_out = self.body(stmt.orelse, try_out)
        else:
            else_out = try_out
        handler_out: List[int] = []
        for h, handler in handler_nodes:
            handler_out += self.body(handler.body, [h])
        normal_out = else_out + handler_out
        if not has_finally:
            return normal_out
        pending = self.fin_pending.pop()
        fin_head = len(cfg.nodes)  # first node the suite will create
        fin_out = self.body(stmt.finalbody, normal_out)
        for node, kind, loop in pending:
            cfg._edge(node, fin_head)
            # After the finally runs, the jump resumes toward its target
            # (possibly through the next enclosing finally).  The fan-out
            # from fin_out to several targets is the documented
            # over-approximation.
            for f in fin_out:
                self._dispatch_jump(f, kind, loop,
                                    loop[2] if loop else 0)
        return fin_out


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda,
              name: str | None = None) -> CFG:
    """Build the CFG of one function, lambda included.

    The entry node is followed by a synthetic parameter-binding node (its
    ``stmt`` is the function's ``arguments``), so parameters participate
    in reaching definitions like any other binding.
    """
    if name is None:
        name = getattr(func, "name", "<lambda>")
    cfg = CFG(name)
    params = cfg._add(STMT, func.args, "params")
    cfg._edge(cfg.entry, params)
    builder = _Builder(cfg)
    if isinstance(func.body, list):
        body = func.body
    else:  # lambda
        expr = ast.Expr(value=func.body)
        ast.copy_location(expr, func.body)
        body = [expr]
    out = builder.body(body, [params])
    builder._link(out, cfg.exit)
    return cfg


def cfg_for_source(source: str, func_name: str) -> CFG:
    """Convenience for tests: parse ``source``, build ``func_name``'s CFG."""
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == func_name:
            return build_cfg(node)
    raise ValueError(f"no function named {func_name!r}")
