"""Dynamic determinism harness.

Cross-system comparisons (GraphX vs PS, Table I/II of the paper) are only
trustworthy if a seeded run is bit-for-bit repeatable — "Experimental
Analysis of Distributed Graph Systems" shows how easily uncontrolled
nondeterminism invalidates benchmark numbers.  This harness runs a
registered workload **twice with the same seed** on fresh contexts and
diffs:

* the full metrics dump (counters, gauges, histogram summaries),
* the obs span sequence (component / track / name / boundaries / tags),
* the workload's own float statistics (losses, residuals, accuracy),
* the final simulated time.

In the default mode tiny float drift (relative 1e-9) is tolerated; under
``strict=True`` **any** drift > 0 fails, which is what CI runs — the
simulator is single-process, so two seeded runs have no excuse to differ.

The first run's spans are also replayed through the
:mod:`repro.lint.races` happens-before detector, so staleness windows of
async configurations surface in the same report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.common.config import MB, ClusterConfig
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED, derive_seed
from repro.lint.races import RaceReport, find_races
from repro.obs.export import metrics_to_dict
from repro.obs.tracer import Span, Tracer

#: A workload: ``fn(seed, tracer, metrics) -> (float stats, sim_time_s)``.
Workload = Callable[[int, Tracer, MetricsRegistry],
                    Tuple[Dict[str, float], float]]

#: Registered workloads by CLI name.
WORKLOADS: Dict[str, Workload] = {}


def workload(name: str) -> Callable[[Workload], Workload]:
    """Decorator registering a determinism workload under ``name``."""
    def deco(fn: Workload) -> Workload:
        WORKLOADS[name] = fn
        return fn
    return deco


def _flatten(prefix: str, value: object, out: Dict[str, float]) -> None:
    """Flatten nested dicts/lists of numbers into dotted float keys."""
    if isinstance(value, dict):
        for k in sorted(value):
            _flatten(f"{prefix}.{k}" if prefix else str(k), value[k], out)
    elif isinstance(value, (list, tuple)):
        for i, v in enumerate(value):
            _flatten(f"{prefix}[{i}]", v, out)
    elif isinstance(value, bool):
        out[prefix] = float(value)
    elif isinstance(value, (int, float)):
        out[prefix] = float(value)
    # non-numeric leaves (strings, None) don't participate in drift checks


def _span_key(span: Span) -> Tuple:
    """Canonical comparable form of one span."""
    tags = tuple(sorted(
        (k, repr(v)) for k, v in (span.tags or {}).items()
    ))
    return (span.component, span.track, span.name, span.kind,
            span.start_s, span.end_s, tags)


@dataclass
class RunSnapshot:
    """Everything one seeded run produced that determinism is judged on."""

    workload: str
    seed: int
    metrics: Dict[str, float]
    spans: List[Tuple]
    stats: Dict[str, float]
    sim_time_s: float
    raw_spans: List[Span] = field(default_factory=list, repr=False)


def run_workload(name: str, seed: int = DEFAULT_SEED) -> RunSnapshot:
    """Run one registered workload on a fresh context; snapshot it."""
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; registered: "
            f"{', '.join(sorted(WORKLOADS))}"
        ) from None
    tracer = Tracer()
    metrics = MetricsRegistry()
    stats, sim_time_s = fn(seed, tracer, metrics)
    flat_metrics: Dict[str, float] = {}
    _flatten("", metrics_to_dict(metrics), flat_metrics)
    flat_stats: Dict[str, float] = {}
    _flatten("", stats, flat_stats)
    raw = tracer.spans()
    return RunSnapshot(
        workload=name, seed=seed, metrics=flat_metrics,
        spans=[_span_key(s) for s in raw], stats=flat_stats,
        sim_time_s=sim_time_s, raw_spans=raw,
    )


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------

#: Relative drift tolerated in the default (non-strict) mode.
DEFAULT_RTOL = 1e-9


def _drifts(a: Dict[str, float], b: Dict[str, float],
            rtol: float) -> List[str]:
    """Human-readable differences between two flat float maps."""
    out: List[str] = []
    for key in sorted(set(a) | set(b)):
        if key not in a:
            out.append(f"{key}: missing in run 1 (run 2: {b[key]!r})")
        elif key not in b:
            out.append(f"{key}: missing in run 2 (run 1: {a[key]!r})")
        else:
            x, y = a[key], b[key]
            if x == y:
                continue
            tol = rtol * max(abs(x), abs(y))
            if abs(x - y) > tol:
                out.append(f"{key}: {x!r} != {y!r} "
                           f"(drift {abs(x - y):.3e})")
    return out


def _span_diffs(a: List[Tuple], b: List[Tuple],
                limit: int = 10) -> List[str]:
    """First differences between two span sequences."""
    out: List[str] = []
    if len(a) != len(b):
        out.append(f"span count: {len(a)} != {len(b)}")
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            out.append(f"span[{i}]: {x!r} != {y!r}")
            if len(out) >= limit:
                out.append("... (further span diffs elided)")
                break
    return out


@dataclass
class DeterminismReport:
    """Verdict of one double-run determinism check."""

    workload: str
    seed: int
    strict: bool
    metric_diffs: List[str]
    span_diffs: List[str]
    stat_diffs: List[str]
    sim_times: Tuple[float, float]
    races: List[RaceReport]

    @property
    def deterministic(self) -> bool:
        """Whether the two runs were indistinguishable."""
        return not (self.metric_diffs or self.span_diffs
                    or self.stat_diffs
                    or self.sim_times[0] != self.sim_times[1])

    @property
    def ok(self) -> bool:
        """Pass/fail verdict (races report, they do not fail the check)."""
        return self.deterministic

    def describe(self) -> str:
        mode = "strict" if self.strict else "default"
        lines = [
            f"determinism[{self.workload}] seed={self.seed} ({mode}): "
            + ("PASS" if self.ok else "FAIL")
        ]
        lines.append(
            f"  sim times: {self.sim_times[0]!r} / {self.sim_times[1]!r}"
        )
        for label, diffs in (("metrics", self.metric_diffs),
                             ("spans", self.span_diffs),
                             ("stats", self.stat_diffs)):
            for d in diffs:
                lines.append(f"  {label} drift: {d}")
        if self.races:
            shown = self.races[:8]
            lines.append(f"  {len(self.races)} unsynchronized PS access "
                         "pattern(s) observed (informational):")
            for r in shown:
                lines.append(f"    {r.describe()}")
            if len(self.races) > len(shown):
                lines.append(f"    ... ({len(self.races) - len(shown)} "
                             "more patterns elided)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "strict": self.strict,
            "ok": self.ok,
            "metric_diffs": list(self.metric_diffs),
            "span_diffs": list(self.span_diffs),
            "stat_diffs": list(self.stat_diffs),
            "sim_times": list(self.sim_times),
            "races": [r.to_dict() for r in self.races],
        }


def check_determinism(name: str, seed: int = DEFAULT_SEED, *,
                      strict: bool = False) -> DeterminismReport:
    """Run ``name`` twice with ``seed`` and diff everything observable.

    Args:
        strict: fail on *any* float drift > 0 (CI mode); the default
            tolerates relative drift up to :data:`DEFAULT_RTOL`.
    """
    one = run_workload(name, seed)
    two = run_workload(name, seed)
    rtol = 0.0 if strict else DEFAULT_RTOL
    return DeterminismReport(
        workload=name, seed=seed, strict=strict,
        metric_diffs=_drifts(one.metrics, two.metrics, rtol),
        span_diffs=_span_diffs(one.spans, two.spans),
        stat_diffs=_drifts(one.stats, two.stats, rtol),
        sim_times=(one.sim_time_s, two.sim_time_s),
        races=find_races(one.raw_spans),
    )


# ----------------------------------------------------------------------
# built-in workloads (small, seconds-scale: these run twice in CI)
# ----------------------------------------------------------------------


def _small_cluster() -> ClusterConfig:
    return ClusterConfig(
        num_executors=4, executor_mem_bytes=256 * MB,
        num_servers=2, server_mem_bytes=256 * MB,
    )


@workload("pagerank")
def _pagerank(seed: int, tracer: Tracer, metrics: MetricsRegistry
              ) -> Tuple[Dict[str, float], float]:
    """PageRank quickstart: power-law graph, BSP, a few iterations."""
    from repro.core.algorithms import PageRank
    from repro.core.context import PSGraphContext
    from repro.core.runner import GraphRunner
    from repro.datasets.generators import powerlaw_graph
    from repro.datasets.tencent import write_edges

    with PSGraphContext(_small_cluster(), app_name="lint-pagerank",
                        metrics=metrics, tracer=tracer) as ctx:
        src, dst = powerlaw_graph(
            400, 3000, seed=derive_seed(seed, "lint-pagerank"))
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        result = GraphRunner(ctx).run(
            PageRank(max_iterations=8, tol=1e-9), "/input/edges",
        )
        stats = {"iterations": float(result.iterations),
                 "residual": float(result.stats["residual"])}
        return stats, ctx.sim_time()


@workload("chaos-pagerank")
def _chaos_pagerank(seed: int, tracer: Tracer, metrics: MetricsRegistry
                    ) -> Tuple[Dict[str, float], float]:
    """PageRank under fault injection: an executor kill and a PS server
    kill mid-run, with per-iteration checkpoints and strict recovery.

    The CI chaos-smoke job double-runs this workload to assert that a
    seeded fault schedule — including every recovery and rollback it
    causes — is bit-for-bit reproducible.
    """
    from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
    from repro.core.algorithms import PageRank
    from repro.core.context import PSGraphContext
    from repro.core.runner import GraphRunner
    from repro.datasets.generators import powerlaw_graph
    from repro.datasets.tencent import write_edges

    with PSGraphContext(_small_cluster(), app_name="lint-chaos-pagerank",
                        metrics=metrics, tracer=tracer,
                        checkpoint_interval=1) as ctx:
        src, dst = powerlaw_graph(
            400, 3000, seed=derive_seed(seed, "lint-chaos-pagerank"))
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        schedule = FaultSchedule([
            FaultSpec("kill_executor", index=1, after_tasks=20),
            FaultSpec("kill_server", index=0, at_epoch=4),
        ], seed=seed)
        engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
        try:
            result = GraphRunner(ctx).run(
                PageRank(max_iterations=8, tol=1e-9), "/input/edges",
            )
        finally:
            engine.detach()
        ranks = result.output.rdd.collect()
        stats = {
            "iterations": float(result.iterations),
            "residual": float(result.stats["residual"]),
            "ranks_checksum": float(sum(r[1] for r in ranks)),
            "faults_fired": float(len(engine.fired)),
            "recoveries": float(ctx.ps.master.recoveries),
        }
        return stats, ctx.sim_time()


@workload("telemetry-chaos-pagerank")
def _telemetry_chaos_pagerank(seed: int, tracer: Tracer,
                              metrics: MetricsRegistry
                              ) -> Tuple[Dict[str, float], float]:
    """The chaos-pagerank schedule with the telemetry pipeline attached.

    Determinism here covers the *observability* layer itself: windowed
    series contents, SLO burn rates, alert fire/resolve sim-times, and
    the critical-path attribution must all be bit-identical across
    seeded double-runs — sampling may read only the sim clock.
    """
    from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
    from repro.core.algorithms import PageRank
    from repro.core.context import PSGraphContext
    from repro.core.runner import GraphRunner
    from repro.datasets.generators import powerlaw_graph
    from repro.datasets.tencent import write_edges
    from repro.obs.critical import critical_path
    from repro.obs.telemetry import TelemetryCollector

    with PSGraphContext(_small_cluster(),
                        app_name="lint-telemetry-chaos-pagerank",
                        metrics=metrics, tracer=tracer,
                        checkpoint_interval=1) as ctx:
        src, dst = powerlaw_graph(
            400, 3000, seed=derive_seed(seed, "lint-chaos-pagerank"))
        write_edges(ctx.hdfs, "/input/edges", src, dst, num_files=4)
        collector = TelemetryCollector(metrics, tracer).attach(ctx.spark)
        schedule = FaultSchedule([
            FaultSpec("kill_executor", index=1, after_tasks=20),
            FaultSpec("kill_server", index=0, at_epoch=4),
        ], seed=seed)
        engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
        engine.bind_telemetry(collector)
        try:
            result = GraphRunner(ctx).run(
                PageRank(max_iterations=8, tol=1e-9), "/input/edges",
            )
        finally:
            engine.detach()
            collector.finalize(ctx.sim_time())
            collector.detach()
        store = collector.store
        series_checksum = sum(
            widx * 31.0 + value
            for name in sorted(store.series)
            for widx, value in store.series[name].points
        )
        report = critical_path(tracer.spans(), ctx.sim_time())
        detection = engine.detection_timeline()
        stats = {
            "iterations": float(result.iterations),
            "residual": float(result.stats["residual"]),
            "faults_fired": float(len(engine.fired)),
            "ticks": float(store.ticks),
            "series": float(len(store.series)),
            "series_checksum": series_checksum,
            "alerts": float(len(collector.alerts)),
            "alert_fired_at": [a.fired_at_s for a in collector.alerts],
            "alert_resolved_at": [
                a.resolved_at_s if a.resolved_at_s is not None else -1.0
                for a in collector.alerts
            ],
            "max_burn_long": [
                float(row["max_burn_long"])
                for row in collector.engine.status()
            ],
            "detected": float(sum(
                1 for row in detection
                if row["detected_at_s"] is not None)),
            "critical_covered_pct": report.covered_pct,
        }
        return stats, ctx.sim_time()


@workload("graphsage")
def _graphsage(seed: int, tracer: Tracer, metrics: MetricsRegistry
               ) -> Tuple[Dict[str, float], float]:
    """GraphSage quickstart: one training epoch on a community graph."""
    from repro.core.algorithms.graphsage import GraphSage
    from repro.core.context import PSGraphContext
    from repro.core.ops import edges_from_arrays
    from repro.datasets.generators import community_graph, vertex_features

    gseed = derive_seed(seed, "lint-graphsage")
    src, dst, comm = community_graph(
        100, 3, avg_degree=8, mixing=0.05, seed=gseed)
    feats, labels = vertex_features(
        comm, 8, 3, noise=0.8, seed=derive_seed(gseed, "features"))
    with PSGraphContext(_small_cluster(), app_name="lint-graphsage",
                        metrics=metrics, tracer=tracer) as ctx:
        edges = edges_from_arrays(ctx.spark, src, dst)
        result = GraphSage(
            feats, labels, hidden=8, epochs=1, batch_size=32, lr=0.05,
            seed=seed,
        ).transform(ctx, edges)
        stats = {
            "accuracy": float(result.stats["accuracy"]),
            "losses": [float(x) for x in result.stats["epoch_losses"]],
        }
        return stats, ctx.sim_time()


@workload("serve-chaos")
def _serve_chaos(seed: int, tracer: Tracer, metrics: MetricsRegistry
                 ) -> Tuple[Dict[str, float], float]:
    """The serving plane under a kill-shard fault, telemetry attached.

    Covers the whole online path: seeded Zipfian traffic, token-bucket
    and watermark admission, hot-key caching over agent pulls, PS
    auto-recovery mid-traffic, and the ``serve-latency`` burn-rate alert.
    The CI serve-smoke job double-runs this in strict mode: every drop
    record, latency sample and alert boundary must be bit-identical.
    """
    import numpy as np

    from repro.chaos import ChaosEngine, FaultSchedule, FaultSpec
    from repro.common.rng import make_rng
    from repro.core.context import PSGraphContext
    from repro.obs.slo import default_slos
    from repro.obs.telemetry import TelemetryCollector
    from repro.serve import RequestGenerator, ServingPlane
    from repro.serve.plane import default_serve_slos
    from repro.serve.workload import default_tenants

    key_space = 1000
    with PSGraphContext(_small_cluster(), app_name="lint-serve-chaos",
                        metrics=metrics, tracer=tracer) as ctx:
        vector = ctx.ps.create_vector("serve.ranks", key_space)
        rng = make_rng(derive_seed(seed, "lint-serve-publish"))
        vector.set(np.arange(key_space), rng.random(key_space))
        ctx.ps.checkpoint_all()
        collector = TelemetryCollector(
            metrics, tracer, slos=default_slos() + default_serve_slos(),
        ).attach(ctx.spark)
        tenants = default_tenants("serve.ranks")
        generator = RequestGenerator(
            tenants, key_space=key_space, zipf_s=1.1, rate=1000.0,
            seed=derive_seed(seed, "lint-serve-traffic"))
        schedule = FaultSchedule([
            FaultSpec("kill_server", index=0, after_tasks=50,
                      task_kind="serve"),
        ], seed=seed)
        engine = ChaosEngine(schedule, ctx.spark, ctx.ps).attach()
        engine.bind_telemetry(collector)
        plane = ServingPlane(ctx.ps, tenants, cache_capacity=100)
        try:
            report = plane.run(generator.generate(
                12_000, start_s=ctx.sim_time()))
        finally:
            engine.detach()
            collector.finalize(ctx.sim_time())
            collector.detach()
        stats = {
            "served": float(report.served),
            "dropped": float(report.dropped),
            "drops": {k: float(v) for k, v in sorted(report.drops.items())},
            "conserved": report.conserved(),
            "p99_s": report.p99_s,
            "degraded_p99_s": report.degraded_p99_s or -1.0,
            "cache_hit_rate": report.cache_hit_rate,
            "drop_checksum": float(sum(
                r.seq * 31.0 + r.sim_time_s for r in report.drop_records)),
            "faults_fired": float(len(engine.fired)),
            "recoveries": float(ctx.ps.master.recoveries),
            "alerts": float(len(collector.alerts)),
            "alert_fired_at": [a.fired_at_s for a in collector.alerts],
        }
        return stats, ctx.sim_time()


@workload("streaming-window")
def _streaming_window(seed: int, tracer: Tracer, metrics: MetricsRegistry
                      ) -> Tuple[Dict[str, float], float]:
    """The streaming-mutation plane end to end, double-run in strict mode.

    Mutations flow topic -> staged at-least-once consumer -> window
    engine; every window mixes adds, removals and a vertex drop, and the
    incremental PageRank / components / embedding refreshes plus the
    per-window full-recompute baselines all run on the sim clock.  The
    CI streaming-smoke job asserts the whole pipeline — landing files,
    offsets, deltas, cascade pushes, sim costs — is bit-reproducible.
    """
    import numpy as np

    from repro.common.rng import make_rng
    from repro.core.context import PSGraphContext
    from repro.datasets.generators import powerlaw_graph
    from repro.ingest.kafka import EdgeStreamConsumer, KafkaTopic
    from repro.streaming import (
        IncrementalComponents,
        IncrementalPageRank,
        OnlineEmbeddingRefresh,
        StreamingEngine,
        StreamingGraph,
    )

    num_vertices = 300
    with PSGraphContext(_small_cluster(), app_name="lint-streaming",
                        metrics=metrics, tracer=tracer) as ctx:
        topic = KafkaTopic("mutations", num_partitions=4)
        graph = StreamingGraph(ctx.ps, num_vertices, metrics=ctx.metrics)
        consumer = EdgeStreamConsumer(
            topic, ctx.hdfs, landing_dir="/stream/edges",
            metrics=ctx.metrics)
        engine = StreamingEngine(graph, consumer, measure_full=True)
        engine.register("pagerank", IncrementalPageRank(graph, tol=1e-8))
        engine.register("components", IncrementalComponents(graph))
        engine.register("embedding", OnlineEmbeddingRefresh(
            graph, dim=4, seed=seed))

        src, dst = powerlaw_graph(
            num_vertices, 1200, seed=derive_seed(seed, "lint-stream-base"))
        topic.produce(src, dst)
        engine.run_window()  # base-load window
        engine.bootstrap()
        engine.reports.clear()

        rng = make_rng(derive_seed(seed, "lint-stream-muts"))
        for w in range(3):
            a_s = rng.integers(0, num_vertices, 10)
            a_d = (a_s + 1 + rng.integers(0, num_vertices - 1, 10)
                   ) % num_vertices
            topic.produce(a_s, a_d)
            present = graph.present_vertices()
            victims = present[rng.integers(0, len(present), 6)]
            outs = graph.out.get(victims)
            r_s, r_d = [], []
            for v, nb in zip(victims.tolist(), outs):
                if len(nb):
                    r_s.append(v)
                    r_d.append(int(nb[rng.integers(0, len(nb))]))
            if r_s:
                topic.produce_removals(
                    np.asarray(r_s, dtype=np.int64),
                    np.asarray(r_d, dtype=np.int64))
            if w == 1:
                doomed = present[int(rng.integers(0, len(present)))]
                topic.produce_vertex_removals(
                    np.asarray([doomed], dtype=np.int64))
            engine.run_window()

        ids, ranks = engine.algos["pagerank"].ranks()
        _, labels = engine.algos["components"].assignments()
        summary = engine.summary()
        stats = {
            "windows": summary["windows"],
            "records": float(sum(r.records for r in engine.reports)),
            "edges_live": float(graph.num_edges),
            "present": float(len(ids)),
            "ranks_checksum": float(ranks.sum()),
            "labels_checksum": float(labels.sum()),
            "components": float(len(np.unique(labels))),
            "dirty": float(sum(r.dirty_vertices for r in engine.reports)),
            "cost_incremental_s": summary["cost_incremental_s"],
            "cost_full_s": summary["cost_full_s"],
            "cost_ratio": summary["cost_ratio"],
            "landed_files": float(consumer._files),
            "ingest_polls": metrics.get("ingest.polls"),
        }
        return stats, ctx.sim_time()
