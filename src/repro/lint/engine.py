"""Rule engine for the simulation-invariant linter.

One :class:`LintEngine` holds an ordered set of rules (see
:mod:`repro.lint.rules`); :meth:`LintEngine.lint_source` parses a module
once, hands the tree to every rule, and filters the resulting
:class:`Violation` list through the file's suppression comments.

Suppression syntax (checked per physical line, comma-separated rule ids):

* ``# repro-lint: disable=SIM001`` — suppress on this line only.
* ``# repro-lint: disable=SIM001,SIM004`` — several rules at once.
* ``# repro-lint: disable-file=SIM001`` — suppress for the whole file
  (conventionally placed near the top, with a comment saying why).
* ``disable=all`` / ``disable-file=all`` — every rule.

Paths are matched against the *module-relative* path (``dataflow/rdd.py``,
``experiments/table1.py``) so rule scopes are stable no matter where the
repository checkout lives.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.dataflow import FunctionSummary, ProgramIndex
from repro.lint.rules import Rule, Violation, all_rules

# Importing the flow rules registers SIM101..SIM105 alongside the
# syntactic rules, so every engine user sees the full rule set.
import repro.lint.rules_flow  # noqa: F401  (registration side effect)

#: Matches one suppression comment; group 1 = "disable" | "disable-file",
#: group 2 = comma-separated rule ids (or "all").
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def module_relpath(path: str | Path, root: str | Path | None = None) -> str:
    """Path of ``path`` relative to the ``repro`` package, posix-style.

    Falls back to the path relative to ``root`` (the scanned directory),
    then to the bare file name, so rules written against package-relative
    fragments (``"common/"``, ``"experiments/"``) match regardless of the
    checkout location.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return str(PurePosixPath(*parts[i + 1:]))
    if root is not None:
        try:
            return Path(path).resolve().relative_to(
                Path(root).resolve()
            ).as_posix()
        except ValueError:
            pass
    return Path(path).name


def _parse_suppressions(
    source: str,
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract (file-wide suppressed ids, per-line suppressed ids)."""
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        for match in _SUPPRESS_RE.finditer(text):
            kind = match.group(1)
            ids = {r.strip().upper() for r in match.group(2).split(",")}
            if "ALL" in ids:
                ids = {"ALL"}
            if kind == "disable-file":
                file_wide |= ids
            else:
                per_line.setdefault(lineno, set()).update(ids)
    return file_wide, per_line


def _suppressed(v: Violation, file_wide: Set[str],
                per_line: Dict[int, Set[str]]) -> bool:
    if "ALL" in file_wide or v.rule_id in file_wide:
        return True
    line_ids = per_line.get(v.line, ())
    return "ALL" in line_ids or v.rule_id in line_ids


class LintEngine:
    """Runs a set of rules over python sources and collects violations.

    Attributes:
        parse_count: modules parsed through this engine — the
            incremental-mode tests assert a warm cache run re-parses
            only changed files by reading this counter.
    """

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None \
            else all_rules()
        self.parse_count = 0

    def ruleset_key(self) -> str:
        """Hash of the active rule set; part of the cache key, so a
        rule added, removed, or reworded invalidates cached verdicts."""
        h = hashlib.sha256()
        for rule in sorted(self.rules, key=lambda r: r.id):
            h.update(f"{rule.id}|{rule.description};".encode())
        return h.hexdigest()[:16]

    def _parse(self, source: str) -> ast.AST:
        self.parse_count += 1
        return ast.parse(source)

    def lint_source(self, source: str, relpath: str,
                    display_path: str | None = None,
                    program: ProgramIndex | None = None) -> List[Violation]:
        """Lint one module given as text.

        Args:
            source: the module source.
            relpath: package-relative path used for rule scoping.
            display_path: path to report in violations (defaults to
                ``relpath``).
            program: shared cross-module summaries for the flow rules;
                when omitted each flow rule builds a one-module index.
        """
        shown = display_path if display_path is not None else relpath
        try:
            tree = self._parse(source)
        except SyntaxError as exc:
            return [_syntax_violation(shown, exc)]
        return self.lint_parsed(tree, source, relpath, shown, program)

    def lint_parsed(self, tree: ast.AST, source: str, relpath: str,
                    shown: str,
                    program: ProgramIndex | None = None) -> List[Violation]:
        """Lint an already-parsed module (no parse counted here)."""
        file_wide, per_line = _parse_suppressions(source)
        out: List[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(relpath):
                continue
            if program is not None \
                    and getattr(rule, "needs_program", False):
                raw = rule.check_flow(tree, relpath, program)
            else:
                raw = rule.check(tree, relpath)
            for v in raw:
                v = Violation(v.rule_id, shown, v.line, v.col, v.message)
                if not _suppressed(v, file_wide, per_line):
                    out.append(v)
        out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return out

    def lint_file(self, path: str | Path,
                  root: str | Path | None = None) -> List[Violation]:
        """Lint one file on disk."""
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"),
            module_relpath(path, root),
            display_path=str(path),
        )


def _syntax_violation(shown: str, exc: SyntaxError) -> Violation:
    return Violation(
        "SIM000", shown, exc.lineno or 0, exc.offset or 0,
        f"syntax error: {exc.msg}",
    )


def iter_python_files(paths: Iterable[str | Path]) -> List[Tuple[Path, Path]]:
    """Expand files/directories into (file, scan_root) pairs, sorted."""
    out: List[Tuple[Path, Path]] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend((f, p) for f in sorted(p.rglob("*.py")))
        else:
            out.append((p, p.parent))
    return out


# ----------------------------------------------------------------------
# whole-tree lint with shared summaries and an incremental cache
# ----------------------------------------------------------------------

#: Cache file format version; bump on layout changes.
_CACHE_VERSION = 1


@dataclass
class _FileEntry:
    """Working state for one file during :func:`lint_tree`."""

    display: str
    relpath: str
    sha: str
    source: str
    tree: ast.AST | None = None
    cached: Optional[dict] = None          # valid cache record, if any
    summaries: List[dict] = field(default_factory=list)
    syntax_error: Optional[Violation] = None


def _load_cache(cache_path: str | Path,
                ruleset_key: str) -> Optional[dict]:
    path = Path(cache_path)
    if not path.exists():
        return None
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if doc.get("version") != _CACHE_VERSION \
            or doc.get("ruleset") != ruleset_key:
        return None
    return doc


def lint_tree(paths: Iterable[str | Path],
              rules: Sequence[Rule] | None = None,
              cache_path: str | Path | None = None,
              engine: LintEngine | None = None,
              ) -> Tuple[List[Violation], Dict[str, int]]:
    """Lint a file tree with cross-module summaries, optionally cached.

    Two phases: first every module is summarized into one shared
    :class:`ProgramIndex` (parsing only files whose content hash misses
    the cache — unchanged files restore their serialized summaries),
    then each module is checked with the resolved index.  Cached
    *verdicts* are reused only while the resolved summary table's
    digest is unchanged: the flow rules read nothing else across file
    boundaries, so an edit that alters no function summary cannot
    change another file's findings — while an edit that does alter one
    forces a full re-check.

    Returns ``(violations, stats)`` with stats keys ``files`` (seen),
    ``parsed`` (modules actually parsed) and ``reused`` (files whose
    cached findings were reused verbatim).
    """
    eng = engine if engine is not None else LintEngine(rules)
    key = eng.ruleset_key()
    cache = _load_cache(cache_path, key) if cache_path else None
    cached_files: Dict[str, dict] = cache.get("files", {}) if cache else {}

    program = ProgramIndex()
    entries: List[_FileEntry] = []
    for path, root in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        entry = _FileEntry(
            display=str(path),
            relpath=module_relpath(path, root),
            sha=hashlib.sha256(source.encode("utf-8")).hexdigest(),
            source=source,
        )
        rec = cached_files.get(entry.display)
        if rec is not None and rec.get("sha") == entry.sha:
            entry.cached = rec
            entry.summaries = list(rec.get("summaries", ()))
            program.add_summaries(
                FunctionSummary.from_dict(d) for d in entry.summaries)
        else:
            try:
                entry.tree = eng._parse(source)
            except SyntaxError as exc:
                entry.syntax_error = _syntax_violation(entry.display, exc)
            else:
                entry.summaries = [
                    s.to_dict()
                    for s in program.add_module(entry.relpath, entry.tree)
                ]
        entries.append(entry)

    program.resolve()
    digest = program.digest()
    reuse_verdicts = cache is not None and cache.get("digest") == digest

    violations: List[Violation] = []
    out_files: Dict[str, dict] = {}
    reused = 0
    for entry in entries:
        if entry.syntax_error is not None:
            vs = [entry.syntax_error]
        elif entry.tree is None and entry.cached is not None \
                and reuse_verdicts:
            vs = [
                Violation(row["rule"], row["path"], row["line"],
                          row["col"], row["message"])
                for row in entry.cached.get("violations", ())
            ]
            reused += 1
        else:
            if entry.tree is None:
                # Unchanged file, but a summary somewhere moved: its
                # verdicts may now differ, so re-parse and re-check.
                try:
                    entry.tree = eng._parse(entry.source)
                except SyntaxError as exc:
                    entry.syntax_error = _syntax_violation(
                        entry.display, exc)
            if entry.syntax_error is not None:
                vs = [entry.syntax_error]
            else:
                vs = eng.lint_parsed(entry.tree, entry.source,
                                     entry.relpath, entry.display, program)
        violations.extend(vs)
        out_files[entry.display] = {
            "sha": entry.sha,
            "summaries": entry.summaries,
            "violations": [v.to_dict() for v in vs],
        }

    if cache_path is not None:
        Path(cache_path).write_text(
            json.dumps({
                "version": _CACHE_VERSION,
                "ruleset": key,
                "digest": digest,
                "files": out_files,
            }) + "\n",
            encoding="utf-8",
        )
    stats = {"files": len(entries), "parsed": eng.parse_count,
             "reused": reused}
    return violations, stats


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[Rule] | None = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``; returns all violations.

    Cross-module summaries are shared (see :func:`lint_tree`), so the
    flow rules see the whole program even through this simpler API.
    """
    return lint_tree(paths, rules)[0]


def format_human(violations: Sequence[Violation]) -> str:
    """One line per violation plus a summary line."""
    lines = [v.format() for v in violations]
    n = len(violations)
    lines.append(
        "repro-lint: clean" if n == 0
        else f"repro-lint: {n} violation{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """The violation list as a JSON document."""
    return json.dumps(
        {"violations": [v.to_dict() for v in violations],
         "count": len(violations)},
        indent=2,
    )
