"""Rule engine for the simulation-invariant linter.

One :class:`LintEngine` holds an ordered set of rules (see
:mod:`repro.lint.rules`); :meth:`LintEngine.lint_source` parses a module
once, hands the tree to every rule, and filters the resulting
:class:`Violation` list through the file's suppression comments.

Suppression syntax (checked per physical line, comma-separated rule ids):

* ``# repro-lint: disable=SIM001`` — suppress on this line only.
* ``# repro-lint: disable=SIM001,SIM004`` — several rules at once.
* ``# repro-lint: disable-file=SIM001`` — suppress for the whole file
  (conventionally placed near the top, with a comment saying why).
* ``disable=all`` / ``disable-file=all`` — every rule.

Paths are matched against the *module-relative* path (``dataflow/rdd.py``,
``experiments/table1.py``) so rule scopes are stable no matter where the
repository checkout lives.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.lint.rules import Rule, Violation, all_rules

#: Matches one suppression comment; group 1 = "disable" | "disable-file",
#: group 2 = comma-separated rule ids (or "all").
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def module_relpath(path: str | Path, root: str | Path | None = None) -> str:
    """Path of ``path`` relative to the ``repro`` package, posix-style.

    Falls back to the path relative to ``root`` (the scanned directory),
    then to the bare file name, so rules written against package-relative
    fragments (``"common/"``, ``"experiments/"``) match regardless of the
    checkout location.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return str(PurePosixPath(*parts[i + 1:]))
    if root is not None:
        try:
            return Path(path).resolve().relative_to(
                Path(root).resolve()
            ).as_posix()
        except ValueError:
            pass
    return Path(path).name


def _parse_suppressions(
    source: str,
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract (file-wide suppressed ids, per-line suppressed ids)."""
    file_wide: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        for match in _SUPPRESS_RE.finditer(text):
            kind = match.group(1)
            ids = {r.strip().upper() for r in match.group(2).split(",")}
            if "ALL" in ids:
                ids = {"ALL"}
            if kind == "disable-file":
                file_wide |= ids
            else:
                per_line.setdefault(lineno, set()).update(ids)
    return file_wide, per_line


def _suppressed(v: Violation, file_wide: Set[str],
                per_line: Dict[int, Set[str]]) -> bool:
    if "ALL" in file_wide or v.rule_id in file_wide:
        return True
    line_ids = per_line.get(v.line, ())
    return "ALL" in line_ids or v.rule_id in line_ids


class LintEngine:
    """Runs a set of rules over python sources and collects violations."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None \
            else all_rules()

    def lint_source(self, source: str, relpath: str,
                    display_path: str | None = None) -> List[Violation]:
        """Lint one module given as text.

        Args:
            source: the module source.
            relpath: package-relative path used for rule scoping.
            display_path: path to report in violations (defaults to
                ``relpath``).
        """
        shown = display_path if display_path is not None else relpath
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            return [Violation(
                "SIM000", shown, exc.lineno or 0, exc.offset or 0,
                f"syntax error: {exc.msg}",
            )]
        file_wide, per_line = _parse_suppressions(source)
        out: List[Violation] = []
        for rule in self.rules:
            if not rule.applies_to(relpath):
                continue
            for v in rule.check(tree, relpath):
                v = Violation(v.rule_id, shown, v.line, v.col, v.message)
                if not _suppressed(v, file_wide, per_line):
                    out.append(v)
        out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return out

    def lint_file(self, path: str | Path,
                  root: str | Path | None = None) -> List[Violation]:
        """Lint one file on disk."""
        path = Path(path)
        return self.lint_source(
            path.read_text(encoding="utf-8"),
            module_relpath(path, root),
            display_path=str(path),
        )


def iter_python_files(paths: Iterable[str | Path]) -> List[Tuple[Path, Path]]:
    """Expand files/directories into (file, scan_root) pairs, sorted."""
    out: List[Tuple[Path, Path]] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend((f, p) for f in sorted(p.rglob("*.py")))
        else:
            out.append((p, p.parent))
    return out


def lint_paths(paths: Iterable[str | Path],
               rules: Sequence[Rule] | None = None) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``; returns all violations."""
    engine = LintEngine(rules)
    out: List[Violation] = []
    for path, root in iter_python_files(paths):
        out.extend(engine.lint_file(path, root))
    return out


def format_human(violations: Sequence[Violation]) -> str:
    """One line per violation plus a summary line."""
    lines = [v.format() for v in violations]
    n = len(violations)
    lines.append(
        "repro-lint: clean" if n == 0
        else f"repro-lint: {n} violation{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def format_json(violations: Sequence[Violation]) -> str:
    """The violation list as a JSON document."""
    return json.dumps(
        {"violations": [v.to_dict() for v in violations],
         "count": len(violations)},
        indent=2,
    )
