"""repro.lint — simulation-invariant static analysis and dynamic checks.

The reproduction's correctness story rests on invariants no generic linter
knows about: simulated time must come from :class:`~repro.common.simclock.
SimClock` / :class:`~repro.common.simclock.TaskCost` (never the wall clock),
randomness from seeded :mod:`repro.common.rng` streams, IO from the metered
:mod:`repro.hdfs` / RPC fabric, and every run must be bit-for-bit
deterministic so GraphX-vs-PS comparisons stay trustworthy.

Three layers enforce this:

* :mod:`repro.lint.engine` + :mod:`repro.lint.rules` — an AST-based static
  pass (rules SIM001..SIM005) with ``# repro-lint: disable=RULE``
  suppressions and JSON / human output — plus a flow-sensitive tier
  (:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`,
  :mod:`repro.lint.rules_flow`: rules SIM101..SIM105) with baseline
  (:mod:`repro.lint.baseline`), SARIF (:mod:`repro.lint.sarif`) and
  incremental-cache support.
* :mod:`repro.lint.dynamic` — a determinism harness that runs a workload
  twice with the same seed and diffs metrics snapshots and obs span
  sequences (``--strict`` fails on any float drift).
* :mod:`repro.lint.races` — a happens-before replay of PS push/pull spans
  that flags stale-read and lost-update windows of async training.

Run both from the command line: ``python -m repro.lint src/repro`` or
``python -m repro.lint --dynamic pagerank --strict``.  See
``docs/static-analysis.md``.
"""

from repro.lint.engine import (
    LintEngine,
    Violation,
    format_human,
    format_json,
    lint_paths,
    lint_tree,
)
from repro.lint.rules import RULES, Rule, all_rules, get_rules
from repro.lint.cfg import CFG, build_cfg, cfg_for_source
from repro.lint.dataflow import FunctionSummary, ProgramIndex, build_index
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.sarif import format_sarif, to_sarif
from repro.lint.dynamic import (
    DeterminismReport,
    RunSnapshot,
    WORKLOADS,
    check_determinism,
    run_workload,
)
from repro.lint.races import (
    FENCE_BARRIER,
    FENCE_STAGE,
    PsAccess,
    RaceReport,
    extract_accesses,
    extract_fences,
    find_races,
    happens_before,
)

__all__ = [
    "LintEngine",
    "Violation",
    "format_human",
    "format_json",
    "lint_paths",
    "lint_tree",
    "CFG",
    "build_cfg",
    "cfg_for_source",
    "FunctionSummary",
    "ProgramIndex",
    "build_index",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "format_sarif",
    "to_sarif",
    "RULES",
    "Rule",
    "all_rules",
    "get_rules",
    "DeterminismReport",
    "RunSnapshot",
    "WORKLOADS",
    "check_determinism",
    "run_workload",
    "FENCE_BARRIER",
    "FENCE_STAGE",
    "PsAccess",
    "RaceReport",
    "extract_accesses",
    "extract_fences",
    "find_races",
    "happens_before",
]
