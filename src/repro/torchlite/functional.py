"""Functional ops for torchlite: concat, segment aggregation, losses.

These are the graph-specific building blocks of GraphSage (Sec. IV-E):
``segment_mean``/``segment_max`` aggregate sampled neighbor representations
per target vertex, ``concat`` joins the vertex's own representation with the
aggregated neighborhood, and ``cross_entropy`` drives the supervised vertex
classification task of Table I.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.torchlite.tensor import Tensor


def concat(tensors: Sequence[Tensor], axis: int = 1) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(g: np.ndarray) -> List[np.ndarray]:
        return list(np.split(g, splits, axis=axis))

    return Tensor._make(data, tensors, backward)


def segment_mean(data: Tensor, segment_ids: np.ndarray,
                 num_segments: int) -> Tensor:
    """Mean of rows sharing a segment id (the GraphSage mean aggregator).

    Rows of ``data`` belong to segments given by ``segment_ids``; the output
    has ``num_segments`` rows, each the mean of its member rows (zero for
    empty segments).
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(
        np.float64
    )
    safe = np.maximum(counts, 1.0)
    out = np.zeros((num_segments, data.data.shape[1]))
    np.add.at(out, segment_ids, data.data)
    out /= safe[:, None]

    def backward(g: np.ndarray):
        return (g[segment_ids] / safe[segment_ids][:, None],)

    return Tensor._make(out, (data,), backward)


def segment_max(data: Tensor, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Per-segment elementwise max (the GraphSage pooling aggregator)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    cols = data.data.shape[1]
    out = np.full((num_segments, cols), -np.inf)
    np.maximum.at(out, segment_ids, data.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    out[empty] = 0.0
    # Winners: rows whose value equals the segment max get the gradient.
    winner = data.data == out[segment_ids]

    def backward(g: np.ndarray):
        return (g[segment_ids] * winner,)

    return Tensor._make(out, (data,), backward)


def log_softmax(logits: Tensor) -> Tensor:
    """Row-wise log-softmax, numerically stabilized."""
    x = logits.data
    shifted = x - x.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    out = shifted - lse
    softmax = np.exp(out)

    def backward(g: np.ndarray):
        return (g - softmax * g.sum(axis=1, keepdims=True),)

    return Tensor._make(out, (logits,), backward)


def softmax(logits: Tensor) -> Tensor:
    """Row-wise softmax."""
    return log_softmax(logits).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between row logits and integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    n = logits.data.shape[0]
    logp = log_softmax(logits)
    picked = logp[np.arange(n), labels]
    return -picked.sum() * (1.0 / n)


def binary_cross_entropy_with_logits(logits: Tensor,
                                     targets: np.ndarray) -> Tensor:
    """Mean binary cross-entropy on raw logits (LINE's edge objective)."""
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    p = logits.sigmoid()
    eps = 1e-12
    losses = -(targets_t * (p + eps).log()
               + (1.0 - targets_t) * (1.0 - p + eps).log())
    return losses.mean()


def dropout(x: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity at eval time or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    mask = (rng.random(x.data.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """L2-normalize each row (GraphSage's final embedding normalization)."""
    norms = (x * x).sum(axis=1, keepdims=True) ** 0.5
    return x / (norms + eps)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the label (plain numpy)."""
    pred = np.asarray(logits).argmax(axis=1)
    return float((pred == np.asarray(labels)).mean())
