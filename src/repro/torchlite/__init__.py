"""torchlite: numpy autograd engine standing in for embedded PyTorch."""

from repro.torchlite.functional import (
    accuracy,
    binary_cross_entropy_with_logits,
    concat,
    cross_entropy,
    dropout,
    log_softmax,
    normalize_rows,
    segment_max,
    segment_mean,
    softmax,
)
from repro.torchlite.nn import (
    Linear,
    LSTMCell,
    Module,
    ReLU,
    Sequential,
    Tanh,
    xavier_uniform,
)
from repro.torchlite.optim import AdamOptimizer, LocalOptimizer, SGDOptimizer
from repro.torchlite.script import ScriptModule
from repro.torchlite.tensor import Tensor

__all__ = [
    "AdamOptimizer",
    "LSTMCell",
    "Linear",
    "LocalOptimizer",
    "Module",
    "ReLU",
    "ScriptModule",
    "SGDOptimizer",
    "Sequential",
    "Tanh",
    "Tensor",
    "accuracy",
    "binary_cross_entropy_with_logits",
    "concat",
    "cross_entropy",
    "dropout",
    "log_softmax",
    "normalize_rows",
    "segment_max",
    "segment_mean",
    "softmax",
    "xavier_uniform",
]
