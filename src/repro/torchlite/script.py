"""ScriptModule — the serialized model blob shipped driver -> executors.

Fig. 5 of the paper: "(1) the user writes PyTorch script and generates
PyTorch model.  (2) Spark driver loads PyTorch model ...  (3) Every executor
loads PyTorch model ...".  In PSGraph the blob crosses the JVM/C++ boundary
via JNI; here it is a pickled (factory, kwargs, state_dict) triple, enough
to reconstruct an identical module on any executor.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict

from repro.torchlite.nn import Module


class ScriptModule:
    """A serializable recipe for a torchlite module.

    Args:
        factory: a top-level callable returning a fresh module.
        kwargs: keyword arguments for the factory.
        state: parameter arrays by dotted name (captured at save time).
    """

    def __init__(self, factory: Callable[..., Module],
                 kwargs: Dict[str, Any],
                 state: Dict[str, Any]) -> None:
        self.factory = factory
        self.kwargs = kwargs
        self.state = state

    @classmethod
    def trace(cls, factory: Callable[..., Module],
              **kwargs: Any) -> "ScriptModule":
        """Build the blob from a factory, capturing its initial weights."""
        module = factory(**kwargs)
        return cls(factory, kwargs, module.state_dict())

    def instantiate(self) -> Module:
        """Reconstruct the module with the captured weights."""
        module = self.factory(**self.kwargs)
        module.load_state_dict(self.state)
        return module

    def to_bytes(self) -> bytes:
        """Serialize for shipping across the simulated JNI boundary."""
        return pickle.dumps(
            (self.factory, self.kwargs, self.state),
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "ScriptModule":
        """Deserialize a blob produced by :meth:`to_bytes`."""
        factory, kwargs, state = pickle.loads(blob)
        return cls(factory, kwargs, state)
