"""Local (in-process) optimizers for torchlite modules.

Used by the Euler baseline and by unit tests; the PSGraph GraphSage path
instead pushes gradients to the PS and lets the *server-side* optimizers of
:mod:`repro.ps.optimizer` update the shared weights (Sec. IV-E).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.torchlite.tensor import Tensor


class LocalOptimizer:
    """Base: step over a fixed parameter list."""

    def __init__(self, params: List[Tensor]) -> None:
        self.params = list(params)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update using the stored gradients."""
        raise NotImplementedError


class SGDOptimizer(LocalOptimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params: List[Tensor], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class AdamOptimizer(LocalOptimizer):
    """Adam with bias correction."""

    def __init__(self, params: List[Tensor], lr: float = 1e-3,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1 - self.beta1 ** self._t
        b2t = 1 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
