"""Autograd tensors — the reproduction's stand-in for embedded PyTorch.

The paper embeds PyTorch in Spark through JNI so that "PyTorch performs
forward calculation and backward propagation with Autograd mechanism"
(Sec. III-C).  :class:`Tensor` provides that mechanism on numpy: a dynamic
tape of operations, reverse-mode differentiation via topological sort, and
the op set GraphSage needs (matmul, concat, segment-mean aggregation,
activations, cross-entropy).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class Tensor:
    """A numpy array with a gradient tape.

    Attributes:
        data: the underlying float array.
        requires_grad: participate in autograd.
        grad: accumulated gradient after :meth:`backward` (or None).
    """

    __slots__ = ("data", "requires_grad", "grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple:
        """Array shape."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.data.ndim

    def numpy(self) -> np.ndarray:
        """The raw array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 0-d/1-element tensor."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """A view without grad tracking."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def _accumulate(self, g: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += g

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad})"

    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode differentiation from this tensor.

        Args:
            grad: seed gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without a seed needs a scalar tensor"
                )
            grad = np.ones_like(self.data)
        # Topological order of the tape reachable from self.
        order: List[Tensor] = []
        seen = set()

        def visit(t: "Tensor") -> None:
            stack = [(t, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for p in node._parents:
                    if p.requires_grad and id(p) not in seen:
                        stack.append((p, False))

        visit(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in reversed(order):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward is None:
                # Leaf: expose the accumulated gradient to the user.
                node._accumulate(g)
                continue
            parent_grads = node._backward(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                key = id(p)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------
    # arithmetic ops
    # ------------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = _wrap(other)
        data = self.data + other.data

        def backward(g):
            return (_unbroadcast(g, self.data.shape),
                    _unbroadcast(g, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-_wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return _wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _wrap(other)
        data = self.data * other.data

        def backward(g):
            return (_unbroadcast(g * other.data, self.data.shape),
                    _unbroadcast(g * self.data, other.data.shape))

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _wrap(other)
        data = self.data / other.data

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.data.shape),
                _unbroadcast(-g * self.data / other.data ** 2,
                             other.data.shape),
            )

        return Tensor._make(data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = _wrap(other)
        data = self.data @ other.data

        def backward(g):
            return (g @ other.data.T, self.data.T @ g)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Reshape, differentiable."""
        old = self.data.shape
        data = self.data.reshape(*shape)
        return Tensor._make(data, (self,), lambda g: (g.reshape(old),))

    @property
    def T(self) -> "Tensor":
        """2-d transpose, differentiable."""
        return Tensor._make(self.data.T, (self,), lambda g: (g.T,))

    def __getitem__(self, idx) -> "Tensor":
        """Row/element gather, differentiable (scatter-add backward)."""
        data = self.data[idx]

        def backward(g):
            out = np.zeros_like(self.data)
            np.add.at(out, idx, g)
            return (out,)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------

    def sum(self, axis: int | None = None, keepdims: bool = False
            ) -> "Tensor":
        """Sum, differentiable."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.data.shape).copy(),)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False
             ) -> "Tensor":
        """Mean, differentiable."""
        n = (self.data.size if axis is None
             else self.data.shape[axis])
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)
        return Tensor._make(data, (self,), lambda g: (g * data,))

    def log(self) -> "Tensor":
        """Elementwise natural log."""
        return Tensor._make(
            np.log(self.data), (self,), lambda g: (g / self.data,)
        )

    def relu(self) -> "Tensor":
        """Rectified linear unit."""
        mask = self.data > 0
        return Tensor._make(
            self.data * mask, (self,), lambda g: (g * mask,)
        )

    def sigmoid(self) -> "Tensor":
        """Logistic sigmoid."""
        s = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        return Tensor._make(s, (self,), lambda g: (g * s * (1 - s),))

    def tanh(self) -> "Tensor":
        """Hyperbolic tangent."""
        t = np.tanh(self.data)
        return Tensor._make(t, (self,), lambda g: (g * (1 - t * t),))


def _wrap(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def _unbroadcast(g: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce a broadcast gradient back to the original operand shape."""
    g = np.asarray(g)
    while g.ndim > len(shape):
        g = g.sum(axis=0)
    for i, (gdim, sdim) in enumerate(zip(g.shape, shape)):
        if sdim == 1 and gdim != 1:
            g = g.sum(axis=i, keepdims=True)
    return g
