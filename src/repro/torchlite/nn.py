"""Neural-network modules for torchlite.

The user-facing layer of the embedded deep-learning runtime: the paper's
users "write PyTorch script and generate PyTorch model" (Sec. IV-E); here
they compose :class:`Module` subclasses and ship them to executors as
:class:`repro.torchlite.script.ScriptModule` blobs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.torchlite.tensor import Tensor


class Module:
    """Base class: tracks parameters and submodules by attribute name."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> List[Tensor]:
        """All trainable tensors, depth-first."""
        out = list(self._parameters.values())
        for m in self._modules.values():
            out.extend(m.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """``(dotted_name, tensor)`` pairs, depth-first."""
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, m in self._modules.items():
            yield from m.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays by dotted name."""
        params = dict(self.named_parameters())
        for name, array in state.items():
            params[name].data[...] = array

    def forward(self, *args, **kwargs):
        """Compute the module output (subclass hook)."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def xavier_uniform(rng: np.random.Generator, fan_in: int,
                   fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform init."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out))


class Linear(Module):
    """Affine layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            xavier_uniform(rng, in_features, out_features),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True)
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear unit as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Tanh as a module."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class LSTMCell(Module):
    """A standard LSTM cell (input/forget/cell/output gates).

    Used by the GraphSage LSTM aggregator (the paper's step 3 lists
    "mean aggregator, LSTM aggregator, and pooling aggregator"): the cell
    is unrolled over a vertex's sampled-neighbor sequence and the final
    hidden state is the aggregated neighborhood representation.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_ih = Tensor(
            xavier_uniform(rng, input_dim, 4 * hidden_dim),
            requires_grad=True,
        )
        self.w_hh = Tensor(
            xavier_uniform(rng, hidden_dim, 4 * hidden_dim),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(4 * hidden_dim), requires_grad=True)

    def forward(self, x_t: Tensor, h: Tensor, c: Tensor):
        """One step: returns ``(h_next, c_next)``."""
        gates = x_t @ self.w_ih + h @ self.w_hh + self.bias
        hd = self.hidden_dim
        i = gates[:, 0 * hd:1 * hd].sigmoid()
        f = gates[:, 1 * hd:2 * hd].sigmoid()
        g = gates[:, 2 * hd:3 * hd].tanh()
        o = gates[:, 3 * hd:4 * hd].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def run_sequence(self, x: Tensor, batch: int, steps: int) -> Tensor:
        """Unroll over ``x`` of shape (batch*steps, input_dim).

        Row ``b*steps + t`` is element ``t`` of sequence ``b``; returns the
        final hidden state (batch, hidden_dim).
        """
        h = Tensor(np.zeros((batch, self.hidden_dim)))
        c = Tensor(np.zeros((batch, self.hidden_dim)))
        idx = np.arange(batch) * steps
        for t in range(steps):
            h, c = self.forward(x[idx + t], h, c)
        return h


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x
