"""Deterministic fault injection (chaos) for the simulated cluster.

See :mod:`repro.chaos.schedule` for the declarative fault plans and
:mod:`repro.chaos.engine` for the engine that fires them.
"""

from repro.chaos.engine import ChaosEngine, FiredFault, InjectedRpcTimeout
from repro.chaos.schedule import (
    FAULT_KINDS,
    KILL_KINDS,
    RPC_KINDS,
    FaultSchedule,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "KILL_KINDS",
    "RPC_KINDS",
    "ChaosEngine",
    "FaultSchedule",
    "FaultSpec",
    "FiredFault",
    "InjectedRpcTimeout",
]
