"""Chaos engine: fires a :class:`FaultSchedule` into a running cluster.

The engine attaches to the existing failure-injection surfaces — the
SparkContext's post-task hooks (kill / slow faults) and the RPC fabric's
fault-injector slot (drop / timeout faults) — so no scheduler or server
code knows chaos exists.  Every fired fault is charged to the simulated
clocks of the parties involved, counted in the metrics registry and, when
tracing is on, dropped on the driver's ``chaos`` track, so recovery cost
shows up in the same Chrome trace as the work it delayed.

Typical use::

    schedule = FaultSchedule.load("schedule.json")
    engine = ChaosEngine(schedule, ctx.spark, ctx.ps)
    engine.attach()
    try:
        result = GraphRunner(ctx).run(algo, "/input/edges")
    finally:
        engine.detach()
    print(engine.describe())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.chaos.schedule import KILL_KINDS, RPC_KINDS, FaultSchedule, FaultSpec
from repro.common.errors import ConfigError, RpcError
from repro.common.metrics import CHAOS_FAULTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext
    from repro.ps.context import PSContext


@dataclass
class FiredFault:
    """Record of one fault the engine actually injected."""

    kind: str
    target: str
    sim_time_s: float
    tasks_seen: int
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "target": self.target,
            "sim_time_s": self.sim_time_s, "tasks_seen": self.tasks_seen,
            **self.detail,
        }


class ChaosEngine:
    """Deterministically injects one schedule into one cluster."""

    def __init__(self, schedule: FaultSchedule, spark: "SparkContext",
                 ps: Optional["PSContext"] = None) -> None:
        self.schedule = schedule
        self.spark = spark
        self.ps = ps
        self.tasks_seen = 0
        self.rpc_calls_seen = 0
        self.fired: List[FiredFault] = []
        #: Optional telemetry collector; when bound, the fault report
        #: carries the SLO alerts and a detection timeline per fault.
        self._telemetry = None
        self._attached = False
        self._installed_injector = None
        #: (fault, matching-calls-seen, failures-injected) for rpc faults.
        self._rpc_state: List[List] = []
        #: Task-triggered faults not yet fired.
        self._pending: List[FaultSpec] = []
        #: (restore_at_tasks_seen, executor_index, previous_slowdown).
        self._slow_restores: List[List] = []
        if any(f.kind == "kill_server" for f in schedule) and ps is None:
            raise ConfigError(
                "schedule contains kill_server faults but no PSContext "
                "was given"
            )
        if any(f.at_epoch is not None for f in schedule) and ps is None:
            raise ConfigError(
                "schedule contains at_epoch triggers but no PSContext "
                "was given"
            )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "ChaosEngine":
        """Install the task hook and the RPC fault injector."""
        if self._attached:
            return self
        self._pending = [f for f in self.schedule
                         if f.kind not in RPC_KINDS]
        self._rpc_state = [[f, 0, 0] for f in self.schedule
                           if f.kind in RPC_KINDS]
        self.spark.add_task_hook(self._on_task)
        if self._rpc_state:
            if self.spark.rpc.fault_injector is not None:
                raise ConfigError(
                    "RPC fabric already has a fault injector installed"
                )
            # Keep the exact bound-method object installed: each attribute
            # access creates a fresh one, so detach() must compare against
            # this instance, not a new ``self._on_rpc``.
            self._installed_injector = self._on_rpc
            self.spark.rpc.fault_injector = self._installed_injector
        self._attached = True
        return self

    def detach(self) -> None:
        """Remove the hooks and undo any still-active slowdowns."""
        if not self._attached:
            return
        self._attached = False
        self.spark.remove_task_hook(self._on_task)
        if self.spark.rpc.fault_injector is self._installed_injector:
            self.spark.rpc.fault_injector = None
        self._installed_injector = None
        for entry in self._slow_restores:
            _at, index, previous = entry
            self.spark.executors[index].slowdown = previous
        self._slow_restores.clear()

    def __enter__(self) -> "ChaosEngine":
        return self.attach()

    def __exit__(self, *exc: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------

    def _on_task(self, stage_id: int, partition: int, kind: str) -> None:
        self.tasks_seen += 1
        # Expire straggler windows first so a restore scheduled for task N
        # happens before a fault triggered at task N fires.
        still_slow: List[List] = []
        for entry in self._slow_restores:
            at, index, previous = entry
            if at is not None and self.tasks_seen >= at:
                self.spark.executors[index].slowdown = previous
            else:
                still_slow.append(entry)
        self._slow_restores = still_slow
        due: List[FaultSpec] = []
        remaining: List[FaultSpec] = []
        for fault in self._pending:
            if self._kill_due(fault, kind):
                due.append(fault)
            else:
                remaining.append(fault)
        self._pending = remaining
        for fault in due:
            self._fire_task_fault(fault)

    def _kill_due(self, fault: FaultSpec, task_kind: str) -> bool:
        if fault.task_kind is not None and task_kind != fault.task_kind:
            return False
        if fault.after_tasks is not None:
            return self.tasks_seen >= fault.after_tasks
        # at_epoch trigger: fire at the first (matching) task completion
        # once the PS sync controller reaches the epoch.
        assert self.ps is not None
        return self.ps.sync.epoch >= (fault.at_epoch or 0)

    def _fire_task_fault(self, fault: FaultSpec) -> None:
        if fault.kind == "kill_executor":
            executor = self.spark.executors[fault.index]
            if not executor.alive:
                return
            self.spark.kill_executor(fault.index, reason="chaos")
            self._record(fault, executor.id)
        elif fault.kind == "kill_server":
            assert self.ps is not None
            server = self.ps.servers[fault.index]
            if not server.container.alive:
                return
            self.ps.kill_server(fault.index)
            self._record(fault, server.id)
        elif fault.kind == "slow_executor":
            executor = self.spark.executors[fault.index]
            previous = executor.slowdown
            executor.slowdown = fault.factor
            # duration_tasks == 0 means "until detached": the entry never
            # expires by task count but detach() still restores it.
            self._slow_restores.append([
                self.tasks_seen + fault.duration_tasks
                if fault.duration_tasks > 0 else None,
                fault.index, previous,
            ])
            self._record(fault, executor.id,
                         {"factor": fault.factor,
                          "duration_tasks": fault.duration_tasks})

    def _on_rpc(self, endpoint: str, method: str) -> float:
        """RPC fault injector (see :attr:`repro.net.rpc.RpcEnv.fault_injector`).

        Returns extra simulated latency to charge the caller; raises
        :class:`RpcError` to fail the call.
        """
        self.rpc_calls_seen += 1
        for state in self._rpc_state:
            fault, seen, injected = state
            if not fault.matches_rpc(endpoint, method):
                continue
            state[1] = seen = seen + 1
            if injected >= fault.count or seen <= fault.after_calls:
                continue
            state[2] = injected + 1
            self._record(
                fault, f"{endpoint}.{method}",
                {"call": seen, "delay_s": fault.delay_s},
            )
            if fault.kind == "rpc_timeout":
                raise InjectedRpcTimeout(
                    f"chaos: injected timeout on {endpoint}.{method}",
                    delay_s=fault.delay_s,
                )
            raise RpcError(
                f"chaos: injected drop on {endpoint}.{method}"
            )
        return 0.0

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def _record(self, fault: FaultSpec, target: str,
                detail: Optional[Dict[str, object]] = None) -> None:
        now_s = self.spark.driver_clock.now_s
        self.fired.append(FiredFault(
            fault.kind, target, now_s, self.tasks_seen, detail or {}
        ))
        self.spark.metrics.inc(CHAOS_FAULTS)
        tracer = self.spark.tracer
        if tracer.enabled:
            tracer.instant(
                "driver", "chaos", f"chaos.{fault.kind}", now_s,
                {"target": target, "tasks_seen": self.tasks_seen,
                 **(detail or {})},
            )

    @property
    def exhausted(self) -> bool:
        """True when every scheduled fault has fired."""
        return (not self._pending
                and all(s[2] >= s[0].count for s in self._rpc_state))

    def bind_telemetry(self, collector) -> "ChaosEngine":
        """Attach a :class:`~repro.obs.telemetry.TelemetryCollector`.

        Once bound, :meth:`report` includes the SLO alert log and a
        per-fault detection timeline (injection -> first alert), which is
        what chaos runs use to measure detection-to-recovery.
        """
        self._telemetry = collector
        return self

    def detection_timeline(self) -> List[Dict[str, object]]:
        """Injection-to-detection rows for every fired fault.

        Each row pairs a fired fault with the first alert whose
        sim-time detection stamp is at or after the injection.  A fault
        nobody alerted on has ``detected_at_s`` None — that is a
        coverage gap worth seeing, not an error.
        """
        if self._telemetry is None:
            return []
        rows: List[Dict[str, object]] = []
        for f in self.fired:
            alert = next(
                (a for a in self._telemetry.alerts
                 if a.fired_at_s >= f.sim_time_s - 1e-9), None)
            row: Dict[str, object] = {
                "kind": f.kind,
                "target": f.target,
                "injected_at_s": f.sim_time_s,
                "detected_at_s": None,
                "detection_delay_s": None,
                "slo": None,
                "recovered_at_s": None,
            }
            if alert is not None:
                row.update({
                    "detected_at_s": alert.fired_at_s,
                    "detection_delay_s": alert.fired_at_s - f.sim_time_s,
                    "slo": alert.slo,
                    "recovered_at_s": alert.resolved_at_s,
                })
            rows.append(row)
        return rows

    def report(self) -> Dict[str, object]:
        """Machine-readable summary of what the engine injected."""
        doc: Dict[str, object] = {
            "tasks_seen": self.tasks_seen,
            "rpc_calls_seen": self.rpc_calls_seen,
            "scheduled": len(self.schedule),
            "fired": [f.to_dict() for f in self.fired],
        }
        if self._telemetry is not None:
            doc["alerts"] = [a.to_dict()
                             for a in self._telemetry.alerts]
            doc["detection"] = self.detection_timeline()
        return doc

    def describe(self) -> str:
        """Human-readable summary of the injected faults."""
        lines = [
            f"chaos: {len(self.fired)} fault(s) fired "
            f"({len(self.schedule)} scheduled, {self.tasks_seen} tasks "
            f"observed)"
        ]
        for f in self.fired:
            extra = "".join(
                f" {k}={v}" for k, v in sorted(f.detail.items())
            )
            lines.append(
                f"  t={f.sim_time_s:10.3f}s task#{f.tasks_seen:<5d} "
                f"{f.kind} -> {f.target}{extra}"
            )
        for row in self.detection_timeline():
            if row["detected_at_s"] is None:
                lines.append(
                    f"  t={row['injected_at_s']:10.3f}s "
                    f"{row['kind']} -> {row['target']}: no alert fired"
                )
            else:
                lines.append(
                    f"  t={row['injected_at_s']:10.3f}s "
                    f"{row['kind']} detected by {row['slo']} "
                    f"after {row['detection_delay_s']:.3f}s"
                )
        return "\n".join(lines)


class InjectedRpcTimeout(RpcError):
    """A chaos-injected RPC timeout; carries the simulated wait."""

    def __init__(self, message: str, delay_s: float = 0.0) -> None:
        super().__init__(message)
        self.delay_s = delay_s
