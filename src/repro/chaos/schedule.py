"""Deterministic fault schedules.

Table II of the paper evaluates PSGraph's fault tolerance by "manually
killing an executor / a parameter server" mid-job.  A
:class:`FaultSchedule` systematizes that manual kill into a declarative,
seed-reproducible plan: each :class:`FaultSpec` names a fault kind and a
*deterministic trigger* — a completed-task count, a PS sync epoch, or an
RPC call count — never the wall clock, so a seeded chaos run double-runs
bit-identically (the property CI's chaos-smoke job asserts through the
strict determinism harness).

Fault kinds:

==================  =====================================================
kind                effect when the trigger fires
==================  =====================================================
``kill_executor``   kill one Spark executor (cache + shuffle outputs lost)
``kill_server``     kill one PS server (model partitions lost)
``rpc_drop``        the next ``count`` matching RPCs raise
                    :class:`~repro.common.errors.RpcError` (transient)
``rpc_timeout``     like ``rpc_drop`` but each failure first charges
                    ``delay_s`` of simulated wait to the caller
``slow_executor``   multiply one executor's task time by ``factor`` for
                    ``duration_tasks`` completed tasks (a straggler)
==================  =====================================================

Schedules round-trip through JSON (the CLI's ``--chaos schedule.json``)
and can be generated from a seed with :func:`FaultSchedule.random`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.rng import make_rng

#: Fault kinds that target an executor / server index via task triggers.
KILL_KINDS = ("kill_executor", "kill_server")
#: Fault kinds injected on the RPC fabric.
RPC_KINDS = ("rpc_drop", "rpc_timeout")
#: Every supported kind.
FAULT_KINDS = KILL_KINDS + RPC_KINDS + ("slow_executor",)


@dataclass
class FaultSpec:
    """One planned fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        index: executor / server index (kill and slow faults).
        after_tasks: fire once the engine has seen this many completed
            tasks (kill / slow faults; mutually exclusive with
            ``at_epoch``).
        at_epoch: fire at the first completed task at or after this PS
            sync epoch (kill / slow faults on a context with a PS).
        task_kind: only count completed tasks of this kind (e.g.
            ``result``); ``None`` counts every task.
        endpoint: RPC endpoint glob, e.g. ``ps-server-*`` (rpc faults).
        method: RPC method glob, e.g. ``push`` (rpc faults).
        after_calls: fire from this many matching RPC calls onward.
        count: number of consecutive matching calls to fail.
        delay_s: simulated seconds charged per ``rpc_timeout`` failure.
        factor: slowdown multiplier for ``slow_executor``.
        duration_tasks: tasks the slowdown lasts (0 = until detached).
    """

    kind: str
    index: int = 0
    after_tasks: Optional[int] = None
    at_epoch: Optional[int] = None
    task_kind: Optional[str] = None
    endpoint: str = "*"
    method: str = "*"
    after_calls: int = 0
    count: int = 1
    delay_s: float = 0.0
    factor: float = 1.0
    duration_tasks: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{FAULT_KINDS}"
            )
        if self.kind in KILL_KINDS or self.kind == "slow_executor":
            if self.after_tasks is None and self.at_epoch is None:
                raise ConfigError(
                    f"{self.kind} fault needs an after_tasks or at_epoch "
                    "trigger"
                )
            if self.after_tasks is not None and self.at_epoch is not None:
                raise ConfigError(
                    f"{self.kind} fault must use after_tasks OR at_epoch, "
                    "not both"
                )
        if self.kind == "slow_executor" and self.factor < 1.0:
            raise ConfigError("slow_executor factor must be >= 1.0")
        if self.kind in RPC_KINDS and self.count < 1:
            raise ConfigError("rpc fault count must be >= 1")
        if self.delay_s < 0.0:
            raise ConfigError("delay_s must be non-negative")

    def matches_rpc(self, endpoint: str, method: str) -> bool:
        """Whether this (rpc) fault targets one endpoint/method pair."""
        return (fnmatchcase(endpoint, self.endpoint)
                and fnmatchcase(method, self.method))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form with default fields elided."""
        out: Dict[str, object] = {}
        for key, value in asdict(self).items():
            if value != getattr(type(self), key, None) or key == "kind":
                out[key] = value
        return out


@dataclass
class FaultSchedule:
    """An ordered list of planned faults plus its provenance seed."""

    faults: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        self.faults = [
            f if isinstance(f, FaultSpec) else FaultSpec(**f)
            for f in self.faults
        ]

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        out: Dict[str, object] = {
            "faults": [f.to_dict() for f in self.faults]
        }
        if self.seed is not None:
            out["seed"] = self.seed
        return out

    def to_json(self, indent: int = 2) -> str:
        """Serialize the schedule to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        """Parse a schedule from a dict (the JSON layout)."""
        if not isinstance(data, dict) or "faults" not in data:
            raise ConfigError(
                "fault schedule must be an object with a 'faults' list"
            )
        faults = data["faults"]
        if not isinstance(faults, list):
            raise ConfigError("'faults' must be a list")
        try:
            specs = [FaultSpec(**f) for f in faults]
        except TypeError as exc:
            raise ConfigError(f"bad fault spec: {exc}") from exc
        seed = data.get("seed")
        return cls(specs, seed=seed if seed is None else int(seed))

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid fault schedule JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        """Load a schedule from a local JSON file."""
        with open(path) as f:
            return cls.from_json(f.read())

    def save(self, path: str) -> None:
        """Write the schedule to a local JSON file."""
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    # -- generation --------------------------------------------------------

    @classmethod
    def random(cls, seed: int, *, num_faults: int = 3,
               num_executors: int, num_servers: int = 0,
               max_after_tasks: int = 60,
               kinds: Sequence[str] = FAULT_KINDS) -> "FaultSchedule":
        """Generate a seed-deterministic schedule.

        Triggers are drawn uniformly from ``[1, max_after_tasks]`` and
        targets from the executor/server ranges; the same seed always
        yields the same schedule, so randomized chaos sweeps remain
        reproducible.
        """
        rng = make_rng(seed)
        kinds = [
            k for k in kinds
            if num_servers > 0 or k != "kill_server"
        ]
        if not kinds:
            raise ConfigError("no fault kinds to draw from")
        faults: List[FaultSpec] = []
        for _ in range(num_faults):
            kind = kinds[int(rng.integers(len(kinds)))]
            after = int(rng.integers(1, max_after_tasks + 1))
            if kind == "kill_executor":
                faults.append(FaultSpec(
                    kind, index=int(rng.integers(num_executors)),
                    after_tasks=after,
                ))
            elif kind == "kill_server":
                faults.append(FaultSpec(
                    kind, index=int(rng.integers(num_servers)),
                    after_tasks=after,
                ))
            elif kind == "slow_executor":
                faults.append(FaultSpec(
                    kind, index=int(rng.integers(num_executors)),
                    after_tasks=after,
                    factor=float(2 + int(rng.integers(7))),
                    duration_tasks=int(rng.integers(5, 30)),
                ))
            else:  # rpc_drop / rpc_timeout
                faults.append(FaultSpec(
                    kind, endpoint="ps-server-*",
                    after_calls=int(rng.integers(1, max_after_tasks + 1)),
                    count=int(rng.integers(1, 3)),
                    delay_s=(float(rng.integers(1, 10))
                             if kind == "rpc_timeout" else 0.0),
                ))
        # Sort by trigger so firing order is independent of draw order.
        faults.sort(key=lambda f: (
            f.after_tasks if f.after_tasks is not None else f.after_calls,
            f.kind, f.index,
        ))
        return cls(faults, seed=seed)
