"""PS agent — the client side of the parameter server.

"PSGraph establishes a PS agent in every Spark executor to manage the data
communication between Spark and PS.  When the PS agent needs to get a data
item from the PS, it first uses the data index to get the partition location
from PSContext ... then gets the required data from PS via RPC" (Sec. III-C).

In the simulation a single :class:`PSAgent` object plays the role of all the
per-executor agents: when called from inside a running dataflow task it
charges *that task's* cost, otherwise the driver's clock.

Cost model of one agent operation: the agent fans its per-partition requests
out to all involved servers **concurrently**, so the operation takes one
RPC latency plus the transfer time of the *most loaded server's* share of
the bytes, inflated by the congestion factor (executors per server) —
plus serialization CPU for the total payload.  This is why adding servers
speeds PSGraph up and why "using one machine to store the latent vectors
could cause serious network congestion" (Sec. IV-D).

Failure handling follows Sec. III-B: if a server is dead, the agent asks
the master to recover (restart via Yarn + reload HDFS checkpoints) and then
retries once.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Any, List, Sequence, Tuple

import numpy as np

from repro.common.errors import (
    ContainerLostError,
    EndpointNotFoundError,
    RpcError,
)
from repro.common.metrics import (
    PS_PSFUNC_CALLS,
    PS_PULL_BYTES,
    PS_PULLS,
    PS_PUSH_BYTES,
    PS_PUSHES,
    PS_REQUEST_H,
)
from repro.common.batch import RecordBatch, split_indices
from repro.common.simclock import TaskCost
from repro.common.sizeof import sizeof
from repro.dataflow.taskctx import current_task_context, task_span
from repro.ps.meta import MatrixMeta
from repro.ps.psfunc import PsFunc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ps.context import PSContext

#: One request: (server_index, method, args, request_bytes, response_bytes)
#: where response_bytes is an int or a callable over the result.
Call = Tuple[int, str, tuple, int, Any]


class PSAgent:
    """Routes model requests to the right servers and meters them."""

    def __init__(self, psctx: "PSContext") -> None:
        self.psctx = psctx

    # ------------------------------------------------------------------
    # metered concurrent-call primitive
    # ------------------------------------------------------------------

    def _invoke(self, server_index: int, method: str, args: tuple) -> Any:
        """One raw RPC with master-recovery retry (Sec. III-B)."""
        psctx = self.psctx
        endpoint = psctx.server_endpoint(server_index)
        rpc = psctx.spark.rpc
        try:
            self._check_fault(endpoint, method)
            ep = rpc.endpoint(endpoint)
            if not ep.alive:
                raise RpcError(f"endpoint {endpoint} is not alive")
            return getattr(ep.handler, method)(*args)
        except EndpointNotFoundError:
            raise
        except (RpcError, ContainerLostError):
            if not psctx.auto_recover:
                raise
            psctx.master.recover(psctx.recovery_mode)
            ep = rpc.endpoint(endpoint)
            return getattr(ep.handler, method)(*args)

    def _check_fault(self, endpoint: str, method: str) -> None:
        """Chaos hook: the agent dispatches to server handlers directly
        (bypassing :meth:`RpcEnv.call`), so it must consult the fabric's
        fault injector itself.  Injected timeout latency lands on the
        running task's cost, or the driver clock outside a task."""
        rpc = self.psctx.spark.rpc
        if rpc.fault_injector is None:
            return
        tctx = current_task_context()
        if tctx is not None:
            rpc.check_fault(endpoint, method, tctx.cost)
            return
        try:
            rpc.check_fault(endpoint, method, None)
        except RpcError as exc:
            delay_s = getattr(exc, "delay_s", 0.0)
            if delay_s > 0.0:
                self.psctx.spark.driver_clock.advance(delay_s)
            raise

    def _group_call(self, calls: Sequence[Call],
                    col: int | None = None) -> List[Any]:
        """Issue requests concurrently; charge the caller once.

        Time charged = one latency + (bytes of the busiest server) x
        congestion / bandwidth; CPU charged for serializing everything.

        The recorded span is tagged with the matrix (and, for column-
        scoped row ops, the column) so the staleness detector in
        :mod:`repro.lint.races` can attribute each access to a location.
        """
        psctx = self.psctx
        cm = psctx.spark.cluster.cost_model
        tctx = current_task_context()
        cost = tctx.cost if tctx is not None else TaskCost()
        cost_before_s = cost.total_s
        concurrent = psctx.spark.cluster.num_executors if tctx else 1
        per_server: defaultdict = defaultdict(float)
        total = 0.0
        results: List[Any] = []
        for server_index, method, args, req_bytes, resp_bytes in calls:
            result = self._invoke(server_index, method, args)
            results.append(result)
            if callable(resp_bytes):
                resp_bytes = resp_bytes(result)
            nbytes = req_bytes + resp_bytes
            per_server[server_index] += nbytes
            total += nbytes
        tags: dict = {}
        if calls:
            busiest = max(per_server.values())
            congestion = max(1.0, concurrent / max(1, psctx.num_servers))
            method = calls[0][1]
            tags = {"calls": len(calls), "bytes": int(total)}
            # Every server method's first argument is the matrix name.
            matrix = calls[0][2][0] if calls[0][2] else None
            if isinstance(matrix, str):
                tags["matrix"] = matrix
            if col is not None:
                tags["col"] = int(col)
            with task_span(f"ps.{method}", cost, tags):
                cost.net_s += cm.network_time(busiest, congestion)
                cost.cpu_s += cm.serialization_time(total)
            metrics = psctx.spark.metrics
            from repro.common.metrics import RPC_BYTES, RPC_CALLS

            metrics.inc(RPC_CALLS, len(calls))
            metrics.inc(RPC_BYTES, total)
            metrics.observe(PS_REQUEST_H, total)
            # Per-operation sim-time latency: everything this group call
            # charged to the caller (network + serialization + injected
            # RPC delays) — the series latency SLOs are written against.
            metrics.observe(f"ps.{method}.latency_s",
                            cost.total_s - cost_before_s)
        if tctx is None:
            # Driver-side operation: advance the driver clock and, when
            # tracing, record the span on the driver's "ps-agent" track.
            clock = psctx.spark.driver_clock
            start_s = clock.now_s
            clock.advance(cost.total_s)
            tracer = psctx.spark.tracer
            if calls and tracer.enabled:
                tracer.add(
                    "driver", "ps-agent", f"ps.{calls[0][1]}",
                    start_s, clock.now_s, tags,
                )
        return results

    def _metrics(self):
        return self.psctx.spark.metrics

    # ------------------------------------------------------------------
    # row pull/push/set (axis=0)
    # ------------------------------------------------------------------

    def pull(self, meta: MatrixMeta, keys: np.ndarray,
             col: int | None = None) -> np.ndarray:
        """Rows (or a single column of them) for ``keys``, in input order.

        When the matrix has an agent-side pull cache enabled, cached keys
        are served locally and only the misses hit the servers.
        """
        keys = np.asarray(keys, dtype=np.int64)
        ukeys, inverse = np.unique(keys, return_inverse=True)
        if col is not None:
            out = np.zeros(len(ukeys), dtype=meta.dtype)
        else:
            out = np.zeros((len(ukeys), meta.cols), dtype=meta.dtype)
        cache = self.psctx.pull_cache(meta.name)
        if cache is not None:
            epoch = self.psctx.sync.epoch
            hit_mask, hit_values = cache.lookup(ukeys, col, epoch)
            for i in np.flatnonzero(hit_mask):
                out[i] = hit_values[i]
            if hit_mask.all():
                return out[inverse]
            miss = ~hit_mask
            fetched = self._pull_from_servers(
                meta, ukeys[miss], col,
                np.zeros(int(miss.sum()), dtype=meta.dtype)
                if col is not None
                else np.zeros((int(miss.sum()), meta.cols),
                              dtype=meta.dtype),
            )
            out[miss] = fetched
            cache.store(ukeys[miss], col, fetched, epoch)
            return out[inverse]
        out = self._pull_from_servers(meta, ukeys, col, out)
        return out[inverse]

    def _pull_from_servers(self, meta: MatrixMeta, ukeys: np.ndarray,
                           col: int | None, out: np.ndarray) -> np.ndarray:
        """The uncached server fetch for unique ``ukeys``; fills ``out``."""
        pids = meta.partitioner.partition_array(ukeys)
        calls: List[Call] = []
        index_sets = []
        for pid, idx in split_indices(pids):
            subkeys = ukeys[idx]
            index_sets.append(idx)
            calls.append((
                meta.server_of(pid), "pull",
                (meta.name, pid, subkeys, col),
                int(subkeys.nbytes),
                lambda v: int(v.nbytes),
            ))
        results = self._group_call(calls, col=col)
        nbytes = 0
        for idx, values in zip(index_sets, results):
            out[idx] = values
            nbytes += int(values.nbytes)
        self._metrics().inc(PS_PULLS)
        self._metrics().inc(PS_PULL_BYTES, nbytes + int(ukeys.nbytes))
        return out

    def push(self, meta: MatrixMeta, keys: np.ndarray, deltas: np.ndarray,
             col: int | None = None) -> None:
        """Increment rows for ``keys`` by ``deltas`` (duplicates add up)."""
        self._write(meta, keys, deltas, col, "push")

    def set(self, meta: MatrixMeta, keys: np.ndarray, values: np.ndarray,
            col: int | None = None) -> None:
        """Overwrite rows for ``keys`` with ``values``."""
        self._write(meta, keys, values, col, "set")

    # -- columnar batch views ----------------------------------------------

    def pull_batch(self, meta: MatrixMeta, keys: np.ndarray,
                   col: int | None = None) -> RecordBatch:
        """Pull rows for ``keys`` as one columnar RecordBatch.

        Same server calls, metering and cache interaction as :meth:`pull`;
        the result keeps keys and values aligned in primitive arrays so a
        dataflow partition can carry it directly — the paper's
        pull-in-primitive-arrays path, end to end.
        """
        keys = np.asarray(keys, dtype=np.int64)
        return RecordBatch(keys, self.pull(meta, keys, col))

    def push_batch(self, meta: MatrixMeta, batch: RecordBatch,
                   col: int | None = None) -> None:
        """Increment rows keyed by ``batch.keys`` by its value column."""
        self.push(meta, batch.keys, batch.values, col)

    def set_batch(self, meta: MatrixMeta, batch: RecordBatch,
                  col: int | None = None) -> None:
        """Overwrite rows keyed by ``batch.keys`` with its value column."""
        self.set(meta, batch.keys, batch.values, col)

    def _write(self, meta: MatrixMeta, keys: np.ndarray,
               values: np.ndarray, col: int | None, method: str) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        cache = self.psctx.pull_cache(meta.name)
        if cache is not None:
            cache.invalidate(keys)
        values = np.asarray(values, dtype=meta.dtype)
        pids = meta.partitioner.partition_array(keys)
        calls: List[Call] = []
        for pid, idx in split_indices(pids):
            subkeys = keys[idx]
            subvalues = values[idx]
            calls.append((
                meta.server_of(pid), method,
                (meta.name, pid, subkeys, subvalues, col),
                int(subkeys.nbytes + subvalues.nbytes),
                0,
            ))
        self._group_call(calls, col=col)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(
            PS_PUSH_BYTES, int(keys.nbytes + values.nbytes)
        )

    def pull_all(self, meta: MatrixMeta) -> np.ndarray:
        """The full matrix, assembled at the caller (axis=0 or axis=1)."""
        if meta.axis == 1:
            return self.pull_rows_full(
                meta, np.arange(meta.rows, dtype=np.int64)
            )
        out = np.zeros((meta.rows, meta.cols), dtype=meta.dtype)
        calls: List[Call] = []
        key_sets = []
        for pid in range(meta.num_partitions):
            keys = meta.partitioner.keys_of_partition(pid)
            key_sets.append(keys)
            calls.append((
                meta.server_of(pid), "pull",
                (meta.name, pid, keys, None),
                int(keys.nbytes),
                lambda v: int(v.nbytes),
            ))
        for keys, values in zip(key_sets, self._group_call(calls)):
            out[keys] = values
        self._metrics().inc(PS_PULLS)
        self._metrics().inc(PS_PULL_BYTES, int(out.nbytes))
        return out

    # ------------------------------------------------------------------
    # column-shard operations (axis=1)
    # ------------------------------------------------------------------

    def pull_rows_full(self, meta: MatrixMeta,
                       row_keys: np.ndarray) -> np.ndarray:
        """Full rows of a column-sharded matrix (concatenated slices)."""
        row_keys = np.asarray(row_keys, dtype=np.int64)
        out = np.zeros((len(row_keys), meta.cols), dtype=meta.dtype)
        calls: List[Call] = [
            (
                meta.server_of(pid), "pull_slices",
                (meta.name, pid, row_keys),
                int(row_keys.nbytes),
                lambda v: int(v.nbytes),
            )
            for pid in range(meta.num_partitions)
        ]
        results = self._group_call(calls)
        nbytes = 0
        for pid, values in enumerate(results):
            cols = meta.partitioner.keys_of_partition(pid)
            out[:, cols] = values
            nbytes += int(values.nbytes)
        self._metrics().inc(PS_PULLS)
        self._metrics().inc(
            PS_PULL_BYTES, nbytes + int(row_keys.nbytes)
        )
        return out

    def push_rows_full(self, meta: MatrixMeta, row_keys: np.ndarray,
                       deltas: np.ndarray) -> None:
        """Increment full rows of a column-sharded matrix."""
        self._write_slices(meta, row_keys, deltas, "push_slices")

    def set_rows_full(self, meta: MatrixMeta, row_keys: np.ndarray,
                      values: np.ndarray) -> None:
        """Overwrite full rows of a column-sharded matrix."""
        self._write_slices(meta, row_keys, values, "set_slices")

    def _write_slices(self, meta: MatrixMeta, row_keys: np.ndarray,
                      values: np.ndarray, method: str) -> None:
        row_keys = np.asarray(row_keys, dtype=np.int64)
        values = np.asarray(values, dtype=meta.dtype)
        calls: List[Call] = []
        for pid in range(meta.num_partitions):
            cols = meta.partitioner.keys_of_partition(pid)
            sub = np.ascontiguousarray(values[:, cols])
            calls.append((
                meta.server_of(pid), method,
                (meta.name, pid, row_keys, sub),
                int(row_keys.nbytes + sub.nbytes),
                0,
            ))
        self._group_call(calls)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(
            PS_PUSH_BYTES, int(row_keys.nbytes + values.nbytes)
        )

    # ------------------------------------------------------------------
    # neighbor tables
    # ------------------------------------------------------------------

    def push_neighbors(self, meta: MatrixMeta, vertices: np.ndarray,
                       tables: List[np.ndarray]) -> None:
        """Merge per-vertex neighbor arrays into the PS tables."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pids = meta.partitioner.partition_array(vertices)
        calls: List[Call] = []
        total = 0
        for pid in np.unique(pids):
            mask = pids == pid
            sub_v = vertices[mask]
            sub_t = [tables[i] for i in np.flatnonzero(mask)]
            nbytes = int(sub_v.nbytes + sum(t.nbytes for t in sub_t))
            total += nbytes
            calls.append((
                meta.server_of(int(pid)), "push_neighbors",
                (meta.name, int(pid), sub_v, sub_t),
                nbytes, 0,
            ))
        self._group_call(calls)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(PS_PUSH_BYTES, total)

    def remove_neighbors(self, meta: MatrixMeta, vertices: np.ndarray,
                         tables: List[np.ndarray]) -> None:
        """Subtract per-vertex neighbor arrays from the PS tables."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pids = meta.partitioner.partition_array(vertices)
        calls: List[Call] = []
        total = 0
        for pid in np.unique(pids):
            mask = pids == pid
            sub_v = vertices[mask]
            sub_t = [tables[i] for i in np.flatnonzero(mask)]
            nbytes = int(sub_v.nbytes + sum(t.nbytes for t in sub_t))
            total += nbytes
            calls.append((
                meta.server_of(int(pid)), "remove_neighbors",
                (meta.name, int(pid), sub_v, sub_t),
                nbytes, 0,
            ))
        self._group_call(calls)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(PS_PUSH_BYTES, total)

    def drop_vertices(self, meta: MatrixMeta,
                      vertices: np.ndarray) -> None:
        """Delete the adjacency tables of ``vertices`` across servers."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pids = meta.partitioner.partition_array(vertices)
        calls: List[Call] = []
        total = 0
        for pid in np.unique(pids):
            sub_v = vertices[pids == pid]
            total += int(sub_v.nbytes)
            calls.append((
                meta.server_of(int(pid)), "drop_vertices",
                (meta.name, int(pid), sub_v),
                int(sub_v.nbytes), 0,
            ))
        self._group_call(calls)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(PS_PUSH_BYTES, total)

    def get_neighbors(self, meta: MatrixMeta,
                      vertices: np.ndarray) -> List[np.ndarray]:
        """Neighbor arrays for ``vertices``, aligned with the input order."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pids = meta.partitioner.partition_array(vertices)
        out: List[np.ndarray | None] = [None] * len(vertices)
        calls: List[Call] = []
        index_sets = []
        for pid in np.unique(pids):
            idx = np.flatnonzero(pids == pid)
            sub_v = vertices[idx]
            index_sets.append(idx)
            calls.append((
                meta.server_of(int(pid)), "get_neighbors",
                (meta.name, int(pid), sub_v),
                int(sub_v.nbytes),
                lambda ts: int(sum(t.nbytes for t in ts)),
            ))
        results = self._group_call(calls)
        nbytes = int(vertices.nbytes)
        for idx, tables in zip(index_sets, results):
            for i, t in zip(idx.tolist(), tables):
                out[i] = t
            nbytes += int(sum(t.nbytes for t in tables))
        self._metrics().inc(PS_PULLS)
        self._metrics().inc(PS_PULL_BYTES, nbytes)
        return out  # type: ignore[return-value]

    def degrees(self, meta: MatrixMeta, vertices: np.ndarray) -> np.ndarray:
        """Neighbor counts for ``vertices``."""
        vertices = np.asarray(vertices, dtype=np.int64)
        pids = meta.partitioner.partition_array(vertices)
        out = np.zeros(len(vertices), dtype=np.int64)
        calls: List[Call] = []
        index_sets = []
        for pid in np.unique(pids):
            idx = np.flatnonzero(pids == pid)
            sub_v = vertices[idx]
            index_sets.append(idx)
            calls.append((
                meta.server_of(int(pid)), "degrees",
                (meta.name, int(pid), sub_v),
                int(sub_v.nbytes),
                lambda d: int(d.nbytes),
            ))
        for idx, degs in zip(index_sets, self._group_call(calls)):
            out[idx] = degs
        self._metrics().inc(PS_PULLS)
        return out

    def compact(self, meta: MatrixMeta) -> None:
        """Freeze all neighbor-table partitions into CSR form."""
        self._group_call([
            (meta.server_of(pid), "compact", (meta.name, pid), 16, 0)
            for pid in range(meta.num_partitions)
        ])

    def table_total(self, meta: MatrixMeta) -> int:
        """Total vertices stored across all neighbor-table partitions."""
        sizes = self._group_call([
            (meta.server_of(pid), "table_size", (meta.name, pid), 16, 8)
            for pid in range(meta.num_partitions)
        ])
        return int(sum(sizes))

    # ------------------------------------------------------------------
    # psFunc & gradients
    # ------------------------------------------------------------------

    def psfunc(self, meta: MatrixMeta, func: PsFunc) -> Any:
        """Run ``func`` on every partition and merge the partials."""
        req = sizeof(func)
        partials = self._group_call([
            (
                meta.server_of(pid), "run_psfunc",
                (meta.name, pid, func),
                req,
                lambda r: sizeof(r),
            )
            for pid in range(meta.num_partitions)
        ])
        self._metrics().inc(PS_PSFUNC_CALLS)
        return func.merge(partials)

    def apply_gradients(self, meta: MatrixMeta, grad: np.ndarray) -> None:
        """Ship a full-shape gradient; each server updates its partition
        with the matrix's server-side optimizer."""
        grad = np.asarray(grad, dtype=meta.dtype)
        calls: List[Call] = []
        for pid in range(meta.num_partitions):
            keys = meta.partitioner.keys_of_partition(pid)
            if meta.axis == 1:
                sub = np.ascontiguousarray(grad[:, keys])
            else:
                sub = np.ascontiguousarray(grad[keys])
            calls.append((
                meta.server_of(pid), "apply_gradients",
                (meta.name, pid, sub),
                int(sub.nbytes), 0,
            ))
        self._group_call(calls)
        self._metrics().inc(PS_PUSHES)
        self._metrics().inc(PS_PUSH_BYTES, int(grad.nbytes))
