"""Parameter server process.

Each :class:`PSServer` wraps one Yarn container, holds the model partitions
assigned to it, and exposes the RPC surface the agents call: pull/push/set
on rows, slice operations for column shards, neighbor-table operations,
psFunc execution, gradient application, and checkpoint save/load.

Memory for every store is charged against the container's grant (an
oversized model OOMs the server, as on a real cluster), and each operation
advances the server's clock by its compute cost so BSP barriers see server
time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.costs import CostModel
from repro.common.errors import PartitionNotFoundError, PSError
from repro.common.simclock import TaskCost
from repro.hdfs.filesystem import Hdfs
from repro.obs.tracer import NOOP_TRACER, NoopTracer
from repro.ps.meta import MatrixMeta
from repro.ps.psfunc import PsFunc
from repro.ps.storage import (
    ColumnShardStore,
    DenseRowStore,
    NeighborTableStore,
    SparseRowStore,
    Store,
)
from repro.yarn.resource_manager import Container


class PSServer:
    """One parameter-server container and its model partitions."""

    def __init__(self, index: int, container: Container,
                 cost_model: CostModel, hdfs: Hdfs,
                 tracer: NoopTracer = NOOP_TRACER) -> None:
        self.index = index
        self.container = container
        self.cost_model = cost_model
        self.hdfs = hdfs
        self.tracer = tracer
        self._stores: Dict[Tuple[str, int], Store] = {}
        self._metas: Dict[str, MatrixMeta] = {}
        self._opt_state: Dict[Tuple[str, int], Dict[str, np.ndarray]] = {}
        self._charged: Dict[Tuple[str, int], int] = {}

    @property
    def id(self) -> str:
        """Container id, e.g. ``ps-server-3``."""
        return self.container.id

    # ------------------------------------------------------------------
    # memory & time accounting helpers
    # ------------------------------------------------------------------

    def _recharge(self, key: Tuple[str, int]) -> None:
        """Reconcile the container's memory charge with the store size."""
        store = self._stores[key]
        new = store.nbytes
        old = self._charged.get(key, 0)
        tag = f"ps:{key[0]}"
        if new > old:
            self.container.memory.allocate(new - old, tag=tag)
        elif new < old:
            self.container.memory.release(old - new, tag=tag)
        self._charged[key] = new

    def _work(self, flops: float, op: str | None = None,
              matrix: str | None = None) -> None:
        """Advance the server clock by compute time.

        When ``op`` is given and tracing is on, the compute lands as a
        span on this server's "ops" track.
        """
        start_s = self.container.clock.now_s
        self.container.clock.advance(self.cost_model.flop_time(flops))
        if op is not None and self.tracer.enabled:
            self.tracer.add(
                self.id, "ops", f"ps.{op}",
                start_s, self.container.clock.now_s,
                {"matrix": matrix, "flops": flops},
            )

    def _store(self, matrix: str, pid: int) -> Store:
        store = self._stores.get((matrix, pid))
        if store is None:
            raise PartitionNotFoundError(
                f"server {self.id} does not hold {matrix}[{pid}]"
            )
        return store

    # ------------------------------------------------------------------
    # partition lifecycle (called by the PS context / master)
    # ------------------------------------------------------------------

    def create_partition(self, meta: MatrixMeta, pid: int) -> None:
        """Allocate the store for one partition of ``meta``."""
        self.container.ensure_alive()
        self._metas[meta.name] = meta
        key = (meta.name, pid)
        if meta.storage == "dense":
            store: Store = DenseRowStore(
                meta.partitioner.keys_of_partition(pid), meta.cols,
                meta.dtype, meta.init,
            )
        elif meta.storage == "sparse":
            store = SparseRowStore(meta.cols, meta.dtype)
        elif meta.storage == "column":
            store = ColumnShardStore(
                meta.rows, meta.partitioner.keys_of_partition(pid),
                meta.dtype, meta.init,
            )
        elif meta.storage == "neighbor":
            store = NeighborTableStore()
        else:
            raise PSError(f"unknown storage kind {meta.storage!r}")
        self._stores[key] = store
        if meta.optimizer is not None and meta.storage in ("dense", "column"):
            self._opt_state[key] = meta.optimizer.init_state(
                store.array.shape, meta.dtype
            )
        self._recharge(key)

    def drop_matrix(self, matrix: str) -> None:
        """Release every partition of one matrix."""
        for key in [k for k in self._stores if k[0] == matrix]:
            del self._stores[key]
            self._opt_state.pop(key, None)
            self._charged.pop(key, None)
        self.container.memory.release_tag(f"ps:{matrix}")
        self._metas.pop(matrix, None)

    def held_partitions(self) -> List[Tuple[str, int]]:
        """Keys of partitions this server currently holds."""
        return sorted(self._stores)

    def wipe(self) -> None:
        """Forget all state (the process died)."""
        self._stores.clear()
        self._opt_state.clear()
        self._charged.clear()

    def ping(self) -> bool:
        """Health-check endpoint for the master."""
        self.container.ensure_alive()
        return True

    # ------------------------------------------------------------------
    # row operations (axis=0 dense/sparse stores)
    # ------------------------------------------------------------------

    def pull(self, matrix: str, pid: int, keys: np.ndarray,
             col: int | None = None) -> np.ndarray:
        """Rows (or one column of them) for ``keys``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        cols = 1 if col is not None else store.cols
        self._work(len(keys) * cols, "pull", matrix)
        return store.get_rows(keys, col)

    def push(self, matrix: str, pid: int, keys: np.ndarray,
             deltas: np.ndarray, col: int | None = None) -> None:
        """Increment rows for ``keys`` by ``deltas``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.inc_rows(keys, deltas, col)
        self._work(np.size(deltas), "push", matrix)
        self._recharge((matrix, pid))

    def set(self, matrix: str, pid: int, keys: np.ndarray,
            values: np.ndarray, col: int | None = None) -> None:
        """Overwrite rows for ``keys``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.set_rows(keys, values, col)
        self._work(np.size(values), "set", matrix)
        self._recharge((matrix, pid))

    # ------------------------------------------------------------------
    # column-shard operations (axis=1 stores)
    # ------------------------------------------------------------------

    def pull_slices(self, matrix: str, pid: int,
                    row_keys: np.ndarray) -> np.ndarray:
        """Local column slice of the requested rows."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        self._work(len(row_keys) * store.array.shape[1],
                   "pull_slices", matrix)
        return store.get_row_slices(row_keys)

    def push_slices(self, matrix: str, pid: int, row_keys: np.ndarray,
                    deltas: np.ndarray) -> None:
        """Increment the local column slice of the requested rows."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.inc_row_slices(row_keys, deltas)
        self._work(deltas.size, "push_slices", matrix)

    def set_slices(self, matrix: str, pid: int, row_keys: np.ndarray,
                   values: np.ndarray) -> None:
        """Overwrite the local column slice of the requested rows."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.set_row_slices(row_keys, values)
        self._work(values.size, "set_slices", matrix)

    # ------------------------------------------------------------------
    # neighbor-table operations
    # ------------------------------------------------------------------

    def push_neighbors(self, matrix: str, pid: int, vertices: np.ndarray,
                       tables: List[np.ndarray]) -> None:
        """Merge neighbor arrays into the tables of ``vertices``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        n = 0
        for v, t in zip(np.asarray(vertices).tolist(), tables):
            store.append_neighbors(int(v), t)
            n += len(t)
        self._work(n, "push_neighbors", matrix)
        self._recharge((matrix, pid))

    def remove_neighbors(self, matrix: str, pid: int, vertices: np.ndarray,
                         tables: List[np.ndarray]) -> None:
        """Subtract neighbor arrays from the tables of ``vertices``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        n = 0
        for v, t in zip(np.asarray(vertices).tolist(), tables):
            store.remove_neighbors(int(v), t)
            n += len(t)
        self._work(n, "remove_neighbors", matrix)
        self._recharge((matrix, pid))

    def drop_vertices(self, matrix: str, pid: int,
                      vertices: np.ndarray) -> None:
        """Delete the adjacency tables of ``vertices``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.drop_vertices(vertices)
        self._work(len(vertices), "drop_vertices", matrix)
        self._recharge((matrix, pid))

    def get_neighbors(self, matrix: str, pid: int,
                      vertices: np.ndarray) -> List[np.ndarray]:
        """Neighbor arrays for ``vertices`` (empty for unknown vertices)."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        out = store.get_neighbors(vertices)
        self._work(sum(len(t) for t in out), "get_neighbors", matrix)
        return out

    def degrees(self, matrix: str, pid: int,
                vertices: np.ndarray) -> np.ndarray:
        """Neighbor counts for ``vertices``."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        self._work(len(vertices), "degrees", matrix)
        return store.degree(vertices)

    def compact(self, matrix: str, pid: int) -> None:
        """Freeze a neighbor table into CSR form."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        store.compact()
        self._recharge((matrix, pid))

    def table_size(self, matrix: str, pid: int) -> int:
        """Number of vertices stored in one neighbor-table partition."""
        self.container.ensure_alive()
        return self._store(matrix, pid).num_vertices()

    # ------------------------------------------------------------------
    # psFunc & gradients
    # ------------------------------------------------------------------

    def run_psfunc(self, matrix: str, pid: int, func: PsFunc) -> object:
        """Execute a psFunc against one partition's store."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        result = func.apply(store)
        self._work(func.flops(store), "psfunc", matrix)
        self._recharge((matrix, pid))
        return result

    def apply_gradients(self, matrix: str, pid: int,
                        grad: np.ndarray) -> None:
        """Run the matrix's server-side optimizer on one partition.

        ``grad`` must match the partition's parameter shape (rows owned by
        the partition for axis=0; the column slice for axis=1).
        """
        self.container.ensure_alive()
        meta = self._metas[matrix]
        if meta.optimizer is None:
            raise PSError(f"matrix {matrix} has no optimizer attached")
        store = self._store(matrix, pid)
        state = self._opt_state[(matrix, pid)]
        meta.optimizer.step(store.array, grad, state)
        self._work(grad.size * meta.optimizer.flops_per_element(),
                   "apply_gradients", matrix)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self, matrix: str, pid: int, path: str) -> int:
        """Snapshot one partition to HDFS; returns bytes written."""
        self.container.ensure_alive()
        store = self._store(matrix, pid)
        cost = TaskCost()
        state = store.snapshot()
        opt = self._opt_state.get((matrix, pid))
        payload = {"store": state,
                   "opt": ({k: v.copy() for k, v in opt.items()}
                           if opt is not None else None)}
        f = self.hdfs.write_pickle(path, payload, overwrite=True, cost=cost)
        start_s = self.container.clock.now_s
        self.container.clock.advance(cost.total_s)
        if self.tracer.enabled:
            self.tracer.add(
                self.id, "ops", "ps.checkpoint",
                start_s, self.container.clock.now_s,
                {"matrix": matrix, "partition": pid,
                 "bytes": f.logical_bytes},
            )
        return f.logical_bytes

    def restore_partition(self, meta: MatrixMeta, pid: int,
                          path: str) -> None:
        """Recreate one partition from its HDFS checkpoint."""
        self.container.ensure_alive()
        cost = TaskCost()
        payload = self.hdfs.read_pickle(path, cost=cost)
        start_s = self.container.clock.now_s
        self.container.clock.advance(cost.total_s)
        if self.tracer.enabled:
            self.tracer.add(
                self.id, "ops", "ps.restore",
                start_s, self.container.clock.now_s,
                {"matrix": meta.name, "partition": pid},
            )
        self.create_partition(meta, pid)
        key = (meta.name, pid)
        self._stores[key].restore(payload["store"])
        if payload["opt"] is not None:
            self._opt_state[key] = payload["opt"]
        self._recharge(key)
