"""PSContext — the driver-side entry point of the parameter server.

"PSGraph creates a context called PSContext to store the configurations of
PS, such as the locations of parameter servers and the partition layout
(mapping of data partitions to servers)" (Sec. III-C).

The context launches server containers through the resource manager,
registers them on the RPC fabric, owns the agent, the sync controller and
the master, and is the factory for PS-resident models (matrices, vectors,
column-sharded embeddings, neighbor tables).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.errors import (
    CheckpointNotFoundError,
    ConfigError,
    ContainerLostError,
    MatrixNotFoundError,
    RpcError,
)
from repro.common.metrics import (
    PS_CHECKPOINT_BYTES,
    PS_CHECKPOINTS,
    PS_RECOVERIES,
    PS_ROLLBACKS,
    PS_SERVERS_ALIVE_G,
    PS_SERVERS_TOTAL_G,
)
from repro.dataflow.context import SparkContext
from repro.ps.agent import PSAgent
from repro.ps.master import PSMaster
from repro.ps.matrix import PSEmbedding, PSMatrix, PSNeighborTable, PSVector
from repro.ps.meta import STORAGE_KINDS, MatrixMeta
from repro.ps.optimizer import Optimizer
from repro.ps.partitioner import make_ps_partitioner
from repro.ps.server import PSServer
from repro.ps.sync import SyncController


class PSContext:
    """One parameter-server deployment attached to a SparkContext.

    Args:
        spark: the owning SparkContext (provides Yarn, RPC, HDFS, metrics).
        num_servers: server containers to launch; defaults to the cluster
            config's ``num_servers``.
        server_mem_bytes: per-server grant; defaults to the cluster config.
        partitions_per_server: model partitions per server (spreads load).
        checkpoint_dir: HDFS directory for partition checkpoints.
        checkpoint_interval: when > 0, every Nth :meth:`barrier` call
            checkpoints every registered model to HDFS — the paper's
            "each parameter server periodically stores the local data
            partition to HDFS" (Sec. III-A).  0 leaves checkpointing to
            explicit calls.
        sync_mode: "bsp" (default) or "asp".
    """

    def __init__(self, spark: SparkContext, *,
                 num_servers: int | None = None,
                 server_mem_bytes: int | None = None,
                 partitions_per_server: int = 2,
                 checkpoint_dir: str = "/ps-checkpoints",
                 checkpoint_interval: int = 0,
                 sync_mode: str = "bsp") -> None:
        cluster = spark.cluster
        num_servers = num_servers or cluster.num_servers
        server_mem_bytes = server_mem_bytes or cluster.server_mem_bytes
        if num_servers <= 0:
            raise ConfigError(
                "PSContext needs at least one server (set num_servers or "
                "ClusterConfig.num_servers)"
            )
        if server_mem_bytes <= 0:
            raise ConfigError("server_mem_bytes must be positive")
        self.spark = spark
        self.partitions_per_server = partitions_per_server
        self.checkpoint_dir = checkpoint_dir.rstrip("/")
        self.checkpoint_interval = checkpoint_interval
        containers = spark.resource_manager.request_many(
            "ps-server", num_servers, server_mem_bytes
        )
        self.servers: List[PSServer] = [
            PSServer(i, c, cluster.cost_model, spark.hdfs,
                     tracer=spark.tracer)
            for i, c in enumerate(containers)
        ]
        for server in self.servers:
            spark.rpc.register(server.id, server)
        self.agent = PSAgent(self)
        self.sync = SyncController(self, sync_mode)
        self.master = PSMaster(self)
        self._metas: Dict[str, MatrixMeta] = {}
        self._handles: Dict[str, object] = {}
        self._pull_caches: Dict[str, object] = {}
        self._stopped = False
        #: When True (default), a failed RPC triggers master recovery and
        #: one retry instead of failing the caller (Sec. III-B).
        self.auto_recover = True
        #: Recovery consistency mode used by auto-recovery: "relaxed" for
        #: GE/GNN-style tolerance, "strict" for PageRank-style rollback.
        self.recovery_mode = "relaxed"
        #: Completed algorithm iterations, maintained by the driver loop
        #: via :meth:`start_iterations` / :meth:`complete_iteration`.
        self.progress = 0
        #: Bumped on every master recovery; lets a driver loop detect that
        #: a recovery happened while a stage was in flight.
        self.recovery_generation = 0
        #: Bumped only on *strict* recoveries (checkpoint rollbacks) — the
        #: signal that in-flight iteration work must be redone.
        self.rollback_generation = 0
        #: When True, :meth:`barrier` leaves periodic checkpointing to
        #: :meth:`complete_iteration` (iteration-driven policy).
        self._iteration_driven = False
        #: ``progress`` value captured by the most recent checkpoint.
        self._ckpt_progress = 0
        spark.metrics.set_gauge(PS_SERVERS_TOTAL_G, float(num_servers))
        self.update_liveness_gauge()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Number of PS server containers."""
        return len(self.servers)

    def server_endpoint(self, index: int) -> str:
        """RPC endpoint name of server ``index``."""
        return self.servers[index].id

    def matrix_names(self) -> List[str]:
        """Names of every registered model."""
        return sorted(self._metas)

    def matrix_meta(self, name: str) -> MatrixMeta:
        """Metadata of one model."""
        meta = self._metas.get(name)
        if meta is None:
            raise MatrixNotFoundError(name)
        return meta

    # ------------------------------------------------------------------
    # model factories
    # ------------------------------------------------------------------

    def _register(self, meta: MatrixMeta, handle: object) -> None:
        if meta.name in self._metas:
            raise ConfigError(f"matrix {meta.name!r} already exists")
        self._metas[meta.name] = meta
        self._handles[meta.name] = handle
        for pid in range(meta.num_partitions):
            self.servers[meta.server_of(pid)].create_partition(meta, pid)

    def _default_partitions(self, size: int) -> int:
        return max(1, min(size, self.num_servers * self.partitions_per_server))

    def create_matrix(self, name: str, rows: int, cols: int = 1,
                      dtype: np.dtype = np.float64, *,
                      partition: str = "range", axis: int = 0,
                      storage: str = "dense", init: float = 0.0,
                      optimizer: Optimizer | None = None,
                      num_partitions: int | None = None) -> PSMatrix:
        """Create a row-partitioned matrix on the PS (Listing 1's
        ``PSContext.matrix(row, col, DataType)``)."""
        if storage not in STORAGE_KINDS:
            raise ConfigError(f"unknown storage {storage!r}")
        if axis not in (0, 1):
            raise ConfigError("axis must be 0 or 1")
        key_space = rows if axis == 0 else cols
        partitioner = make_ps_partitioner(
            partition, key_space,
            num_partitions or self._default_partitions(key_space),
        )
        meta = MatrixMeta(
            name=name, rows=rows, cols=cols, dtype=np.dtype(dtype),
            axis=axis, storage=storage, partitioner=partitioner, init=init,
            optimizer=optimizer, num_servers=self.num_servers,
        )
        handle: PSMatrix
        if axis == 1:
            handle = PSEmbedding(self, meta)
        elif cols == 1:
            handle = PSVector(self, meta)
        else:
            handle = PSMatrix(self, meta)
        self._register(meta, handle)
        return handle

    def create_vector(self, name: str, size: int,
                      dtype: np.dtype = np.float64, *,
                      partition: str = "range", init: float = 0.0,
                      num_partitions: int | None = None) -> PSVector:
        """Create a PS vector (1-column dense matrix)."""
        return self.create_matrix(
            name, size, 1, dtype, partition=partition, init=init,
            num_partitions=num_partitions,
        )

    def create_embedding(self, name: str, rows: int, dim: int,
                         dtype: np.dtype = np.float32, *,
                         optimizer: Optimizer | None = None,
                         num_partitions: int | None = None) -> PSEmbedding:
        """Create a column-sharded embedding matrix (the LINE layout of
        Sec. IV-D: same dimensions of all vectors co-located per server)."""
        return self.create_matrix(
            name, rows, dim, dtype, partition="range", axis=1,
            storage="column", optimizer=optimizer,
            num_partitions=num_partitions
            or max(1, min(dim, self.num_servers)),
        )

    def create_neighbor_table(self, name: str, num_vertices: int, *,
                              partition: str = "hash",
                              num_partitions: int | None = None
                              ) -> PSNeighborTable:
        """Create a PS-resident neighbor table keyed by vertex id."""
        partitioner = make_ps_partitioner(
            partition, num_vertices,
            num_partitions or self._default_partitions(num_vertices),
        )
        meta = MatrixMeta(
            name=name, rows=num_vertices, cols=1, dtype=np.dtype(np.int64),
            axis=0, storage="neighbor", partitioner=partitioner,
            num_servers=self.num_servers,
        )
        handle = PSNeighborTable(self, meta)
        self._register(meta, handle)
        return handle

    def describe(self) -> str:
        """Human-readable layout report: every model, its shape, storage,
        partitioning and per-server memory (the PSContext "partition
        layout" the paper says agents consult)."""
        lines = [
            f"PSContext: {self.num_servers} servers, "
            f"{len(self._metas)} models"
        ]
        for name in self.matrix_names():
            meta = self._metas[name]
            lines.append(
                f"  {name}: {meta.rows}x{meta.cols} {meta.dtype} "
                f"storage={meta.storage} axis={meta.axis} "
                f"partitions={meta.num_partitions} "
                f"({type(meta.partitioner).__name__})"
            )
        for server in self.servers:
            mem = server.container.memory
            state = "alive" if server.container.alive else "DEAD"
            lines.append(
                f"  {server.id}: {state}, "
                f"{mem.used:,} / {mem.capacity:,} B used, "
                f"{len(server.held_partitions())} partitions"
            )
        return "\n".join(lines)

    def matrix(self, name: str) -> object:
        """Look up an existing model handle by name."""
        handle = self._handles.get(name)
        if handle is None:
            raise MatrixNotFoundError(name)
        return handle

    def enable_pull_cache(self, name: str, staleness: int = 0,
                          capacity: Optional[int] = None):
        """Turn on agent-side pull caching for one matrix.

        Entries are served for ``staleness`` sync epochs after the pull
        (0 = valid only within the current epoch; every barrier expires
        them).  ``capacity`` optionally bounds the cache to that many
        entries with LRU eviction; the default keeps it unbounded.
        Returns the :class:`repro.ps.cache.PullCache` so callers can read
        its hit statistics.
        """
        from repro.ps.cache import PullCache

        self.matrix_meta(name)  # raises on unknown matrix
        cache = PullCache(staleness=staleness, capacity=capacity,
                          metrics=self.spark.metrics)
        self._pull_caches[name] = cache
        return cache

    def pull_cache(self, name: str):
        """The matrix's pull cache, or ``None`` when caching is off."""
        return self._pull_caches.get(name)

    def clear_pull_caches(self) -> None:
        """Drop every agent-side cache (after recovery rollbacks)."""
        for cache in self._pull_caches.values():
            cache.clear()

    def drop_matrix(self, name: str) -> None:
        """Remove a model from every server."""
        meta = self.matrix_meta(name)
        for pid in range(meta.num_partitions):
            server = self.servers[meta.server_of(pid)]
            if server.container.alive:
                server.drop_matrix(name)
        del self._metas[name]
        del self._handles[name]
        self._pull_caches.pop(name, None)

    # ------------------------------------------------------------------
    # checkpointing & recovery
    # ------------------------------------------------------------------

    def checkpoint_path(self, name: str, pid: int) -> str:
        """HDFS path of one partition's checkpoint."""
        return f"{self.checkpoint_dir}/{name}/part-{pid:05d}"

    def checkpoint_matrix(self, name: str) -> int:
        """Snapshot every partition of one model to HDFS; bytes written."""
        meta = self.matrix_meta(name)
        total = 0
        for pid in range(meta.num_partitions):
            server = self.servers[meta.server_of(pid)]
            total += server.checkpoint(
                name, pid, self.checkpoint_path(name, pid)
            )
        self.spark.metrics.inc(PS_CHECKPOINTS)
        self.spark.metrics.inc(PS_CHECKPOINT_BYTES, total)
        return total

    def checkpoint_all(self) -> int:
        """Checkpoint every registered model; total bytes written."""
        return sum(self.checkpoint_matrix(n) for n in self.matrix_names())

    def kill_server(self, index: int) -> None:
        """Failure injection: kill one PS server (Table II)."""
        server = self.servers[index]
        self.spark.resource_manager.kill(server.container)
        server.wipe()
        self.spark.rpc.kill(server.id)
        self.update_liveness_gauge()

    def update_liveness_gauge(self) -> None:
        """Refresh the server-liveness gauge (kills, recoveries).

        The telemetry collector's availability SLO probes this gauge at
        sim-clock ticks: any tick where ``alive < total`` burns error
        budget, which is what turns a kill-server fault into an alert.
        """
        self.spark.metrics.set_gauge(
            PS_SERVERS_ALIVE_G,
            float(sum(1 for s in self.servers if s.container.alive)),
        )

    def recover(self, mode: str = "relaxed") -> List[int]:
        """Detect and recover dead servers (see :class:`PSMaster`)."""
        return self.master.recover(mode)

    def note_recovery(self, mode: str, dead: List[int]) -> None:
        """Master callback after a completed recovery: bump generations.

        Strict recoveries roll the model back to the last checkpoint, so
        they also reset :attr:`progress` to the checkpointed iteration and
        bump :attr:`rollback_generation` — a driver loop comparing that
        counter around a stage knows it must redo the iteration.
        """
        self.recovery_generation += 1
        self.spark.metrics.inc(PS_RECOVERIES, len(dead))
        if mode == "strict":
            self.rollback_generation += 1
            self.progress = self._ckpt_progress

    def rollback(self) -> None:
        """Restore every model partition from its last checkpoint.

        Called by recovery-aware driver loops after a mid-iteration strict
        recovery: tasks that kept running *after* the master restored the
        checkpoint may have pushed partial updates into it, so the loop
        re-restores a clean snapshot before redoing the iteration.
        """
        for name in self.matrix_names():
            meta = self.matrix_meta(name)
            for pid in range(meta.num_partitions):
                path = self.checkpoint_path(name, pid)
                if not self.spark.hdfs.exists(path):
                    raise CheckpointNotFoundError(
                        f"no checkpoint for {name}[{pid}] at {path}"
                    )
                self.servers[meta.server_of(pid)].restore_partition(
                    meta, pid, path
                )
        self.clear_pull_caches()
        self.progress = self._ckpt_progress
        self.spark.metrics.inc(PS_ROLLBACKS)

    # ------------------------------------------------------------------
    # iteration control
    # ------------------------------------------------------------------

    def start_iterations(self) -> None:
        """Switch to the iteration-driven checkpoint policy.

        Recovery-aware algorithm loops call this once before iterating:
        it resets :attr:`progress`, writes the baseline checkpoint (when
        ``checkpoint_interval > 0``) so a fault in iteration 1 has a
        consistent snapshot to roll back to, and moves periodic
        checkpointing from :meth:`barrier` (every Nth sync epoch, which
        can capture mid-iteration state) to :meth:`complete_iteration`
        (always a consistent post-iteration boundary).
        """
        self._iteration_driven = True
        self.progress = 0
        self._ckpt_progress = 0
        if self.checkpoint_interval > 0:
            self._checkpoint_with_recovery()

    def complete_iteration(self) -> None:
        """Mark one algorithm iteration done; maybe checkpoint.

        With ``checkpoint_interval > 0`` every Nth completed iteration
        snapshots every model, establishing the rollback boundary strict
        recovery restores to.
        """
        self.progress += 1
        if (self.checkpoint_interval > 0
                and self.progress % self.checkpoint_interval == 0):
            self._checkpoint_with_recovery()
            self._ckpt_progress = self.progress

    def _checkpoint_with_recovery(self) -> None:
        """Checkpoint all models, recovering once if a server is down."""
        try:
            self.checkpoint_all()
        except (RpcError, ContainerLostError):
            if not self.auto_recover:
                raise
            self.master.recover(self.recovery_mode)
            self.checkpoint_all()

    def barrier(self) -> float:
        """End-of-iteration barrier (BSP) or epoch tick (ASP).

        With ``checkpoint_interval > 0``, every Nth barrier also writes the
        periodic HDFS checkpoint of every registered model — unless the
        driver switched to the iteration-driven policy via
        :meth:`start_iterations`, in which case checkpoints are written at
        iteration boundaries by :meth:`complete_iteration` instead.
        """
        t = self.sync.barrier()
        if (not self._iteration_driven
                and self.checkpoint_interval > 0
                and self.sync.epoch % self.checkpoint_interval == 0):
            self.checkpoint_all()
        self.spark.notify_tick(self.spark.sim_time())
        return t

    def stop(self) -> None:
        """Release server containers and unregister endpoints."""
        if self._stopped:
            return
        self._stopped = True
        for server in self.servers:
            self.spark.rpc.unregister(server.id)
            self.spark.resource_manager.release(server.container)
