"""Agent-side pull cache with bounded staleness.

Angel's PS agents cache pulled model partitions so that repeated reads of
slow-changing values (out-degrees, converged ranks, frozen neighbor tables)
skip the network.  The cache is epoch-scoped: entries are valid for
``staleness`` sync epochs after the pull, then expire — under BSP with
``staleness=0`` every barrier invalidates everything, recovering exact
semantics; larger staleness trades freshness for traffic, the same dial as
SSP-style training.

Opt-in per matrix via ``PSContext.enable_pull_cache(name, staleness=...)``;
writes through the same agent invalidate the writer's cached rows so a
worker always sees its own updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass
class CacheStats:
    """Hit/miss counters for one cached matrix."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of key lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PullCache:
    """Per-matrix key -> (value, epoch) cache.

    Args:
        staleness: entries pulled at epoch ``e`` are served until epoch
            ``e + staleness`` (inclusive).
    """

    staleness: int = 0
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: Dict[Tuple[int, Optional[int]], Tuple[np.ndarray, int]] = (
        field(default_factory=dict)
    )

    def lookup(self, keys: np.ndarray, col: Optional[int],
               epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``keys`` into (hit_mask, values_for_hits).

        Returns:
            ``(mask, values)``: ``mask[i]`` True when ``keys[i]`` was served
            from cache; ``values`` is aligned with ``keys`` (undefined rows
            where the mask is False).
        """
        mask = np.zeros(len(keys), dtype=bool)
        values: list = [None] * len(keys)
        for i, k in enumerate(keys.tolist()):
            entry = self._entries.get((int(k), col))
            if entry is None:
                self.stats.misses += 1
                continue
            value, pulled_at = entry
            if epoch - pulled_at > self.staleness:
                del self._entries[(int(k), col)]
                self.stats.misses += 1
                continue
            mask[i] = True
            values[i] = value
            self.stats.hits += 1
        return mask, values

    def store(self, keys: np.ndarray, col: Optional[int],
              values: np.ndarray, epoch: int) -> None:
        """Cache freshly pulled rows."""
        for k, v in zip(keys.tolist(), values):
            self._entries[(int(k), col)] = (np.copy(v), epoch)

    def invalidate(self, keys: np.ndarray) -> None:
        """Drop cached rows for written keys (all columns)."""
        key_set = set(keys.tolist())
        doomed = [kc for kc in self._entries if kc[0] in key_set]
        for kc in doomed:
            del self._entries[kc]

    def clear(self) -> None:
        """Drop everything (e.g. after a strict recovery rollback)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
