"""Agent-side pull cache with bounded staleness and optional capacity.

Angel's PS agents cache pulled model partitions so that repeated reads of
slow-changing values (out-degrees, converged ranks, frozen neighbor tables)
skip the network.  The cache is epoch-scoped: entries are valid for
``staleness`` sync epochs after the pull, then expire — under BSP with
``staleness=0`` every barrier invalidates everything, recovering exact
semantics; larger staleness trades freshness for traffic, the same dial as
SSP-style training.

Capacity is a second, independent bound: with ``capacity`` set the cache
keeps at most that many entries and evicts least-recently-used ones
(lookup hits and fresh stores both refresh recency).  The default
(``capacity=None``) keeps the historical unbounded behavior for training
loops; the serving plane's hot-key cache always bounds it.  Evictions are
counted in :class:`CacheStats` and, when a metrics registry is attached,
in the ``ps.cache.evictions`` counter.

Opt-in per matrix via ``PSContext.enable_pull_cache(name, staleness=...,
capacity=...)``; writes through the same agent invalidate the writer's
cached rows so a worker always sees its own updates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.metrics import PS_CACHE_EVICTIONS, MetricsRegistry


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cached matrix."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of key lookups served from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class PullCache:
    """Per-matrix key -> (value, epoch) cache.

    Args:
        staleness: entries pulled at epoch ``e`` are served until epoch
            ``e + staleness`` (inclusive).
        capacity: maximum entries kept; ``None`` (default) is unbounded.
            When full, the least-recently-used entry is evicted.
        metrics: optional registry; evictions increment
            :data:`~repro.common.metrics.PS_CACHE_EVICTIONS`.
    """

    staleness: int = 0
    capacity: Optional[int] = None
    metrics: Optional[MetricsRegistry] = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: "OrderedDict[Tuple[int, Optional[int]], Tuple[np.ndarray, int]]" = (
        field(default_factory=OrderedDict)
    )
    # Per-key column index: key -> set of cached columns.  Invalidation
    # on write consults this instead of scanning every entry, making a
    # push O(keys written) rather than O(cache size).
    _index: "Dict[int, set]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError("capacity must be >= 1 (or None)")

    def lookup(self, keys: np.ndarray, col: Optional[int],
               epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        """Split ``keys`` into (hit_mask, values_for_hits).

        Returns:
            ``(mask, values)``: ``mask[i]`` True when ``keys[i]`` was served
            from cache; ``values`` is aligned with ``keys`` (undefined rows
            where the mask is False).  Hits refresh LRU recency.
        """
        mask = np.zeros(len(keys), dtype=bool)
        values: list = [None] * len(keys)
        for i, k in enumerate(keys.tolist()):
            entry = self._entries.get((int(k), col))
            if entry is None:
                self.stats.misses += 1
                continue
            value, pulled_at = entry
            if epoch - pulled_at > self.staleness:
                self._discard((int(k), col))
                self.stats.misses += 1
                continue
            mask[i] = True
            values[i] = value
            self.stats.hits += 1
            if self.capacity is not None:
                self._entries.move_to_end((int(k), col))
        return mask, values

    def store(self, keys: np.ndarray, col: Optional[int],
              values: np.ndarray, epoch: int) -> None:
        """Cache freshly pulled rows (evicting LRU entries when bounded)."""
        for k, v in zip(keys.tolist(), values):
            kc = (int(k), col)
            self._entries[kc] = (np.copy(v), epoch)
            self._entries.move_to_end(kc)
            self._index.setdefault(int(k), set()).add(col)
        if self.capacity is not None:
            evicted = 0
            while len(self._entries) > self.capacity:
                kc, _ = self._entries.popitem(last=False)
                self._unindex(kc)
                evicted += 1
            if evicted:
                self.stats.evictions += evicted
                if self.metrics is not None:
                    self.metrics.inc(PS_CACHE_EVICTIONS, evicted)

    def invalidate(self, keys: np.ndarray) -> None:
        """Drop cached rows for written keys (all columns).

        O(keys written): the per-key column index names the exact entries
        to delete, so pushing a few rows never scans a large cache.
        """
        for k in keys.tolist():
            for col in self._index.pop(int(k), ()):
                del self._entries[(int(k), col)]

    def _discard(self, kc: Tuple[int, Optional[int]]) -> None:
        """Delete one entry and unindex it."""
        del self._entries[kc]
        self._unindex(kc)

    def _unindex(self, kc: Tuple[int, Optional[int]]) -> None:
        cols = self._index.get(kc[0])
        if cols is not None:
            cols.discard(kc[1])
            if not cols:
                del self._index[kc[0]]

    def clear(self) -> None:
        """Drop everything (e.g. after a strict recovery rollback)."""
        self._entries.clear()
        self._index.clear()

    def __len__(self) -> int:
        return len(self._entries)
