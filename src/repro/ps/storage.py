"""Server-side storage structures of the parameter server.

"PS supports different data structures, e.g., sparse/dense vector,
sparse/dense matrix, CSR, vertex (with property), and neighbor table"
(Sec. III-A).  Each class here backs the partitions of one PS matrix on one
server:

* :class:`DenseRowStore` — dense rows for the keys a partition owns
  (vectors and row-partitioned matrices: PageRank state, K-core estimates,
  GraphSage features).
* :class:`SparseRowStore` — rows materialized on first touch (vertex
  properties over a huge sparse id space).
* :class:`ColumnShardStore` — a column slice of *all* rows (column-
  partitioned embeddings for LINE, GNN weight matrices), enabling
  server-side partial dot products.
* :class:`NeighborTableStore` — adjacency arrays per vertex, with optional
  CSR compaction for read-mostly phases (common neighbor, triangle count).

Every store reports ``nbytes`` so the owning server can charge its memory
grant, and supports ``snapshot``/``restore`` for HDFS checkpoints.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.common.errors import PSError


class Store:
    """Interface shared by all server-side stores."""

    @property
    def nbytes(self) -> int:
        """Logical bytes currently held."""
        raise NotImplementedError

    def snapshot(self) -> object:
        """Picklable deep snapshot for checkpointing."""
        raise NotImplementedError

    def restore(self, state: object) -> None:
        """Restore from a snapshot produced by :meth:`snapshot`."""
        raise NotImplementedError


class DenseRowStore(Store):
    """Dense rows for an explicit, sorted set of keys.

    Args:
        keys: ascending global keys owned by this partition.
        cols: row width (1 for vectors).
        dtype: element type.
        init: initial fill value.
    """

    def __init__(self, keys: np.ndarray, cols: int = 1,
                 dtype: np.dtype = np.float64, init: float = 0.0) -> None:
        self.keys = np.ascontiguousarray(keys, dtype=np.int64)
        self.cols = cols
        self.array = np.full((len(self.keys), cols), init, dtype=dtype)

    def _locate(self, keys: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.keys, keys)
        if (idx >= len(self.keys)).any() or (self.keys[idx] != keys).any():
            missing = keys[(idx >= len(self.keys)) | (self.keys[np.minimum(idx, len(self.keys) - 1)] != keys)]
            raise PSError(f"keys not in partition: {missing[:5]}...")
        return idx

    def get_rows(self, keys: np.ndarray,
                 col: int | None = None) -> np.ndarray:
        """Rows for ``keys``; a single column when ``col`` is given."""
        idx = self._locate(keys)
        if col is None:
            return self.array[idx].copy()
        return self.array[idx, col].copy()

    def inc_rows(self, keys: np.ndarray, deltas: np.ndarray,
                 col: int | None = None) -> None:
        """Add ``deltas`` into the rows for ``keys`` (duplicates allowed)."""
        idx = self._locate(keys)
        if col is None:
            np.add.at(self.array, idx, deltas)
        else:
            np.add.at(self.array[:, col], idx, deltas)

    def set_rows(self, keys: np.ndarray, values: np.ndarray,
                 col: int | None = None) -> None:
        """Overwrite rows for ``keys``."""
        idx = self._locate(keys)
        if col is None:
            self.array[idx] = values
        else:
            self.array[idx, col] = values

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes + self.keys.nbytes)

    def snapshot(self) -> object:
        return {"keys": self.keys.copy(), "array": self.array.copy()}

    def restore(self, state: object) -> None:
        self.keys = state["keys"].copy()
        self.array = state["array"].copy()
        self.cols = self.array.shape[1]


class SparseRowStore(Store):
    """Rows materialized on first write; reads of untouched rows are zero."""

    def __init__(self, cols: int = 1, dtype: np.dtype = np.float64) -> None:
        self.cols = cols
        self.dtype = np.dtype(dtype)
        self.rows: Dict[int, np.ndarray] = {}

    def get_rows(self, keys: np.ndarray,
                 col: int | None = None) -> np.ndarray:
        out = np.zeros((len(keys), self.cols), dtype=self.dtype)
        for i, k in enumerate(keys.tolist()):
            row = self.rows.get(k)
            if row is not None:
                out[i] = row
        if col is None:
            return out
        return out[:, col]

    def inc_rows(self, keys: np.ndarray, deltas: np.ndarray,
                 col: int | None = None) -> None:
        deltas = np.atleast_1d(deltas)
        for i, k in enumerate(keys.tolist()):
            row = self.rows.get(k)
            if row is None:
                row = np.zeros(self.cols, dtype=self.dtype)
                self.rows[k] = row
            if col is None:
                row += deltas[i]
            else:
                row[col] += deltas[i]

    def set_rows(self, keys: np.ndarray, values: np.ndarray,
                 col: int | None = None) -> None:
        values = np.atleast_1d(values)
        for i, k in enumerate(keys.tolist()):
            row = self.rows.get(k)
            if row is None:
                row = np.zeros(self.cols, dtype=self.dtype)
                self.rows[k] = row
            if col is None:
                row[:] = values[i]
            else:
                row[col] = values[i]

    @property
    def nbytes(self) -> int:
        return len(self.rows) * (8 + self.cols * self.dtype.itemsize)

    def snapshot(self) -> object:
        return {k: v.copy() for k, v in self.rows.items()}

    def restore(self, state: object) -> None:
        self.rows = {k: v.copy() for k, v in state.items()}


class ColumnShardStore(Store):
    """A column slice of every row (axis=1 partitioning).

    The paper's LINE implementation "partitions the embedding vectors and
    context vectors by column ... so that we can calculate partial dot
    products on PS and merge them on the executor" (Sec. IV-D).  A shard
    holds columns ``col_keys`` for all ``rows`` rows.
    """

    def __init__(self, rows: int, col_keys: np.ndarray,
                 dtype: np.dtype = np.float32, init: float = 0.0) -> None:
        self.rows = rows
        self.col_keys = np.ascontiguousarray(col_keys, dtype=np.int64)
        self.array = np.full((rows, len(self.col_keys)), init, dtype=dtype)

    def get_row_slices(self, row_keys: np.ndarray) -> np.ndarray:
        """The local column slice of the requested rows."""
        return self.array[row_keys].copy()

    def inc_row_slices(self, row_keys: np.ndarray,
                       deltas: np.ndarray) -> None:
        """Add into the local slice of the requested rows."""
        np.add.at(self.array, row_keys, deltas)

    def set_row_slices(self, row_keys: np.ndarray,
                       values: np.ndarray) -> None:
        """Overwrite the local slice of the requested rows."""
        self.array[row_keys] = values

    def partial_dot(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Partial dot products ``sum_c A[left, c] * A[right, c]`` per pair."""
        return np.einsum(
            "ij,ij->i", self.array[left], self.array[right]
        ).astype(np.float64)

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes + self.col_keys.nbytes)

    def snapshot(self) -> object:
        return {"col_keys": self.col_keys.copy(), "array": self.array.copy()}

    def restore(self, state: object) -> None:
        self.col_keys = state["col_keys"].copy()
        self.array = state["array"].copy()
        self.rows = self.array.shape[0]


class NeighborTableStore(Store):
    """Adjacency arrays keyed by vertex, with optional CSR compaction.

    "If the algorithm needs to get the adjacent vertices of a vertex
    frequently, the neighbor tables are stored on the PS" (Sec. III-A).
    """

    def __init__(self) -> None:
        self.tables: Dict[int, np.ndarray] = {}
        self._nbytes = 0
        # CSR form, built by compact(): sorted vertex ids + indptr + indices.
        self._csr_vertices: np.ndarray | None = None
        self._csr_indptr: np.ndarray | None = None
        self._csr_indices: np.ndarray | None = None

    def _decompact(self) -> None:
        """Reopen CSR form into the mutable dict form before a write.

        Compaction freezes the adjacency into CSR arrays and clears the
        dict; any mutation must first rebuild the dict from the CSR or
        the frozen data would be silently lost (a write to a compacted
        store previously merged against an empty dict).
        """
        if self._csr_vertices is None:
            return
        tables: Dict[int, np.ndarray] = {}
        for i, v in enumerate(self._csr_vertices.tolist()):
            tables[int(v)] = self._csr_indices[
                self._csr_indptr[i]:self._csr_indptr[i + 1]
            ].copy()
        self.tables = tables
        self._csr_vertices = None
        self._csr_indptr = None
        self._csr_indices = None
        self._nbytes = sum(v.nbytes + 8 for v in self.tables.values())

    def append_neighbors(self, vertex: int, neighbors: np.ndarray) -> None:
        """Merge ``neighbors`` into the table of ``vertex``."""
        self._decompact()
        neighbors = np.asarray(neighbors, dtype=np.int64)
        old = self.tables.get(vertex)
        if old is None:
            merged = np.unique(neighbors)
        else:
            merged = np.union1d(old, neighbors)
            self._nbytes -= old.nbytes + 8
        self.tables[vertex] = merged
        self._nbytes += merged.nbytes + 8

    def remove_neighbors(self, vertex: int, neighbors: np.ndarray) -> None:
        """Subtract ``neighbors`` from the table of ``vertex``.

        Removing absent neighbors is a no-op (set semantics, mirroring
        the union merge of :meth:`append_neighbors`); a table emptied by
        the removal is deleted entirely.
        """
        self._decompact()
        old = self.tables.get(vertex)
        if old is None:
            return
        kept = np.setdiff1d(old, np.asarray(neighbors, dtype=np.int64))
        self._nbytes -= old.nbytes + 8
        if len(kept):
            self.tables[vertex] = kept
            self._nbytes += kept.nbytes + 8
        else:
            del self.tables[vertex]

    def drop_vertices(self, vertices: np.ndarray) -> None:
        """Delete the adjacency tables of ``vertices`` (if present)."""
        self._decompact()
        for v in np.asarray(vertices, dtype=np.int64).tolist():
            old = self.tables.pop(int(v), None)
            if old is not None:
                self._nbytes -= old.nbytes + 8

    def get_neighbors(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Sorted neighbor arrays for each requested vertex."""
        if self._csr_vertices is not None:
            out = []
            idx = np.searchsorted(self._csr_vertices, vertices)
            for i, v in zip(idx.tolist(), np.asarray(vertices).tolist()):
                if (i < len(self._csr_vertices)
                        and self._csr_vertices[i] == v):
                    out.append(
                        self._csr_indices[
                            self._csr_indptr[i]:self._csr_indptr[i + 1]
                        ]
                    )
                else:
                    out.append(np.empty(0, dtype=np.int64))
            return out
        empty = np.empty(0, dtype=np.int64)
        return [self.tables.get(int(v), empty) for v in vertices]

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        """Neighbor counts per requested vertex."""
        return np.asarray(
            [len(n) for n in self.get_neighbors(vertices)], dtype=np.int64
        )

    def num_vertices(self) -> int:
        """Number of vertices with a stored table."""
        if self._csr_vertices is not None:
            return len(self._csr_vertices)
        return len(self.tables)

    def compact(self) -> None:
        """Freeze into CSR form (read-optimized; writes reopen dict form)."""
        vertices = np.asarray(sorted(self.tables), dtype=np.int64)
        indptr = np.zeros(len(vertices) + 1, dtype=np.int64)
        chunks = []
        for i, v in enumerate(vertices.tolist()):
            t = self.tables[v]
            indptr[i + 1] = indptr[i] + len(t)
            chunks.append(t)
        indices = (np.concatenate(chunks) if chunks
                   else np.empty(0, dtype=np.int64))
        self._csr_vertices = vertices
        self._csr_indptr = indptr
        self._csr_indices = indices
        self._nbytes = int(
            vertices.nbytes + indptr.nbytes + indices.nbytes
        )
        self.tables = {}

    @property
    def is_compacted(self) -> bool:
        """True when the store is in CSR form."""
        return self._csr_vertices is not None

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def snapshot(self) -> object:
        if self._csr_vertices is not None:
            return {
                "csr": (
                    self._csr_vertices.copy(),
                    self._csr_indptr.copy(),
                    self._csr_indices.copy(),
                )
            }
        return {"tables": {k: v.copy() for k, v in self.tables.items()}}

    def restore(self, state: object) -> None:
        if "csr" in state:
            self._csr_vertices, self._csr_indptr, self._csr_indices = (
                a.copy() for a in state["csr"]
            )
            self.tables = {}
            self._nbytes = int(
                self._csr_vertices.nbytes + self._csr_indptr.nbytes
                + self._csr_indices.nbytes
            )
        else:
            self.tables = {k: v.copy() for k, v in state["tables"].items()}
            self._csr_vertices = None
            self._nbytes = sum(v.nbytes + 8 for v in self.tables.values())
