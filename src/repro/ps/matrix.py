"""Client-side handles for PS-resident models.

These are the objects algorithm code holds: thin, picklable-free views that
route every operation through the PS agent.  Mirrors the paper's
``PSContext.matrix(row, col, DataType)`` handle from Listing 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

import numpy as np

from repro.ps.meta import MatrixMeta
from repro.ps.psfunc import PartialDot, PsFunc, RankOneUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ps.context import PSContext


class PSMatrix:
    """Handle to a row-partitioned (axis=0) matrix on the PS."""

    def __init__(self, psctx: "PSContext", meta: MatrixMeta) -> None:
        self.psctx = psctx
        self.meta = meta

    @property
    def name(self) -> str:
        """Matrix name."""
        return self.meta.name

    @property
    def shape(self) -> tuple:
        """(rows, cols)."""
        return (self.meta.rows, self.meta.cols)

    def pull(self, keys: np.ndarray, col: int | None = None) -> np.ndarray:
        """Rows (or one column of them) for ``keys``."""
        return self.psctx.agent.pull(self.meta, keys, col)

    def push(self, keys: np.ndarray, deltas: np.ndarray,
             col: int | None = None) -> None:
        """Increment rows for ``keys``."""
        self.psctx.agent.push(self.meta, keys, deltas, col)

    def set(self, keys: np.ndarray, values: np.ndarray,
            col: int | None = None) -> None:
        """Overwrite rows for ``keys``."""
        self.psctx.agent.set(self.meta, keys, values, col)

    def pull_batch(self, keys: np.ndarray, col: int | None = None):
        """Rows for ``keys`` as a columnar RecordBatch (keys + values)."""
        return self.psctx.agent.pull_batch(self.meta, keys, col)

    def push_batch(self, batch, col: int | None = None) -> None:
        """Increment rows from a RecordBatch's key/value columns."""
        self.psctx.agent.push_batch(self.meta, batch, col)

    def set_batch(self, batch, col: int | None = None) -> None:
        """Overwrite rows from a RecordBatch's key/value columns."""
        self.psctx.agent.set_batch(self.meta, batch, col)

    def psfunc(self, func: PsFunc) -> Any:
        """Run a server-side UDF over every partition; merged result."""
        return self.psctx.agent.psfunc(self.meta, func)

    def apply_gradients(self, grad: np.ndarray) -> None:
        """Ship a full-shape gradient to the server-side optimizer."""
        self.psctx.agent.apply_gradients(self.meta, grad)

    def to_numpy(self) -> np.ndarray:
        """Assemble the whole matrix at the caller (driver convenience)."""
        return self.psctx.agent.pull_all(self.meta)

    def checkpoint(self) -> None:
        """Snapshot every partition to HDFS."""
        self.psctx.checkpoint_matrix(self.meta.name)


class PSVector(PSMatrix):
    """Handle to a 1-column matrix; pulls return 1-d arrays."""

    def pull(self, keys: np.ndarray, col: int | None = 0) -> np.ndarray:
        return self.psctx.agent.pull(self.meta, keys, col)

    def push(self, keys: np.ndarray, deltas: np.ndarray,
             col: int | None = 0) -> None:
        self.psctx.agent.push(self.meta, keys, deltas, col)

    def set(self, keys: np.ndarray, values: np.ndarray,
            col: int | None = 0) -> None:
        self.psctx.agent.set(self.meta, keys, values, col)

    def pull_batch(self, keys: np.ndarray, col: int | None = 0):
        return self.psctx.agent.pull_batch(self.meta, keys, col)

    def push_batch(self, batch, col: int | None = 0) -> None:
        self.psctx.agent.push_batch(self.meta, batch, col)

    def set_batch(self, batch, col: int | None = 0) -> None:
        self.psctx.agent.set_batch(self.meta, batch, col)

    def to_numpy(self) -> np.ndarray:
        return self.psctx.agent.pull_all(self.meta)[:, 0]


class PSEmbedding(PSMatrix):
    """Handle to a column-sharded (axis=1) matrix.

    Supports the LINE path of Sec. IV-D: server-side partial dot products
    and rank-one updates, so full embedding rows never cross the network
    during training.
    """

    def pull_rows(self, row_keys: np.ndarray) -> np.ndarray:
        """Full embedding rows (concatenated column slices)."""
        return self.psctx.agent.pull_rows_full(self.meta, row_keys)

    def push_rows(self, row_keys: np.ndarray, deltas: np.ndarray) -> None:
        """Increment full embedding rows."""
        self.psctx.agent.push_rows_full(self.meta, row_keys, deltas)

    def set_rows(self, row_keys: np.ndarray, values: np.ndarray) -> None:
        """Overwrite full embedding rows."""
        self.psctx.agent.set_rows_full(self.meta, row_keys, values)

    def dot(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Server-side dot products ``A[left_i] . A[right_i]`` per pair."""
        return self.psctx.agent.psfunc(self.meta, PartialDot(left, right))

    def rank_one_update(self, left: np.ndarray, right: np.ndarray,
                        coeffs: np.ndarray) -> None:
        """Server-side symmetric rank-one SGD update per pair."""
        self.psctx.agent.psfunc(
            self.meta, RankOneUpdate(left, right, coeffs)
        )


class PSNeighborTable:
    """Handle to a PS-resident adjacency store (Sec. III-A, IV-B)."""

    def __init__(self, psctx: "PSContext", meta: MatrixMeta) -> None:
        self.psctx = psctx
        self.meta = meta

    @property
    def name(self) -> str:
        """Table name."""
        return self.meta.name

    def push(self, vertices: np.ndarray,
             tables: List[np.ndarray]) -> None:
        """Merge neighbor arrays into the PS tables."""
        self.psctx.agent.push_neighbors(self.meta, vertices, tables)

    def remove(self, vertices: np.ndarray,
               tables: List[np.ndarray]) -> None:
        """Subtract neighbor arrays from the PS tables (set semantics)."""
        self.psctx.agent.remove_neighbors(self.meta, vertices, tables)

    def drop(self, vertices: np.ndarray) -> None:
        """Delete the adjacency tables of ``vertices`` entirely."""
        self.psctx.agent.drop_vertices(self.meta, vertices)

    def get(self, vertices: np.ndarray) -> List[np.ndarray]:
        """Neighbor arrays aligned with ``vertices``."""
        return self.psctx.agent.get_neighbors(self.meta, vertices)

    def degrees(self, vertices: np.ndarray) -> np.ndarray:
        """Neighbor counts for ``vertices``."""
        return self.psctx.agent.degrees(self.meta, vertices)

    def compact(self) -> None:
        """Freeze into read-optimized CSR form."""
        self.psctx.agent.compact(self.meta)

    def num_vertices(self) -> int:
        """Total vertices with stored tables."""
        return self.psctx.agent.table_total(self.meta)

    def checkpoint(self) -> None:
        """Snapshot every partition to HDFS."""
        self.psctx.checkpoint_matrix(self.meta.name)
