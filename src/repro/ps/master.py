"""PS master: health checking and failure recovery.

Sec. III-B: "the master monitors the status of servers by periodical sending
health checking signal.  Once one server encounters failure, the master asks
the resource management platform to restart the server.  If the algorithm
can bear inconsistency between model partitions, such as GE and GNN, the
newly launched server pulls the checkpoint partition from HDFS and continues
training.  Otherwise, the master asks all the servers to restore the
checkpoint partitions from HDFS, such that model consistency is ensured for
algorithms such as PageRank."

Recovery modes therefore come in two flavours:

* ``relaxed`` — only the failed server reloads its checkpoints;
* ``strict`` — every server rolls back to the last checkpoint.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from repro.common.errors import CheckpointNotFoundError, RpcError
from repro.common.simclock import barrier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ps.context import PSContext
    from repro.ps.meta import MatrixMeta

#: Recovery modes (see module docstring).
RECOVERY_MODES = ("relaxed", "strict")


class PSMaster:
    """Monitors servers and orchestrates recovery."""

    def __init__(self, psctx: "PSContext",
                 health_check_cost_s: float = 5e-5) -> None:
        self.psctx = psctx
        self.health_check_cost_s = health_check_cost_s
        self.recoveries = 0

    def health_check(self) -> List[int]:
        """Ping every server; returns indices of dead ones."""
        dead: List[int] = []
        rpc = self.psctx.spark.rpc
        for server in self.psctx.servers:
            self.psctx.spark.driver_clock.advance(self.health_check_cost_s)
            try:
                if not rpc.is_alive(server.id):
                    dead.append(server.index)
                    continue
                rpc.call(server.id, "ping", request_bytes=8, response_bytes=8)
            except RpcError:
                dead.append(server.index)
        return dead

    def recover(self, mode: str = "relaxed") -> List[int]:
        """Detect dead servers, restart them, and reload model state.

        Args:
            mode: ``relaxed`` reloads only the failed servers' partitions
                from their checkpoints; ``strict`` rolls *every* partition
                of every matrix back to the last checkpoint (model
                consistency for algorithms like PageRank).

        Returns:
            Indices of the servers that were recovered.

        Raises:
            CheckpointNotFoundError: a needed partition was never
                checkpointed.
        """
        if mode not in RECOVERY_MODES:
            raise ValueError(
                f"unknown recovery mode {mode!r}; choose from "
                f"{RECOVERY_MODES}"
            )
        psctx = self.psctx
        dead = self.health_check()
        if not dead:
            return []
        recovery_start_s = psctx.spark.driver_clock.now_s
        # Detection point: the dead servers are known but not yet
        # restarted.  Refresh the liveness gauge and tick the telemetry
        # collector here so the availability SLO sees a degraded probe
        # with a sim timestamp between fault injection and recovery end.
        psctx.update_liveness_gauge()
        psctx.spark.notify_tick(recovery_start_s)
        dead_set = set(dead)
        restore_all = mode == "strict"
        # Phase 1: verify every checkpoint this restore will need BEFORE
        # touching any server.  A missing checkpoint must leave the
        # cluster exactly as the failure left it — not with servers
        # revived-but-empty and other matrices half-restored.
        plan: List[Tuple["MatrixMeta", int, int, str]] = []
        for name in psctx.matrix_names():
            meta = psctx.matrix_meta(name)
            for pid in range(meta.num_partitions):
                sidx = meta.server_of(pid)
                if not restore_all and sidx not in dead_set:
                    continue
                path = psctx.checkpoint_path(name, pid)
                if not psctx.spark.hdfs.exists(path):
                    raise CheckpointNotFoundError(
                        f"no checkpoint for {name}[{pid}] at {path}"
                    )
                plan.append((meta, pid, sidx, path))
        # Phase 2: restart dead containers, wipe their stale state and
        # re-register their RPC endpoints.
        for index in dead:
            server = psctx.servers[index]
            psctx.spark.resource_manager.restart(server.container)
            server.wipe()
            psctx.spark.rpc.revive(server.id, server)
        psctx.update_liveness_gauge()
        # Phase 3: reload from the verified plan.
        for meta, pid, sidx, path in plan:
            psctx.servers[sidx].restore_partition(meta, pid, path)
        self.recoveries += len(dead)
        psctx.note_recovery(mode, dead)
        # Cached pulls may predate the rollback; drop them.
        psctx.clear_pull_caches()
        # Everyone waited for recovery (the paper: other executors are
        # "blocked by the synchronization controller of PS").
        end_s = barrier(
            [psctx.spark.driver_clock]
            + [ex.container.clock for ex in psctx.spark.executors if ex.alive]
            + [s.container.clock for s in psctx.servers
               if s.container.alive]
        )
        tracer = psctx.spark.tracer
        if tracer.enabled:
            tracer.add(
                "driver", "recovery", "ps.recover",
                recovery_start_s, end_s,
                {"mode": mode,
                 "servers": [psctx.servers[i].id for i in dead]},
            )
        psctx.spark.notify_tick(end_s)
        return dead
