"""psFunc — user-defined functions executed on the parameter servers.

"users can customize their operators via a user-defined function, called
psFunc" (Sec. III-A).  A psFunc runs once per model partition *on the server
holding it*, sees the raw store, and returns a partial result; the agent
merges the partials.  Moving computation to the data is what makes the
paper's LINE implementation cheap (partial dot products, Sec. IV-D) and is
how the server-side Adam/AdaGrad optimizers are built (Sec. IV-E).
"""

from __future__ import annotations

from typing import Any, List, Sequence

import numpy as np

from repro.ps.storage import ColumnShardStore, DenseRowStore


class PsFunc:
    """Base class for server-side UDFs.

    Subclasses implement :meth:`apply` (runs on each server, once per
    partition of the target matrix) and :meth:`merge` (runs on the caller,
    folding partials into the final result).  ``flops`` lets the simulation
    charge server compute time.
    """

    def apply(self, store: Any) -> Any:
        """Run on one partition's store; returns a partial result."""
        raise NotImplementedError

    def merge(self, partials: List[Any]) -> Any:
        """Fold partials into the final result (default: first non-None)."""
        for p in partials:
            if p is not None:
                return p
        return None

    def flops(self, store: Any) -> float:
        """Estimated floating point operations of one apply (for costing)."""
        nbytes = getattr(store, "nbytes", 0)
        return nbytes / 8.0


class VectorSum(PsFunc):
    """Sum of one column over the whole matrix."""

    def __init__(self, col: int = 0) -> None:
        self.col = col

    def apply(self, store: DenseRowStore) -> float:
        return float(store.array[:, self.col].sum())

    def merge(self, partials: List[float]) -> float:
        return float(sum(p for p in partials if p is not None))


class CountNonZero(PsFunc):
    """Number of entries of one column with ``|x| > tol``."""

    def __init__(self, col: int = 0, tol: float = 0.0) -> None:
        self.col = col
        self.tol = tol

    def apply(self, store: DenseRowStore) -> int:
        return int((np.abs(store.array[:, self.col]) > self.tol).sum())

    def merge(self, partials: List[int]) -> int:
        return int(sum(p for p in partials if p is not None))


class MaxAbs(PsFunc):
    """Maximum absolute value of one column."""

    def __init__(self, col: int = 0) -> None:
        self.col = col

    def apply(self, store: DenseRowStore) -> float:
        if store.array.shape[0] == 0:
            return 0.0
        return float(np.abs(store.array[:, self.col]).max())

    def merge(self, partials: List[float]) -> float:
        vals = [p for p in partials if p is not None]
        return max(vals) if vals else 0.0


class Scale(PsFunc):
    """Multiply one column (or all columns) in place by a constant."""

    def __init__(self, factor: float, col: int | None = None) -> None:
        self.factor = factor
        self.col = col

    def apply(self, store: DenseRowStore) -> None:
        if self.col is None:
            store.array *= self.factor
        else:
            store.array[:, self.col] *= self.factor


class Fill(PsFunc):
    """Set one column (or all columns) to a constant."""

    def __init__(self, value: float, col: int | None = None) -> None:
        self.value = value
        self.col = col

    def apply(self, store: DenseRowStore) -> None:
        if self.col is None:
            store.array[:] = self.value
        else:
            store.array[:, self.col] = self.value


class AddColumn(PsFunc):
    """``array[:, dst] += scale * array[:, src]`` in place."""

    def __init__(self, src: int, dst: int, scale: float = 1.0) -> None:
        self.src = src
        self.dst = dst
        self.scale = scale

    def apply(self, store: DenseRowStore) -> None:
        store.array[:, self.dst] += self.scale * store.array[:, self.src]


class RandomInit(PsFunc):
    """Fill a store with uniform noise in ``[-scale, scale)``.

    Each partition derives its stream from ``seed`` and its first key so the
    global initialization is deterministic regardless of server layout.
    """

    def __init__(self, seed: int, scale: float = 0.1) -> None:
        self.seed = seed
        self.scale = scale

    def apply(self, store: Any) -> None:
        if isinstance(store, ColumnShardStore):
            salt = int(store.col_keys[0]) if len(store.col_keys) else 0
            shape = store.array.shape
            target = store.array
        else:
            salt = int(store.keys[0]) if len(store.keys) else 0
            shape = store.array.shape
            target = store.array
        rng = np.random.default_rng(self.seed * 2654435761 % (2 ** 63) + salt)
        target[:] = (rng.random(shape, dtype=np.float64) * 2 - 1) * self.scale


class PartialDot(PsFunc):
    """Per-pair partial dot products on a column-sharded matrix.

    The building block of LINE-on-PS: each server computes
    ``sum_c A[i, c] * A[j, c]`` over its local columns ``c``; the agent sums
    the partials to obtain full dot products without moving embeddings.
    """

    def __init__(self, left: Sequence[int], right: Sequence[int]) -> None:
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)

    def apply(self, store: ColumnShardStore) -> np.ndarray:
        return store.partial_dot(self.left, self.right)

    def merge(self, partials: List[np.ndarray]) -> np.ndarray:
        valid = [p for p in partials if p is not None]
        return np.sum(valid, axis=0)

    def flops(self, store: ColumnShardStore) -> float:
        return 2.0 * len(self.left) * store.array.shape[1]


class RankOneUpdate(PsFunc):
    """Symmetric rank-one SGD update on a column-sharded matrix.

    For each pair ``(i, j)`` with coefficient ``g``::

        A[i, :] += g * A[j, :]
        A[j, :] += g * A[i_old, :]

    Entirely local per column shard: only indices and coefficients cross the
    network (the LINE update path of Sec. IV-D).
    """

    def __init__(self, left: Sequence[int], right: Sequence[int],
                 coeffs: Sequence[float]) -> None:
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.coeffs = np.asarray(coeffs, dtype=np.float64)

    def apply(self, store: ColumnShardStore) -> None:
        arr = store.array
        left_old = arr[self.left].copy()
        g = self.coeffs[:, None].astype(arr.dtype)
        np.add.at(arr, self.left, g * arr[self.right])
        np.add.at(arr, self.right, g * left_old)

    def flops(self, store: ColumnShardStore) -> float:
        return 4.0 * len(self.left) * store.array.shape[1]
