"""Server-side gradient descent optimizers.

"we implement more advanced gradient descent optimizers on PS, such as
AdaGrad and Adam, using the user-defined function psFunc provided by PS"
(Sec. IV-E).  An optimizer spec is attached to a matrix at creation time;
each server keeps the optimizer *state* (momenta, accumulators) next to the
partition it owns, so ``push_gradients`` ships only gradients — never
optimizer state — over the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


class Optimizer:
    """Base optimizer: subclasses update ``param`` in place from ``grad``."""

    def init_state(self, shape: tuple, dtype: np.dtype) -> Dict[str, np.ndarray]:
        """Fresh per-partition state arrays."""
        return {}

    def step(self, param: np.ndarray, grad: np.ndarray,
             state: Dict[str, np.ndarray]) -> None:
        """Apply one update in place."""
        raise NotImplementedError

    def flops_per_element(self) -> float:
        """Rough FLOPs per parameter element, for sim-time costing."""
        return 2.0


@dataclass
class SGD(Optimizer):
    """Plain stochastic gradient descent: ``p -= lr * g``."""

    lr: float = 0.01

    def step(self, param: np.ndarray, grad: np.ndarray,
             state: Dict[str, np.ndarray]) -> None:
        param -= self.lr * grad


@dataclass
class Momentum(Optimizer):
    """SGD with heavy-ball momentum."""

    lr: float = 0.01
    momentum: float = 0.9

    def init_state(self, shape: tuple, dtype: np.dtype) -> Dict[str, np.ndarray]:
        return {"v": np.zeros(shape, dtype=dtype)}

    def step(self, param: np.ndarray, grad: np.ndarray,
             state: Dict[str, np.ndarray]) -> None:
        v = state["v"]
        v *= self.momentum
        v += grad
        param -= self.lr * v

    def flops_per_element(self) -> float:
        return 4.0


@dataclass
class AdaGrad(Optimizer):
    """AdaGrad: per-coordinate learning rates from squared-gradient sums."""

    lr: float = 0.05
    eps: float = 1e-8

    def init_state(self, shape: tuple, dtype: np.dtype) -> Dict[str, np.ndarray]:
        return {"g2": np.zeros(shape, dtype=np.float64)}

    def step(self, param: np.ndarray, grad: np.ndarray,
             state: Dict[str, np.ndarray]) -> None:
        g2 = state["g2"]
        g2 += grad.astype(np.float64) ** 2
        param -= (self.lr * grad / (np.sqrt(g2) + self.eps)).astype(
            param.dtype
        )

    def flops_per_element(self) -> float:
        return 6.0


@dataclass
class Adam(Optimizer):
    """Adam with bias correction."""

    lr: float = 0.001
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8

    def init_state(self, shape: tuple, dtype: np.dtype) -> Dict[str, np.ndarray]:
        return {
            "m": np.zeros(shape, dtype=np.float64),
            "v": np.zeros(shape, dtype=np.float64),
            "t": np.zeros(1, dtype=np.int64),
        }

    def step(self, param: np.ndarray, grad: np.ndarray,
             state: Dict[str, np.ndarray]) -> None:
        g = grad.astype(np.float64)
        state["t"][0] += 1
        t = int(state["t"][0])
        m, v = state["m"], state["v"]
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        m_hat = m / (1 - self.beta1 ** t)
        v_hat = v / (1 - self.beta2 ** t)
        param -= (self.lr * m_hat / (np.sqrt(v_hat) + self.eps)).astype(
            param.dtype
        )

    def flops_per_element(self) -> float:
        return 10.0
