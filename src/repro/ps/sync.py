"""Synchronization controller (BSP / ASP).

"PS has different synchronization protocols (BSP/ASP) to control the
synchronization across workers" (Sec. III-A).  Under BSP every iteration
ends at a barrier aligning the clocks of the driver, every live executor and
every live server — the slowest participant sets the pace.  Under ASP the
barrier is a no-op (workers proceed at their own speed); only the epoch
counter advances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.common.errors import ConfigError
from repro.common.simclock import barrier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ps.context import PSContext

#: Supported protocols.
PROTOCOLS = ("bsp", "asp")


class SyncController:
    """Coordinates iteration boundaries between executors and servers."""

    def __init__(self, psctx: "PSContext", mode: str = "bsp") -> None:
        if mode not in PROTOCOLS:
            raise ConfigError(
                f"unknown sync protocol {mode!r}; choose from {PROTOCOLS}"
            )
        self.psctx = psctx
        self.mode = mode
        self.epoch = 0

    def barrier(self) -> float:
        """End one iteration; under BSP, align all clocks to the max.

        Returns:
            The (driver) simulated time after the barrier.
        """
        self.epoch += 1
        spark = self.psctx.spark
        if self.mode == "bsp":
            clocks = [spark.driver_clock]
            clocks.extend(
                ex.container.clock for ex in spark.executors if ex.alive
            )
            clocks.extend(
                s.container.clock for s in self.psctx.servers
                if s.container.alive
            )
            t = barrier(clocks)
        else:
            t = spark.driver_clock.now_s
        if spark.tracer.enabled:
            spark.tracer.instant(
                "driver", "iterations", "iteration", t,
                {"epoch": self.epoch, "mode": self.mode},
            )
        return t
