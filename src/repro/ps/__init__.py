"""Distributed parameter server: servers, agents, psFunc, sync, recovery."""

from repro.ps.context import PSContext
from repro.ps.matrix import PSEmbedding, PSMatrix, PSNeighborTable, PSVector
from repro.ps.meta import MatrixMeta
from repro.ps.optimizer import SGD, AdaGrad, Adam, Momentum, Optimizer
from repro.ps.partitioner import (
    HashPSPartitioner,
    HashRangePSPartitioner,
    PSPartitioner,
    RangePSPartitioner,
    make_ps_partitioner,
)
from repro.ps.psfunc import (
    AddColumn,
    CountNonZero,
    Fill,
    MaxAbs,
    PartialDot,
    PsFunc,
    RandomInit,
    RankOneUpdate,
    Scale,
    VectorSum,
)
from repro.ps.server import PSServer
from repro.ps.sync import SyncController

__all__ = [
    "AdaGrad",
    "Adam",
    "AddColumn",
    "CountNonZero",
    "Fill",
    "HashPSPartitioner",
    "HashRangePSPartitioner",
    "MatrixMeta",
    "MaxAbs",
    "Momentum",
    "Optimizer",
    "PSContext",
    "PSEmbedding",
    "PSMatrix",
    "PSNeighborTable",
    "PSPartitioner",
    "PSServer",
    "PSVector",
    "PartialDot",
    "PsFunc",
    "RandomInit",
    "RangePSPartitioner",
    "RankOneUpdate",
    "SGD",
    "Scale",
    "SyncController",
    "VectorSum",
    "make_ps_partitioner",
]
