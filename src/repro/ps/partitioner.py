"""Model partitioners for the parameter server.

"The graph data frequently accessed are partitioned over several machines.
For vectors and matrices, PS partitions them by row index and column index.
For graph vertex and neighbor table, PS partitions them by vertex index.
We implement hash partition, range partition, and hash-range partition"
(Sec. III-A).

A PS partitioner maps a model *key* (row index for ``axis=0`` matrices and
vertex tables; column index for ``axis=1`` matrices) to one of
``num_partitions`` model partitions; partitions are assigned to servers
round-robin.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigError


class PSPartitioner:
    """Maps model keys in ``[0, size)`` to partitions ``[0, num_partitions)``."""

    def __init__(self, size: int, num_partitions: int) -> None:
        if size <= 0:
            raise ConfigError("model size must be positive")
        if num_partitions <= 0:
            raise ConfigError("num_partitions must be positive")
        self.size = size
        self.num_partitions = min(num_partitions, size)

    def partition_of(self, key: int) -> int:
        """Partition index of one key."""
        raise NotImplementedError

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized partition indices."""
        raise NotImplementedError

    def keys_of_partition(self, pid: int) -> np.ndarray:
        """All keys living in partition ``pid`` (ascending)."""
        raise NotImplementedError


class HashPSPartitioner(PSPartitioner):
    """``key mod n`` — spreads hot keys, ignores locality."""

    def partition_of(self, key: int) -> int:
        return int(key) % self.num_partitions

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        return (keys % self.num_partitions).astype(np.int64)

    def keys_of_partition(self, pid: int) -> np.ndarray:
        return np.arange(pid, self.size, self.num_partitions, dtype=np.int64)


class RangePSPartitioner(PSPartitioner):
    """Contiguous key ranges — locality-friendly, skew-prone."""

    def __init__(self, size: int, num_partitions: int) -> None:
        super().__init__(size, num_partitions)
        n = self.num_partitions
        base = size // n
        extra = size % n
        bounds = [0]
        for i in range(n):
            bounds.append(bounds[-1] + base + (1 if i < extra else 0))
        #: partition ``i`` holds keys in ``[bounds[i], bounds[i+1])``.
        self.bounds = np.asarray(bounds, dtype=np.int64)

    def partition_of(self, key: int) -> int:
        return int(np.searchsorted(self.bounds, key, side="right") - 1)

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        return (np.searchsorted(self.bounds, keys, side="right") - 1).astype(
            np.int64
        )

    def keys_of_partition(self, pid: int) -> np.ndarray:
        return np.arange(self.bounds[pid], self.bounds[pid + 1],
                         dtype=np.int64)


class HashRangePSPartitioner(PSPartitioner):
    """Hybrid-range partitioning [Ghandeharizadeh & DeWitt, PVLDB 1990].

    Keys are first scattered into buckets by a cheap hash, and buckets are
    then range-assigned to partitions — combining hash's load balance with
    range's bulk-transfer friendliness.  Concretely: the key space is split
    into ``num_partitions * buckets_per_partition`` contiguous chunks and
    chunk ``c`` goes to partition ``c mod num_partitions``.
    """

    def __init__(self, size: int, num_partitions: int,
                 buckets_per_partition: int = 8) -> None:
        super().__init__(size, num_partitions)
        if buckets_per_partition <= 0:
            raise ConfigError("buckets_per_partition must be positive")
        self.num_buckets = self.num_partitions * buckets_per_partition
        self.bucket_size = max(1, -(-size // self.num_buckets))

    def partition_of(self, key: int) -> int:
        return (int(key) // self.bucket_size) % self.num_partitions

    def partition_array(self, keys: np.ndarray) -> np.ndarray:
        return ((keys // self.bucket_size) % self.num_partitions).astype(
            np.int64
        )

    def keys_of_partition(self, pid: int) -> np.ndarray:
        all_keys = np.arange(self.size, dtype=np.int64)
        return all_keys[self.partition_array(all_keys) == pid]


#: Registry used by :meth:`repro.ps.context.PSContext.create_matrix`.
PARTITIONERS = {
    "hash": HashPSPartitioner,
    "range": RangePSPartitioner,
    "hash-range": HashRangePSPartitioner,
}


def make_ps_partitioner(kind: str, size: int,
                        num_partitions: int) -> PSPartitioner:
    """Create a partitioner by name ("hash", "range", "hash-range")."""
    try:
        cls = PARTITIONERS[kind]
    except KeyError:
        raise ConfigError(
            f"unknown partition kind {kind!r}; choose from "
            f"{sorted(PARTITIONERS)}"
        ) from None
    return cls(size, num_partitions)
