"""Matrix metadata shared by PS context, agents and servers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ps.partitioner import PSPartitioner

#: Storage kinds accepted by :meth:`repro.ps.context.PSContext.create_matrix`.
STORAGE_KINDS = ("dense", "sparse", "column", "neighbor")


@dataclass
class MatrixMeta:
    """Static description of one PS matrix.

    Attributes:
        name: unique matrix name within the PSContext.
        rows: number of rows (vertices for graph models).
        cols: row width (1 for vectors; embedding dim for LINE).
        dtype: element dtype.
        axis: 0 = partition by row key (default), 1 = partition by column
            (LINE embeddings, GNN weights — enables server-side dots).
        storage: one of ``dense``, ``sparse``, ``column``, ``neighbor``.
        partitioner: maps keys (rows for axis=0, cols for axis=1) to
            partitions; partition ``p`` lives on server ``p mod S``.
        init: initial fill value for dense storage.
        optimizer: optional server-side optimizer spec (see
            :mod:`repro.ps.optimizer`); enables ``push_gradients``.
    """

    name: str
    rows: int
    cols: int
    dtype: np.dtype
    axis: int
    storage: str
    partitioner: PSPartitioner
    init: float = 0.0
    optimizer: Optional[object] = None
    num_servers: int = field(default=1)

    @property
    def num_partitions(self) -> int:
        """Number of model partitions."""
        return self.partitioner.num_partitions

    def server_of(self, pid: int) -> int:
        """Index of the server holding partition ``pid``.

        Mixed (not plain modulo) so partition schemes that are themselves
        modular do not alias whole key ranges onto one server.  The
        multiplier is prime, so ``pid -> server`` stays a bijection over
        any ``num_servers`` consecutive partition ids — matching the real
        system's balanced partition-to-server assignment.
        """
        return (pid * 2654435761) % self.num_servers
