"""Euler baseline (Alibaba's graph learning system) for Table I.

The paper compares PSGraph against Euler on GraphSage and attributes the
gap to two mechanisms, both modelled here at the mechanism level:

* **Disk-through sequential preprocessing** — "Euler has a strict
  constraint on the graph data so that the original graph data needs
  complex preprocessing.  These operations are executed sequentially and
  individually, meaning that every operation needs to read data from disk
  and write output to disk" (Sec. V-B3): an index-mapping pass and a
  data-to-JSON pass each run on a *single* worker reading and writing HDFS
  (JSON inflating the bytes), followed by a quick parallel partitioning
  pass.  8 hours at paper scale vs PSGraph's 12 in-pipeline minutes.

* **Per-vertex RPC sampling during training** — Euler's graph engine
  serves ``sampleNeighbor``/``getFeature`` calls per vertex; every 2-hop
  sample pays an RPC round trip, where PSGraph batches one PS pull per
  batch.  200 s/epoch vs 7 s/epoch at k=2.

Model quality is *not* handicapped: training uses the same torchlite
GraphSage with synchronous gradient averaging, so accuracy lands where
PSGraph's does (91.5 % vs 91.6 % in Table I).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.config import ClusterConfig
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED, derive_seed
from repro.common.simclock import TaskCost, barrier
from repro.hdfs.filesystem import Hdfs
from repro.torchlite.functional import cross_entropy
from repro.torchlite.optim import AdamOptimizer
from repro.torchlite.script import ScriptModule
from repro.torchlite.tensor import Tensor
from repro.yarn.resource_manager import ResourceManager

#: Bytes-per-edge of Euler's JSON interchange format relative to the
#: 16-byte binary pair (measured JSON graph dumps run ~6-10x).
JSON_INFLATION = 8.0


class EulerSystem:
    """A simulated Euler deployment: workers + graph-engine shards.

    Args:
        cluster: worker count and memory (the paper gives Euler 90
            executors on DS3).
        hdfs: shared filesystem holding the raw input.
        sample_rpc_latency_s: per-call latency of the graph engine
            (sampleNeighbor / getFeature round trip).
    """

    def __init__(self, cluster: ClusterConfig, *, hdfs: Hdfs | None = None,
                 metrics: MetricsRegistry | None = None,
                 sample_rpc_latency_s: float = 4e-4,
                 preprocess_cpu_s_per_record: float = 1e-4,
                 seed: int = DEFAULT_SEED) -> None:
        self.cluster = cluster
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.hdfs = hdfs if hdfs is not None else Hdfs(
            cluster.cost_model, self.metrics
        )
        self.rm = ResourceManager(self.metrics)
        self.workers = self.rm.request_many(
            "euler-worker", cluster.num_executors, cluster.executor_mem_bytes
        )
        self.driver = self.rm.request(
            "euler-driver", cluster.executor_mem_bytes, name="euler-driver"
        )
        self.sample_rpc_latency_s = sample_rpc_latency_s
        #: Per-record CPU of the preprocessing scripts.  The paper reports
        #: 4 hours of index mapping for 100 M edges (~144 us/record) —
        #: script-language row processing, not a compiled engine.
        self.preprocess_cpu_s_per_record = preprocess_cpu_s_per_record
        self.seed = seed
        # In-memory state after preprocess().
        self._adj: Dict[int, np.ndarray] = {}
        self._features: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    # ------------------------------------------------------------------
    # preprocessing (the 8-hour column of Table I)
    # ------------------------------------------------------------------

    def preprocess(self, edges_path: str, features: np.ndarray,
                   labels: np.ndarray, workdir: str = "/euler"
                   ) -> Dict[str, float]:
        """Run the three sequential disk-through passes.

        Returns:
            Simulated seconds per pass plus the total.
        """
        cm = self.cluster.cost_model
        worker = self.workers[0]

        # Pass 1 — index mapping: read every raw edge file, build the
        # vertex id map, write remapped binary edges.  Single worker.
        t0 = worker.clock.now_s
        cost = TaskCost()
        src_parts: List[np.ndarray] = []
        dst_parts: List[np.ndarray] = []
        for path in sorted(self.hdfs.listdir(edges_path)):
            lines = self.hdfs.read_lines(path, cost=cost)
            pairs = np.array(
                [[int(a), int(b)] for a, b, *_ in
                 (ln.split() for ln in lines)],
                dtype=np.int64,
            ).reshape(-1, 2)
            src_parts.append(pairs[:, 0])
            dst_parts.append(pairs[:, 1])
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
        # Script-speed row processing: parse, hash, remap, re-emit.
        cost.cpu_s += len(src) * self.preprocess_cpu_s_per_record
        mapped = np.stack([src, dst], axis=1)
        self.hdfs.write_pickle(
            f"{workdir}/mapped-edges", mapped, overwrite=True, cost=cost
        )
        worker.clock.advance(cost.total_s)
        index_mapping_s = worker.clock.now_s - t0

        # Pass 2 — data-to-JSON: read the mapped edges and features, write
        # the inflated JSON interchange file.  Single worker again.
        t1 = worker.clock.now_s
        cost = TaskCost()
        self.hdfs.read_pickle(f"{workdir}/mapped-edges", cost=cost)
        binary_bytes = mapped.nbytes + features.nbytes + labels.nbytes
        json_bytes = int(binary_bytes * JSON_INFLATION)
        cost.cpu_s += cm.serialization_time(json_bytes) * 4  # text encode
        # Script-speed JSON emission per edge and per feature row.
        cost.cpu_s += (
            (len(src) + len(features)) * self.preprocess_cpu_s_per_record
        )
        cost.disk_s += cm.disk_write_time(json_bytes * self.hdfs.replication)
        self.hdfs.write_pickle(
            f"{workdir}/graph-json-meta",
            {"bytes": json_bytes}, overwrite=True,
        )
        worker.clock.advance(cost.total_s)
        json_s = worker.clock.now_s - t1

        # Pass 3 — JSON partitioning: parallel split into worker shards.
        t2 = max(w.clock.now_s for w in self.workers)
        per_worker = json_bytes / len(self.workers)
        for w in self.workers:
            w.clock.advance_to(worker.clock.now_s)
            w.clock.advance(
                cm.disk_read_time(per_worker)
                + cm.disk_write_time(per_worker)
            )
        barrier([w.clock for w in self.workers] + [self.driver.clock])
        partition_s = self.driver.clock.now_s - t2

        # Materialize the graph for training.
        self._adj = _build_adjacency(src, dst)
        self._features = np.asarray(features, dtype=np.float64)
        self._labels = np.asarray(labels, dtype=np.int64)
        return {
            "index_mapping_s": index_mapping_s,
            "json_transform_s": json_s,
            "partition_s": partition_s,
            "total_s": index_mapping_s + json_s + partition_s,
        }

    # ------------------------------------------------------------------
    # training (the 200 s/epoch column of Table I)
    # ------------------------------------------------------------------

    def train_graphsage(self, blob: ScriptModule, *, epochs: int = 3,
                        batch_size: int = 512,
                        fanouts: Tuple[int, int] = (10, 5),
                        lr: float = 0.01,
                        labeled_fraction: float = 1.0,
                        train_fraction: float = 0.7
                        ) -> Dict[str, object]:
        """Train GraphSage with per-vertex RPC sampling costs.

        Returns:
            ``{"epoch_sim_times", "epoch_losses", "accuracy"}``.
        """
        if self._features is None:
            raise RuntimeError("preprocess() must run before training")
        cm = self.cluster.cost_model
        feats = self._features
        labels = self._labels
        rng = np.random.default_rng(self.seed)
        present = np.asarray(sorted(self._adj))
        rng.shuffle(present)
        if labeled_fraction < 1.0:
            present = present[:max(2, int(len(present) * labeled_fraction))]
        cut = int(len(present) * train_fraction)
        train_ids = np.sort(present[:cut])
        test_ids = np.sort(present[cut:])
        model = blob.instantiate()
        opt = AdamOptimizer(model.parameters(), lr=lr)
        s1, s2 = fanouts
        feat_bytes = feats.shape[1] * 8
        n_workers = len(self.workers)
        weight_bytes = sum(p.data.nbytes for p in model.parameters())

        def charge_batch(num_nodes: int) -> float:
            """Simulated seconds one worker spends on its batch slice."""
            sample_calls = num_nodes * (1 + s1)          # 2-hop sampling
            feat_calls = num_nodes * (1 + s1 + s1 * s2)  # per-vertex fetch
            rpc = (sample_calls + feat_calls) * self.sample_rpc_latency_s
            net = cm.network_time(feat_calls * feat_bytes)
            compute = cm.flop_time(
                num_nodes * (1 + s1 + s1 * s2) * feats.shape[1] * 20
            )
            # Synchronous gradient exchange across workers.
            allreduce = cm.network_time(2 * weight_bytes)
            return rpc + net + compute + allreduce

        epoch_losses: List[float] = []
        epoch_times: List[float] = []
        for epoch in range(epochs):
            t0 = self.driver.clock.now_s
            order = train_ids.copy()
            np.random.default_rng(
                derive_seed(self.seed, "euler-epoch", epoch)
            ).shuffle(order)
            loss_sum = 0.0
            for start in range(0, len(order), batch_size):
                batch = order[start:start + batch_size]
                loss = self._train_batch(model, opt, batch, fanouts, epoch)
                loss_sum += loss * len(batch)
                per_worker = -(-len(batch) // n_workers)
                dt = charge_batch(per_worker)
                for w in self.workers:
                    w.clock.advance(dt)
                barrier([w.clock for w in self.workers])
            barrier([w.clock for w in self.workers] + [self.driver.clock])
            epoch_times.append(self.driver.clock.now_s - t0)
            epoch_losses.append(loss_sum / max(1, len(order)))

        accuracy = self._evaluate(model, test_ids, fanouts)
        return {
            "epoch_sim_times": epoch_times,
            "epoch_losses": epoch_losses,
            "accuracy": accuracy,
            "num_train": len(train_ids),
            "num_test": len(test_ids),
        }

    # ------------------------------------------------------------------

    def _sample(self, ids: np.ndarray, fanout: int,
                rng: np.random.Generator
                ) -> Tuple[np.ndarray, np.ndarray]:
        out_ids: List[np.ndarray] = []
        segs: List[np.ndarray] = []
        for i, v in enumerate(ids.tolist()):
            nbrs = self._adj.get(int(v))
            if nbrs is None or len(nbrs) == 0:
                chosen = np.asarray([v], dtype=np.int64)
            else:
                chosen = rng.choice(
                    nbrs, size=min(fanout, len(nbrs)), replace=False
                )
            out_ids.append(chosen)
            segs.append(np.full(len(chosen), i, dtype=np.int64))
        return np.concatenate(out_ids), np.concatenate(segs)

    def _forward(self, model, ids: np.ndarray,
                 fanouts: Tuple[int, int], rng: np.random.Generator):
        n1, seg1 = self._sample(ids, fanouts[0], rng)
        n2, seg2 = self._sample(n1, fanouts[1], rng)
        feats = self._features
        return model(
            Tensor(feats[ids]), Tensor(feats[n1]), seg1,
            Tensor(feats[n2]), seg2,
        )

    def _train_batch(self, model, opt, batch: np.ndarray,
                     fanouts: Tuple[int, int], epoch: int) -> float:
        rng = np.random.default_rng(
            derive_seed(self.seed, "euler-batch", epoch, int(batch[0]))
        )
        logits = self._forward(model, batch, fanouts, rng)
        loss = cross_entropy(logits, self._labels[batch])
        opt.zero_grad()
        loss.backward()
        opt.step()
        return float(loss.item())

    def _evaluate(self, model, test_ids: np.ndarray,
                  fanouts: Tuple[int, int]) -> float:
        if len(test_ids) == 0:
            return 0.0
        rng = np.random.default_rng(derive_seed(self.seed, "euler-eval"))
        correct = 0
        for start in range(0, len(test_ids), 1024):
            batch = test_ids[start:start + 1024]
            logits = self._forward(model, batch, fanouts, rng)
            correct += int(
                (logits.data.argmax(axis=1) == self._labels[batch]).sum()
            )
        return correct / len(test_ids)

    def sim_time(self) -> float:
        """Current driver sim-time in seconds."""
        return self.driver.clock.now_s

    def stop(self) -> None:
        """Release all worker containers."""
        for w in self.workers:
            self.rm.release(w)
        self.rm.release(self.driver)


def _build_adjacency(src: np.ndarray, dst: np.ndarray
                     ) -> Dict[int, np.ndarray]:
    """Undirected, deduplicated adjacency dict."""
    targets = np.concatenate([src, dst])
    others = np.concatenate([dst, src])
    order = np.argsort(targets, kind="stable")
    targets, others = targets[order], others[order]
    uids, starts = np.unique(targets, return_index=True)
    chunks = np.split(others, starts[1:])
    return {
        int(v): np.unique(c) for v, c in zip(uids.tolist(), chunks)
    }
