"""Euler baseline simulation (Table I comparison system)."""

from repro.eulersim.euler import JSON_INFLATION, EulerSystem

__all__ = ["EulerSystem", "JSON_INFLATION"]
