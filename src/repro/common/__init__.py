"""Shared infrastructure: errors, cost model, clocks, memory, metrics, RNG."""

from repro.common.config import (
    GB,
    MB,
    ClusterConfig,
    euler_config_ds3,
    graphx_config_ds1,
    graphx_config_ds2,
    psgraph_config_ds1,
    psgraph_config_ds2,
    psgraph_config_ds3,
)
from repro.common.costs import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import (
    ConfigError,
    ContainerLostError,
    PSGraphError,
    SimulatedOOMError,
)
from repro.common.memory import MemoryTracker
from repro.common.metrics import MetricsRegistry
from repro.common.rng import DEFAULT_SEED, derive_seed, make_rng
from repro.common.simclock import SimClock, TaskCost, barrier
from repro.common.sizeof import sizeof, sizeof_records

__all__ = [
    "GB",
    "MB",
    "ClusterConfig",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "DEFAULT_SEED",
    "ConfigError",
    "ContainerLostError",
    "PSGraphError",
    "SimulatedOOMError",
    "MemoryTracker",
    "MetricsRegistry",
    "SimClock",
    "TaskCost",
    "barrier",
    "derive_seed",
    "euler_config_ds3",
    "graphx_config_ds1",
    "graphx_config_ds2",
    "make_rng",
    "psgraph_config_ds1",
    "psgraph_config_ds2",
    "psgraph_config_ds3",
    "sizeof",
    "sizeof_records",
]
