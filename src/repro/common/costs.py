"""Cost model for the simulated Tencent cluster.

The paper's evaluation runs on ">1000 machines, connected by 10GB Ethernet"
(Sec. V-A).  We cannot run on that cluster, so every metered operation in the
reproduction (RPC, shuffle write, HDFS read, per-record compute, ...) charges
*simulated seconds* derived from the constants below.  The constants are
ordinary hardware numbers for a 2019-era datacenter node; they are knobs, not
truths — EXPERIMENTS.md documents the calibration and the reproduction only
claims the *shape* of the paper's results (who wins, by what factor, who OOMs).

Two separate clocks exist everywhere in this codebase:

* **wall-clock** — what pytest-benchmark measures when running the mini-scale
  workloads for real;
* **sim-time** — the deterministic cost-model estimate, which stands in for
  the paper's production-cluster hours.

Datasets are scaled down by a factor ``f`` and container memory grants are
scaled by the same ``f`` (see :mod:`repro.datasets.tencent`), so sim-time at
mini scale extrapolates linearly: ``paper_hours ≈ sim_seconds / f / 3600``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Simulated-hardware constants used to charge time and memory.

    Attributes:
        network_bandwidth_bps: point-to-point bandwidth in bytes/second
            (10 GbE ≈ 1.25e9 B/s).
        rpc_latency_s: fixed per-message latency of one RPC round trip.
            Kept small (50 us — a datacenter RTT) so that mini-scale runs
            stay *volume-dominated*: the linear projection to paper scale
            (``paper_hours = sim_seconds / scale / 3600``) is only valid
            for costs proportional to data volume, and per-message
            latencies are amortized at paper scale.
        disk_read_bps: sequential disk read bandwidth in bytes/second.
        disk_write_bps: sequential disk write bandwidth in bytes/second.
        cpu_record_s: CPU seconds charged per *boxed* record of generic
            dataflow processing — a JVM tuple moving through Spark iterator
            chains, hash maps and serializers, with GC amortized
            (~0.7 M records/s/core; Spark's own shuffle benchmarks land in
            this range).  This is the cost GraphX's join pipeline pays per
            edge and per message.
        cpu_primitive_record_s: CPU seconds per record of *primitive-array*
            processing — PSGraph/Angel's executor loops over primitive
            collections and the PS servers' array kernels (~5 M records/s
            per core).  The boxed/primitive asymmetry is part of the
            paper's story: GraphX materializes boxed temp tables, PSGraph
            streams primitive arrays.
        cpu_flop_s: CPU seconds charged per floating point operation of
            vectorized numeric work (used by torchlite and psFunc costing).
        jvm_object_overhead: multiplier applied to the *logical* byte size of
            rows materialized as JVM objects (GraphX tables, join buffers).
            Spark's own tuning guide puts JVM object bloat at 2-5x.
        shuffle_buffer_overhead: multiplier for in-memory shuffle/sort
            buffers relative to the logical bytes being shuffled.
        serialization_cpu_s_per_byte: CPU cost of serializing one byte into
            a shuffle file or an RPC payload.
    """

    network_bandwidth_bps: float = 1.25e9
    rpc_latency_s: float = 5e-5
    disk_read_bps: float = 2.0e8
    disk_write_bps: float = 1.5e8
    cpu_record_s: float = 1.5e-6
    cpu_primitive_record_s: float = 2.0e-7
    cpu_flop_s: float = 2.0e-10
    jvm_object_overhead: float = 2.5
    shuffle_buffer_overhead: float = 1.5
    serialization_cpu_s_per_byte: float = 5e-10

    def __post_init__(self) -> None:
        for field in (
            "network_bandwidth_bps",
            "disk_read_bps",
            "disk_write_bps",
        ):
            if getattr(self, field) <= 0:
                raise ConfigError(f"{field} must be positive")
        for field in (
            "rpc_latency_s",
            "cpu_record_s",
            "cpu_primitive_record_s",
            "cpu_flop_s",
            "serialization_cpu_s_per_byte",
        ):
            if getattr(self, field) < 0:
                raise ConfigError(f"{field} must be non-negative")
        if self.jvm_object_overhead < 1.0:
            raise ConfigError("jvm_object_overhead must be >= 1")
        if self.shuffle_buffer_overhead < 0:
            raise ConfigError("shuffle_buffer_overhead must be >= 0")

    def network_time(self, nbytes: float, congestion: float = 1.0) -> float:
        """Simulated seconds to move ``nbytes`` over one link.

        Args:
            nbytes: payload size in bytes.
            congestion: effective slowdown factor (>= 1) when the remote end
                is shared by several concurrent clients, e.g. many executors
                pulling from few parameter servers.
        """
        congestion = max(1.0, congestion)
        return self.rpc_latency_s + nbytes * congestion / self.network_bandwidth_bps

    def disk_read_time(self, nbytes: float) -> float:
        """Simulated seconds to sequentially read ``nbytes`` from disk."""
        return nbytes / self.disk_read_bps

    def disk_write_time(self, nbytes: float) -> float:
        """Simulated seconds to sequentially write ``nbytes`` to disk."""
        return nbytes / self.disk_write_bps

    def compute_time(self, records: float) -> float:
        """Simulated CPU seconds for boxed per-record work."""
        return records * self.cpu_record_s

    def primitive_compute_time(self, records: float) -> float:
        """Simulated CPU seconds for primitive-array per-record work."""
        return records * self.cpu_primitive_record_s

    def flop_time(self, flops: float) -> float:
        """Simulated CPU seconds for ``flops`` floating point operations."""
        return flops * self.cpu_flop_s

    def serialization_time(self, nbytes: float) -> float:
        """Simulated CPU seconds to (de)serialize ``nbytes``."""
        return nbytes * self.serialization_cpu_s_per_byte


#: Default cost model used throughout the reproduction.
DEFAULT_COST_MODEL = CostModel()
