"""Logical size estimation for metering memory and network transfers.

The simulation charges memory and bandwidth in *logical* bytes — the size the
data would occupy in a compact serialized form — rather than CPython object
sizes, which would make the cost model hostage to interpreter internals.
Runtime-specific bloat (e.g. JVM object overhead for GraphX's materialized
tables) is applied as an explicit multiplier from the cost model at the call
site, which keeps the knob visible and documented.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterable

import numpy as np

#: Logical size of one boxed scalar (a long / double on the wire).
SCALAR_BYTES = 8
#: Per-container overhead of a tuple/list/dict entry (length + pointers).
CONTAINER_ENTRY_BYTES = 8
#: Sample size used when estimating a large homogeneous collection.
_SAMPLE = 32


def sizeof(obj: Any) -> int:
    """Best-effort logical byte size of ``obj``.

    numpy arrays are exact (``nbytes``); strings and bytes are exact; scalars
    cost :data:`SCALAR_BYTES`; containers are estimated from a sample of their
    elements so that metering a million-element partition costs O(1).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return SCALAR_BYTES
    # Objects with a size hint cooperate with the meter (RecordBatch,
    # EdgeBlock, ...): checked before the generic container scans so a
    # million-record batch meters in O(1) from its dtype.
    hint = getattr(obj, "logical_nbytes", None)
    if hint is not None:
        return int(hint() if callable(hint) else hint)
    if isinstance(obj, dict):
        return _sizeof_stream(obj.items(), len(obj))
    if isinstance(obj, (list, tuple)):
        return _sizeof_items(obj, len(obj))
    if isinstance(obj, (set, frozenset)):
        return _sizeof_stream(obj, len(obj))
    slots = getattr(obj, "__dict__", None)
    if slots:
        return CONTAINER_ENTRY_BYTES + sum(sizeof(v) for v in slots.values())
    return SCALAR_BYTES


def _sizeof_items(items: list, count: int) -> int:
    """Estimate a homogeneous sequence from a bounded sample."""
    if count == 0:
        return CONTAINER_ENTRY_BYTES
    if count <= _SAMPLE:
        body = sum(sizeof(x) for x in items)
    else:
        step = max(1, count // _SAMPLE)
        sample = items[::step][:_SAMPLE]
        body = int(sum(sizeof(x) for x in sample) / len(sample) * count)
    return CONTAINER_ENTRY_BYTES + count * CONTAINER_ENTRY_BYTES + body


def _sizeof_stream(items: Iterable[Any], count: int) -> int:
    """Estimate a homogeneous iterable from a bounded sample.

    Same sample indices (and therefore the same estimate) as
    :func:`_sizeof_items`, but drawn with ``itertools.islice`` so metering
    a large dict or set never materializes a full copy of it.
    """
    if count == 0:
        return CONTAINER_ENTRY_BYTES
    if count <= _SAMPLE:
        body = sum(sizeof(x) for x in items)
    else:
        step = max(1, count // _SAMPLE)
        sample = list(itertools.islice(items, 0, step * _SAMPLE, step))
        body = int(sum(sizeof(x) for x in sample) / len(sample) * count)
    return CONTAINER_ENTRY_BYTES + count * CONTAINER_ENTRY_BYTES + body


def sizeof_records(records: Any) -> int:
    """Logical size of an iterable of records already materialized as a list."""
    if isinstance(records, np.ndarray):
        return int(records.nbytes)
    if isinstance(records, list):
        return _sizeof_items(records, len(records))
    return sizeof(records)
