"""Cluster-wide metrics registry.

A single :class:`MetricsRegistry` per simulated cluster collects counters
(bytes shuffled, RPC calls, records processed, checkpoints written, ...),
gauges (point-in-time values) and histograms (distributions with p50/p95),
so experiments and ablation benches can report *why* one system beats
another, not just the end-to-end time.

Counters remain a flat map of name -> float and are the only thing
:meth:`MetricsRegistry.snapshot` returns, so code written against the
counter-only registry (including the benchmark suite) sees identical
snapshots whether or not histograms are populated.  The full structured
dump lives in :func:`repro.obs.export.metrics_to_dict`.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from collections import defaultdict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple

from repro.common.simclock import SimClock
from repro.common.sketch import QuantileSketch

#: Exact samples kept per histogram before switching to the sketch.
HISTOGRAM_MAX_EXACT = 8192


class Histogram:
    """A distribution of observed values with percentile queries.

    Up to :data:`HISTOGRAM_MAX_EXACT` samples are kept verbatim — sorting
    is deferred to the first percentile query (append is O(1), the hot
    path in big runs) — so percentiles are exact for every series a test
    asserts on.  Past the cap the samples fold into a
    :class:`~repro.common.sketch.QuantileSketch` and memory stays O(1)
    while p50/p95/p99 keep a 1% relative-error bound.  count/sum/min/max
    are tracked as scalars and stay exact in both regimes.
    """

    __slots__ = ("_samples", "_dirty", "_sum", "_count", "_min", "_max",
                 "_max_exact", "_sketch")

    def __init__(self, max_exact: int = HISTOGRAM_MAX_EXACT) -> None:
        self._samples: List[float] = []
        self._dirty = False
        self._sum = 0.0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._max_exact = max_exact
        self._sketch: QuantileSketch | None = None

    def observe(self, value: float) -> None:
        """Add one sample."""
        v = float(value)
        self._count += 1
        self._sum += value
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if self._sketch is not None:
            self._sketch.add(v)
            return
        self._samples.append(v)
        self._dirty = True
        if len(self._samples) > self._max_exact:
            self._sketch = QuantileSketch.from_samples(self._samples)
            self._samples = []
            self._dirty = False

    def _sorted_samples(self) -> List[float]:
        if self._dirty:
            self._samples.sort()
            self._dirty = False
        return self._samples

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return self._max if self._count else 0.0

    @property
    def sketched(self) -> bool:
        """Whether the series overflowed into the bounded-memory sketch."""
        return self._sketch is not None

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), linearly interpolated.

        Returns 0.0 for an empty histogram; the single sample for a
        one-sample histogram.  Exact below the sample cap; within the
        sketch's relative-error bound above it.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if self._sketch is not None:
            return self._sketch.percentile(q)
        values = self._sorted_samples()
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        pos = (len(values) - 1) * (q / 100.0)
        lo = int(pos)
        frac = pos - lo
        if lo + 1 >= len(values):
            return values[-1]
        return values[lo] * (1.0 - frac) + values[lo + 1] * frac

    def count_above(self, threshold: float) -> int:
        """Number of samples strictly greater than ``threshold``.

        The SLO engine diffs this between sim-clock ticks to classify
        per-window good/bad events.  Exact below the sample cap; bucket
        granularity above it.
        """
        if self._count == 0:
            return 0
        if self._sketch is not None:
            return self._sketch.count_above(threshold)
        values = self._sorted_samples()
        return len(values) - bisect_right(values, float(threshold))

    def summary(self) -> Dict[str, float]:
        """Compact description: count, sum, min/mean/max, p50/p95/p99."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "min": self.min,
            "mean": self.mean,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class Gauge:
    """A point-in-time value with high- and low-water marks.

    The marks initialize from the *first* ``set()`` — a gauge whose
    values are all negative reports that first value as its high-water
    mark, not a phantom 0.0.
    """

    __slots__ = ("value", "high", "low", "updates")

    def __init__(self) -> None:
        self.value = 0.0
        self.high = 0.0
        self.low = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Record the current value."""
        v = float(value)
        self.value = v
        if self.updates == 0:
            self.high = v
            self.low = v
        else:
            if v > self.high:
                self.high = v
            if v < self.low:
                self.low = v
        self.updates += 1


class MetricsRegistry:
    """Counters, gauges and histograms keyed by dotted names."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._recording: List[Tuple[str, str, float]] | None = None

    # -- counters ----------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> float:
        """Increment counter ``name`` by ``value`` and return the new total."""
        if self._recording is not None:
            self._recording.append(("inc", name, value))
        self._counters[name] += value
        return self._counters[name]

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def set_max(self, name: str, value: float) -> float:
        """Raise counter ``name`` to ``value`` if it is currently lower.

        An untouched counter reads 0.0 (see :meth:`get`), so 0.0 is also
        the floor for max-tracking: values below it are not stored, which
        keeps ``set_max`` and ``get`` consistent — a max-tracked counter
        never reads lower than the default a fresh counter reports.

        Returns:
            The counter's value after the update.
        """
        if self._recording is not None:
            self._recording.append(("set_max", name, value))
        if value > self._counters.get(name, 0.0):
            self._counters[name] = value
        return self._counters.get(name, 0.0)

    # -- histograms --------------------------------------------------------

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name`` (created on first use)."""
        if self._recording is not None:
            self._recording.append(("observe", name, value))
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """Histogram ``name``, created empty if it does not exist yet."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        return hist

    def histograms(self) -> Iterator[Tuple[str, Histogram]]:
        """All histograms, sorted by name."""
        return iter(sorted(self._histograms.items()))

    @contextmanager
    def timer(self, name: str, clock: SimClock | None = None):
        """Time a block and observe the elapsed seconds in histogram ``name``.

        Args:
            clock: when given, elapsed *simulated* seconds are measured on
                this clock; otherwise wall-clock seconds via
                :func:`time.perf_counter`.
        """
        start = clock.now_s if clock is not None else time.perf_counter()
        try:
            yield self
        finally:
            end = clock.now_s if clock is not None else time.perf_counter()
            self.observe(name, end - start)

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name``."""
        if self._recording is not None:
            self._recording.append(("set_gauge", name, value))
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.set(value)

    def get_gauge(self, name: str) -> float:
        """Current value of gauge ``name`` (0.0 if never set)."""
        gauge = self._gauges.get(name)
        return gauge.value if gauge is not None else 0.0

    def gauge_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Copy of every gauge: ``{name: {value, high, low, updates}}``."""
        return {
            name: {"value": g.value, "high": g.high, "low": g.low,
                   "updates": float(g.updates)}
            for name, g in sorted(self._gauges.items())
        }

    # -- event recording & replay ------------------------------------------
    #
    # The process pool (repro.dataflow.pool) runs tasks in forked workers,
    # so their metric updates land in a *copy* of this registry.  A worker
    # records every update it makes as an ordered event list; the driver
    # replays those events against its own registry in deterministic task
    # order.  Because counter increments are computed independently of the
    # counter's current value, replay performs the identical sequence of
    # IEEE float additions a serial run would — bit-identical totals.

    def begin_recording(self) -> None:
        """Start capturing every update as an ordered event list."""
        self._recording = []

    def end_recording(self) -> List[Tuple[str, str, float]]:
        """Stop capturing; returns the events recorded since ``begin``."""
        events = self._recording if self._recording is not None else []
        self._recording = None
        return events

    def replay(self, events: List[Tuple[str, str, float]]) -> None:
        """Apply a recorded event list to this registry, in order."""
        counters = self._counters
        for kind, name, value in events:
            if kind == "inc":
                counters[name] += value
            elif kind == "observe":
                self.observe(name, value)
            elif kind == "set_gauge":
                self.set_gauge(name, value)
            elif kind == "set_max":
                self.set_max(name, value)
            else:
                raise ValueError(f"unknown metric event kind {kind!r}")

    # -- views & maintenance ----------------------------------------------

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view that prepends ``prefix + '.'`` to every metric name.

        Lets a subsystem write ``m.inc("polls")`` instead of hand-
        concatenating ``"ingest.polls"`` strings at every call site.
        """
        return ScopedMetrics(self, prefix)

    def snapshot(self) -> Dict[str, float]:
        """Immutable copy of all counters (counters only, see module doc)."""
        return dict(self._counters)

    def reset(self) -> None:
        """Drop every counter, histogram and gauge."""
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def format(self, prefix: str = "") -> str:
        """Human-readable dump of counters, optionally filtered by prefix."""
        lines = [
            f"{name:48s} {value:,.3f}"
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        ]
        return "\n".join(lines)


class ScopedMetrics:
    """Prefix-applying view over a :class:`MetricsRegistry`."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix.rstrip(".")

    def _name(self, name: str) -> str:
        return f"{self._prefix}.{name}"

    def inc(self, name: str, value: float = 1.0) -> float:
        """Increment the prefixed counter."""
        return self._registry.inc(self._name(name), value)

    def get(self, name: str) -> float:
        """Read the prefixed counter."""
        return self._registry.get(self._name(name))

    def set_max(self, name: str, value: float) -> float:
        """Max-track the prefixed counter."""
        return self._registry.set_max(self._name(name), value)

    def observe(self, name: str, value: float) -> None:
        """Observe into the prefixed histogram."""
        self._registry.observe(self._name(name), value)

    def histogram(self, name: str) -> Histogram:
        """The prefixed histogram."""
        return self._registry.histogram(self._name(name))

    def set_gauge(self, name: str, value: float) -> None:
        """Set the prefixed gauge."""
        self._registry.set_gauge(self._name(name), value)

    def timer(self, name: str, clock: SimClock | None = None):
        """Time a block into the prefixed histogram."""
        return self._registry.timer(self._name(name), clock)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A further-nested scope."""
        return ScopedMetrics(self._registry, self._name(prefix))


# Well-known counter names, kept here so subsystems agree on spelling.
SHUFFLE_BYTES_WRITTEN = "dataflow.shuffle.bytes_written"
SHUFFLE_BYTES_READ = "dataflow.shuffle.bytes_read"
SHUFFLE_RECORDS = "dataflow.shuffle.records"
TASKS_LAUNCHED = "dataflow.tasks.launched"
TASKS_FAILED = "dataflow.tasks.failed"
STAGES_RUN = "dataflow.stages.run"
RDD_RECORDS = "dataflow.records.processed"
PS_PULL_BYTES = "ps.pull.bytes"
PS_PUSH_BYTES = "ps.push.bytes"
PS_PULLS = "ps.pull.calls"
PS_PUSHES = "ps.push.calls"
PS_PSFUNC_CALLS = "ps.psfunc.calls"
PS_CHECKPOINTS = "ps.checkpoint.count"
PS_CHECKPOINT_BYTES = "ps.checkpoint.bytes"
HDFS_BYTES_READ = "hdfs.bytes_read"
HDFS_BYTES_WRITTEN = "hdfs.bytes_written"
RPC_CALLS = "net.rpc.calls"
RPC_BYTES = "net.rpc.bytes"
CONTAINERS_RESTARTED = "yarn.containers.restarted"
TASKS_SPECULATED = "dataflow.tasks.speculated"
CHAOS_FAULTS = "chaos.faults.fired"
PS_RECOVERIES = "ps.recovery.count"
PS_ROLLBACKS = "ps.recovery.rollbacks"

ALERTS_FIRED = "obs.alerts.fired"

# Well-known process-pool names (the ``dataflow.pool.*`` family; host-side
# execution detail, deliberately outside the simulated-cost contract — see
# docs/observability.md).  ``POOL_WORKERS_G`` is a gauge; the rest are
# counters.
POOL_TASKS_DISPATCHED = "dataflow.pool.tasks.dispatched"
POOL_TASKS_REPLAYED = "dataflow.pool.tasks.replayed"
POOL_STAGES_PARALLEL = "dataflow.pool.stages.parallel"
POOL_STAGES_SERIAL = "dataflow.pool.stages.serial_fallback"
POOL_PACKAGES_INVALID = "dataflow.pool.packages.invalid"
POOL_SHM_BYTES = "dataflow.pool.shm.bytes_mapped"
POOL_PICKLE_FALLBACKS = "dataflow.pool.pickle_fallbacks"
POOL_WORKERS_G = "dataflow.pool.workers"

# Well-known histogram names (populated via ``MetricsRegistry.observe``).
TASK_DURATION_H = "dataflow.task.duration_s"
SHUFFLE_WRITE_H = "dataflow.shuffle.write_bytes_dist"
SHUFFLE_FETCH_H = "dataflow.shuffle.fetch_bytes_dist"
PS_REQUEST_H = "ps.request.bytes_dist"
PS_PULL_LATENCY_H = "ps.pull.latency_s"
PS_PUSH_LATENCY_H = "ps.push.latency_s"
RPC_LATENCY_H = "net.rpc.latency_s"

# Well-known gauge names (liveness, sampled by the telemetry collector).
EXECUTORS_ALIVE_G = "dataflow.executors.alive"
PS_SERVERS_ALIVE_G = "ps.servers.alive"
PS_SERVERS_TOTAL_G = "ps.servers.total"

# Well-known serving-plane names (the ``serve.*`` family; see
# docs/observability.md for the catalogue).
PS_CACHE_EVICTIONS = "ps.cache.evictions"
SERVE_REQUESTS = "serve.requests.offered"
SERVE_SERVED = "serve.requests.served"
SERVE_BATCHES = "serve.batches"
SERVE_RATE_LIMITED = "serve.limiter.rejected"
SERVE_SHED = "serve.limiter.shed"
SERVE_EVICTED_CAPACITY = "serve.queue.evicted_capacity"
SERVE_EVICTED_DEADLINE = "serve.queue.evicted_deadline"
SERVE_CACHE_HITS = "serve.cache.hits"
SERVE_CACHE_MISSES = "serve.cache.misses"
SERVE_CACHE_EVICTIONS = "serve.cache.evictions"
SERVE_LATENCY_H = "serve.latency_s"
SERVE_DEGRADED_LATENCY_H = "serve.latency.degraded_s"
SERVE_BATCH_SIZE_H = "serve.batch.size_dist"
SERVE_QUEUE_DEPTH_G = "serve.queue.depth"

# Well-known streaming-ingest and incremental-recompute names (the
# ``ingest.*`` and ``streaming.*`` families; catalogued in
# docs/observability.md, semantics in docs/streaming.md).  ``polls``
# counts only polls that consumed records; empty polls (e.g. ``drain``'s
# terminating probe) go to ``polls.empty`` so records-per-poll stays an
# honest batch-size signal.
INGEST_POLLS = "ingest.polls"
INGEST_POLLS_EMPTY = "ingest.polls.empty"
INGEST_RECORDS = "ingest.records"
STREAM_WINDOWS = "streaming.windows"
STREAM_EDGES_ADDED = "streaming.edges.added"
STREAM_EDGES_REMOVED = "streaming.edges.removed"
STREAM_VERTICES_DROPPED = "streaming.vertices.dropped"
STREAM_DIRTY_VERTICES = "streaming.dirty_vertices"
STREAM_EDGES_LIVE_G = "streaming.edges.live"
STREAM_COST_INC_H = "streaming.window.cost_incremental_s"
STREAM_COST_FULL_H = "streaming.window.cost_full_s"
STREAM_COST_RATIO_G = "streaming.window.cost_ratio"
