"""Cluster-wide metrics registry.

A single :class:`MetricsRegistry` per simulated cluster collects counters
(bytes shuffled, RPC calls, records processed, checkpoints written, ...) so
experiments and ablation benches can report *why* one system beats another,
not just the end-to-end time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class MetricsRegistry:
    """A flat map of counter name -> float, with convenience helpers."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)

    def inc(self, name: str, value: float = 1.0) -> float:
        """Increment counter ``name`` by ``value`` and return the new total."""
        self._counters[name] += value
        return self._counters[name]

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 if never incremented)."""
        return self._counters.get(name, 0.0)

    def set_max(self, name: str, value: float) -> float:
        """Raise counter ``name`` to ``value`` if it is currently lower."""
        if value > self._counters.get(name, float("-inf")):
            self._counters[name] = value
        return self._counters[name]

    def snapshot(self) -> Dict[str, float]:
        """Immutable copy of all counters."""
        return dict(self._counters)

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def format(self, prefix: str = "") -> str:
        """Human-readable dump of counters, optionally filtered by prefix."""
        lines = [
            f"{name:48s} {value:,.3f}"
            for name, value in sorted(self._counters.items())
            if name.startswith(prefix)
        ]
        return "\n".join(lines)


# Well-known counter names, kept here so subsystems agree on spelling.
SHUFFLE_BYTES_WRITTEN = "dataflow.shuffle.bytes_written"
SHUFFLE_BYTES_READ = "dataflow.shuffle.bytes_read"
SHUFFLE_RECORDS = "dataflow.shuffle.records"
TASKS_LAUNCHED = "dataflow.tasks.launched"
TASKS_FAILED = "dataflow.tasks.failed"
STAGES_RUN = "dataflow.stages.run"
RDD_RECORDS = "dataflow.records.processed"
PS_PULL_BYTES = "ps.pull.bytes"
PS_PUSH_BYTES = "ps.push.bytes"
PS_PULLS = "ps.pull.calls"
PS_PUSHES = "ps.push.calls"
PS_PSFUNC_CALLS = "ps.psfunc.calls"
PS_CHECKPOINTS = "ps.checkpoint.count"
PS_CHECKPOINT_BYTES = "ps.checkpoint.bytes"
HDFS_BYTES_READ = "hdfs.bytes_read"
HDFS_BYTES_WRITTEN = "hdfs.bytes_written"
RPC_CALLS = "net.rpc.calls"
RPC_BYTES = "net.rpc.bytes"
CONTAINERS_RESTARTED = "yarn.containers.restarted"
