"""Logical clocks for the simulated cluster.

Every container (Spark executor, PS server, the driver) owns a
:class:`SimClock`; metered operations advance the owning clock.  A barrier —
the BSP synchronization of the parameter server or the end of a dataflow
stage — aligns a group of clocks to their maximum, which is exactly how
wall-clock time behaves on a real synchronous cluster: a stage is as slow as
its slowest participant.

:class:`TaskCost` is a small accumulator threaded through task execution so
that the cost of one task can be inspected (and attributed to the executor
that ran it) without touching global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class TaskCost:
    """Per-task simulated cost breakdown, in seconds.

    Attributes:
        cpu_s: compute time.
        net_s: network transfer time (RPCs, shuffle fetches, PS pull/push).
        disk_s: disk read/write time (shuffle spill, HDFS IO, checkpoints).
    """

    cpu_s: float = 0.0
    net_s: float = 0.0
    disk_s: float = 0.0

    @property
    def total_s(self) -> float:
        """Total simulated seconds consumed by the task."""
        return self.cpu_s + self.net_s + self.disk_s

    def add(self, other: "TaskCost") -> None:
        """Fold another cost breakdown into this one."""
        self.cpu_s += other.cpu_s
        self.net_s += other.net_s
        self.disk_s += other.disk_s

    def copy(self) -> "TaskCost":
        """Return an independent copy of this cost breakdown."""
        return TaskCost(self.cpu_s, self.net_s, self.disk_s)


@dataclass
class SimClock:
    """Monotonic logical clock owned by one container.

    Attributes:
        name: container name, for diagnostics.
        now_s: current simulated time in seconds.
    """

    name: str = "clock"
    now_s: float = 0.0
    busy_s: float = field(default=0.0)

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` of busy work; returns new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self.now_s += seconds
        self.busy_s += seconds
        return self.now_s

    def advance_to(self, when_s: float) -> float:
        """Advance (idle) to absolute time ``when_s`` if it is in the future."""
        if when_s > self.now_s:
            self.now_s = when_s
        return self.now_s

    def reset(self) -> None:
        """Zero the clock (used between independent experiment runs)."""
        self.now_s = 0.0
        self.busy_s = 0.0


def barrier(clocks: Iterable[SimClock]) -> float:
    """Align a group of clocks to their maximum, as a BSP barrier does.

    Returns:
        The barrier time, i.e. the maximum ``now_s`` across the group.
    """
    clocks = list(clocks)
    if not clocks:
        return 0.0
    t = max(c.now_s for c in clocks)
    for c in clocks:
        c.advance_to(t)
    return t
