"""Cluster and job configuration.

Mirrors the resource allocations of the paper's evaluation (Sec. V): a job
asks Yarn for N Spark executors of a given memory grant and, for PSGraph,
M parameter servers of a given grant.  Because the reproduction scales the
datasets down by a factor ``f``, the same ``f`` is applied to the per-
container memory grants via :meth:`ClusterConfig.scaled`, preserving the
memory-pressure behaviour (which executor OOMs and which does not).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.costs import DEFAULT_COST_MODEL, CostModel
from repro.common.errors import ConfigError

GB = 1024 ** 3
MB = 1024 ** 2


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of one simulated job's resources.

    Attributes:
        num_executors: number of Spark executor containers.
        executor_mem_bytes: memory grant per executor.
        executor_cores: cores per executor (parallel task slots).
        num_servers: number of parameter-server containers (0 = no PS).
        server_mem_bytes: memory grant per parameter server.
        cost_model: hardware constants for the simulated cluster.
        default_parallelism: default number of RDD partitions; falls back
            to ``num_executors * executor_cores`` when 0.
    """

    num_executors: int = 4
    executor_mem_bytes: int = 4 * GB
    executor_cores: int = 1
    num_servers: int = 0
    server_mem_bytes: int = 0
    cost_model: CostModel = DEFAULT_COST_MODEL
    default_parallelism: int = 0

    def __post_init__(self) -> None:
        if self.num_executors <= 0:
            raise ConfigError("num_executors must be positive")
        if self.executor_cores <= 0:
            raise ConfigError("executor_cores must be positive")
        if self.num_servers < 0:
            raise ConfigError("num_servers must be non-negative")
        if self.executor_mem_bytes <= 0:
            raise ConfigError("executor_mem_bytes must be positive")
        if self.num_servers > 0 and self.server_mem_bytes <= 0:
            raise ConfigError("server_mem_bytes must be positive with PS")

    @property
    def parallelism(self) -> int:
        """Effective default parallelism for RDDs created without one."""
        if self.default_parallelism > 0:
            return self.default_parallelism
        return self.num_executors * self.executor_cores

    def scaled(self, factor: float) -> "ClusterConfig":
        """Scale per-container memory grants by ``factor`` (dataset scaling).

        Container *counts* are preserved — the paper's parallelism stays —
        while memory shrinks with the dataset so the OOM boundary is kept.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return replace(
            self,
            executor_mem_bytes=max(1, int(self.executor_mem_bytes * factor)),
            server_mem_bytes=(
                max(1, int(self.server_mem_bytes * factor))
                if self.num_servers > 0
                else 0
            ),
        )


def psgraph_config_ds1() -> ClusterConfig:
    """Paper's PSGraph allocation for DS1: 100 executors (20GB) + 20 PS (15GB)."""
    return ClusterConfig(
        num_executors=100,
        executor_mem_bytes=20 * GB,
        num_servers=20,
        server_mem_bytes=15 * GB,
    )


def graphx_config_ds1() -> ClusterConfig:
    """Paper's GraphX allocation for DS1: 100 executors (55GB)."""
    return ClusterConfig(num_executors=100, executor_mem_bytes=55 * GB)


def psgraph_config_ds2() -> ClusterConfig:
    """Paper's PSGraph allocation for DS2: 300 executors (30GB) + 200 PS (30GB)."""
    return ClusterConfig(
        num_executors=300,
        executor_mem_bytes=30 * GB,
        num_servers=200,
        server_mem_bytes=30 * GB,
    )


def graphx_config_ds2() -> ClusterConfig:
    """Paper's GraphX allocation for DS2: 500 executors (55GB)."""
    return ClusterConfig(num_executors=500, executor_mem_bytes=55 * GB)


def psgraph_config_ds3() -> ClusterConfig:
    """Paper's PSGraph allocation for DS3: 30 executors + 30 PS, 10GB each."""
    return ClusterConfig(
        num_executors=30,
        executor_mem_bytes=10 * GB,
        num_servers=30,
        server_mem_bytes=10 * GB,
    )


def euler_config_ds3() -> ClusterConfig:
    """Paper's Euler allocation for DS3: 90 executors (50GB)."""
    return ClusterConfig(num_executors=90, executor_mem_bytes=50 * GB)
