"""Streaming quantile sketch with O(1) memory per series.

A DDSketch-style log-bucketed sketch: values are mapped to exponentially
sized buckets so any percentile query carries a bounded *relative* error
(``alpha``, default 1%).  High-volume histograms (per-request latencies in
long simulated runs) switch to this sketch once their exact sample list
exceeds a cap, keeping memory bounded while p50/p95/p99 stay accurate to
within the configured relative error.

Everything here is pure float arithmetic on sim-derived values — no wall
clock, no randomness — so sketched percentiles are bit-for-bit
reproducible across seeded double-runs (the ``repro.lint`` harness diffs
them).
"""

from __future__ import annotations

import math
from typing import Dict, List


class QuantileSketch:
    """Log-bucketed streaming quantiles with bounded relative error.

    Non-positive values (rare for the latency/byte series this backs,
    but legal) land in a dedicated underflow bucket that reports the
    tracked exact minimum.
    """

    __slots__ = ("alpha", "_gamma", "_log_gamma", "_buckets", "_zero",
                 "_count", "_min", "_max", "_max_buckets")

    def __init__(self, alpha: float = 0.01,
                 max_buckets: int = 2048) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha out of range: {alpha}")
        self.alpha = alpha
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero = 0            # count of values <= 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        self._max_buckets = max_buckets

    # -- ingest ------------------------------------------------------------

    def add(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the sketch."""
        v = float(value)
        self._count += count
        if v < self._min:
            self._min = v
        if v > self._max:
            self._max = v
        if v <= 0.0:
            self._zero += count
            return
        key = math.ceil(math.log(v) / self._log_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + count
        if len(self._buckets) > self._max_buckets:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Merge the two lowest buckets (DDSketch collapse policy)."""
        keys = sorted(self._buckets)
        lo, nxt = keys[0], keys[1]
        self._buckets[nxt] += self._buckets.pop(lo)

    # -- queries -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Total observations folded in."""
        return self._count

    @property
    def min(self) -> float:
        """Exact smallest value (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Exact largest value (0.0 when empty)."""
        return self._max if self._count else 0.0

    def _bucket_value(self, key: int) -> float:
        """Representative value for bucket ``key`` (geometric midpoint)."""
        upper = self._gamma ** key
        return 2.0 * upper / (1.0 + self._gamma)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), within relative error.

        Exact at the extremes: q=0 returns the tracked minimum, q=100 the
        tracked maximum; everything in between is clamped to that range.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 100.0:
            return self.max
        rank = (q / 100.0) * (self._count - 1)
        seen = float(self._zero)
        if rank < seen:
            return max(self._min, 0.0) if self._zero < self._count \
                else self._min
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                return min(max(self._bucket_value(key), self._min),
                           self._max)
        return self._max

    def count_above(self, threshold: float) -> int:
        """Number of observations strictly greater than ``threshold``.

        Resolved at bucket granularity: a bucket counts as "above" when
        its representative value exceeds the threshold, so the answer
        carries the sketch's relative error at the boundary bucket.
        """
        t = float(threshold)
        if self._count == 0 or t >= self._max:
            return 0
        if t < self._min:
            return self._count
        total = 0
        for key, n in self._buckets.items():
            if self._bucket_value(key) > t:
                total += n
        if t < 0.0:
            total += self._zero
        return total

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly dump (bucket keys sorted for determinism)."""
        return {
            "alpha": self.alpha,
            "count": self._count,
            "min": self.min,
            "max": self.max,
            "zero": self._zero,
            "buckets": [[k, self._buckets[k]]
                        for k in sorted(self._buckets)],
        }

    @classmethod
    def from_samples(cls, samples: List[float], alpha: float = 0.01,
                     max_buckets: int = 2048) -> "QuantileSketch":
        """Seed a sketch from an exact sample list."""
        sk = cls(alpha=alpha, max_buckets=max_buckets)
        for v in samples:
            sk.add(v)
        return sk


def merge(a: QuantileSketch, b: QuantileSketch) -> QuantileSketch:
    """Combine two sketches of equal ``alpha`` into a new one."""
    if a.alpha != b.alpha:
        raise ValueError("cannot merge sketches with different alpha")
    out = QuantileSketch(alpha=a.alpha, max_buckets=a._max_buckets)
    for src in (a, b):
        if src._count == 0:
            continue
        out._count += src._count
        out._zero += src._zero
        out._min = min(out._min, src._min)
        out._max = max(out._max, src._max)
        for key, n in src._buckets.items():
            out._buckets[key] = out._buckets.get(key, 0) + n
    while len(out._buckets) > out._max_buckets:
        out._collapse_lowest()
    return out
