"""Seeded random-number helpers.

Everything stochastic in the reproduction — graph generation, negative
sampling, neighbor sampling, weight init — draws from generators created
here, so experiments are bit-reproducible given a seed.
"""

from __future__ import annotations

import numpy as np

#: Seed used by examples and benches unless overridden.
DEFAULT_SEED = 20200420  # ICDE 2020, Dallas — the paper's venue date.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a numpy Generator from ``seed`` (default: DEFAULT_SEED)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def derive_seed(seed: int, *streams: int | str) -> int:
    """Derive a child seed from a parent seed and a stream identifier.

    Used to give each partition / worker / epoch its own independent stream
    without correlated draws.
    """
    mask = (1 << 64) - 1
    h = int(seed) & mask
    for s in streams:
        if isinstance(s, str):
            s = sum((i + 1) * b for i, b in enumerate(s.encode("utf-8")))
        h = (h * 6364136223846793005
             + (int(s) % (2 ** 63)) + 1442695040888963407) & mask
    return h % (2 ** 63 - 1)
