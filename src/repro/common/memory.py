"""Per-container memory accounting.

Every simulated container (Spark executor, parameter server) owns a
:class:`MemoryTracker` sized by its Yarn grant.  Subsystems charge logical
bytes for everything they materialize — cached RDD partitions, shuffle
buffers, join temp tables, PS model partitions — and release them when the
data is dropped.  Exceeding the grant raises
:class:`repro.common.errors.SimulatedOOMError`, which is how the reproduction
produces the "OOM" cells of Figure 6 for GraphX.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.errors import SimulatedOOMError


@dataclass
class MemoryTracker:
    """Tracks logical-byte allocations against a fixed capacity.

    Attributes:
        container: name of the owning container (for error messages).
        capacity: memory grant in bytes.  ``None`` disables enforcement
            (useful in unit tests of unrelated machinery).
    """

    container: str
    capacity: int | None
    used: int = 0
    peak: int = 0
    _by_tag: Dict[str, int] = field(default_factory=dict)

    def allocate(self, nbytes: int, tag: str = "untagged") -> int:
        """Charge ``nbytes`` under ``tag``; raise SimulatedOOMError on overflow."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate {nbytes} bytes")
        nbytes = int(nbytes)
        if self.capacity is not None and self.used + nbytes > self.capacity:
            raise SimulatedOOMError(
                self.container, nbytes, self.used, self.capacity, what=tag
            )
        self.used += nbytes
        self._by_tag[tag] = self._by_tag.get(tag, 0) + nbytes
        if self.used > self.peak:
            self.peak = self.used
        return self.used

    def release(self, nbytes: int, tag: str = "untagged") -> int:
        """Return ``nbytes`` previously charged under ``tag``."""
        if nbytes < 0:
            raise ValueError(f"cannot release {nbytes} bytes")
        nbytes = int(nbytes)
        self.used = max(0, self.used - nbytes)
        if tag in self._by_tag:
            remaining = self._by_tag[tag] - nbytes
            if remaining > 0:
                self._by_tag[tag] = remaining
            else:
                del self._by_tag[tag]
        return self.used

    def release_tag(self, tag: str) -> int:
        """Release everything charged under ``tag``; returns bytes freed."""
        freed = self._by_tag.pop(tag, 0)
        self.used = max(0, self.used - freed)
        return freed

    def usage_by_tag(self) -> Dict[str, int]:
        """Snapshot of live allocations per tag."""
        return dict(self._by_tag)

    @property
    def free(self) -> int | None:
        """Remaining bytes, or ``None`` when enforcement is disabled."""
        if self.capacity is None:
            return None
        return self.capacity - self.used

    def reset(self) -> None:
        """Drop all charges (used between independent runs)."""
        self.used = 0
        self.peak = 0
        self._by_tag.clear()
