"""Columnar record batches for the dataflow hot paths.

The simulator's costs are *simulated*, but the host-side work of moving a
partition through shuffle bucketing, map-side combine and metering is real
Python, and at a million records per partition the interpreter — not the
cost model — dominates wall-clock.  PSGraph itself makes the analogous
move on the JVM: "the PS agent pulls and pushes data in primitive arrays"
(Sec. III), and related systems (Tencent's Spark network-embedding
pipeline, GraphTheta) attribute their throughput to keeping partitions in
primitive arrays instead of boxed records.

A :class:`RecordBatch` is a numpy key column plus an aligned value column
(1-D scalars or a 2-D row matrix), with a boxed-object fallback for values
numpy cannot hold.  Partitions may carry batches *instead of* Python lists
of ``(key, value)`` pairs; the shuffle layer detects them and buckets with
``np.argsort`` on the partition-id vector, runs numeric map-side combines
as vectorized segment-reduces, and meters them in O(1).

**Cost transparency is the contract.**  A batch is a host-side
representation change only: it must charge the *identical* simulated
costs, logical bytes, metrics and span sequence as the boxed record list
it replaces.  :meth:`RecordBatch.logical_nbytes` therefore computes the
byte size the equivalent boxed list would have metered (container entries
plus per-pair tuples), not the raw ``ndarray.nbytes`` — the simulated
distinction between boxed and primitive processing stays where it always
was, in the cost model's ``cpu_record_s`` vs ``cpu_primitive_record_s``
and the explicit JVM-overhead multipliers.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from repro.common.sizeof import (
    CONTAINER_ENTRY_BYTES,
    SCALAR_BYTES,
    sizeof,
    sizeof_records,
)

#: Boxed reducer callables for the vectorizable numeric combine ops.
COMBINE_FNS = {
    "add": lambda a, b: a + b,
    "min": lambda a, b: a if a <= b else b,
    "max": lambda a, b: a if a >= b else b,
}

#: numpy ufuncs implementing the same ops as a segment-reduce.
COMBINE_UFUNCS = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


class RecordBatch:
    """A columnar block of ``(key, value)`` records.

    Args:
        keys: 1-D array, one key per record.
        values: either an aligned 1-D array (scalar values), a 2-D array
            (one row per record), or a plain list of arbitrary objects
            (the boxed fallback — carried but not vectorizable).
    """

    __slots__ = ("keys", "values")

    def __init__(self, keys: np.ndarray, values: Any) -> None:
        self.keys = np.asarray(keys)
        if self.keys.ndim != 1:
            raise ValueError("RecordBatch keys must be 1-D")
        if self.keys.dtype.kind not in "iuf":
            raise ValueError(
                f"RecordBatch keys must be numeric, got {self.keys.dtype}"
            )
        if isinstance(values, np.ndarray):
            if len(values) != len(self.keys):
                raise ValueError(
                    f"keys/values length mismatch "
                    f"({len(self.keys)} vs {len(values)})"
                )
        elif len(values) != len(self.keys):
            raise ValueError("keys/values length mismatch")
        self.values = values

    # -- basic shape -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def num_records(self) -> int:
        """Number of logical records in the batch."""
        return len(self.keys)

    @property
    def is_columnar(self) -> bool:
        """True when the value column is a numpy array (vectorizable)."""
        return isinstance(self.values, np.ndarray)

    def __repr__(self) -> str:
        kind = (f"values[{self.values.dtype}]" if self.is_columnar
                else "boxed-values")
        return f"RecordBatch({len(self)} records, {kind})"

    # -- metering ----------------------------------------------------------

    def logical_nbytes(self) -> int:
        """Logical bytes of the *equivalent boxed record list*, in O(1).

        The boxed list of ``(key, value)`` pairs would meter as one list
        entry per record plus, per pair, a 2-tuple (three container
        entries) holding a scalar key and the value.  Computing this from
        the dtype keeps million-row metering constant-time while charging
        the exact same bytes as the records it stands in for.
        """
        n = len(self.keys)
        if n == 0:
            return CONTAINER_ENTRY_BYTES
        if self.is_columnar:
            if self.values.ndim == 1:
                value_bytes = SCALAR_BYTES
            else:
                value_bytes = int(
                    self.values.shape[1] * self.values.itemsize
                )
            per_record = 4 * CONTAINER_ENTRY_BYTES + SCALAR_BYTES + value_bytes
            return CONTAINER_ENTRY_BYTES + n * per_record
        # Boxed fallback: sample pairs exactly the way sizeof would sample
        # the materialized list, without materializing it.
        step = max(1, n // 32)
        sample = list(itertools.islice(self.to_pairs(), 0, step * 32, step))
        body = sum(sizeof(p) for p in sample)
        if n > len(sample):
            body = int(body / len(sample) * n)
        return CONTAINER_ENTRY_BYTES + n * CONTAINER_ENTRY_BYTES + body

    # -- conversions -------------------------------------------------------

    def to_pairs(self) -> Iterator[Tuple[Any, Any]]:
        """Yield boxed ``(key, value)`` pairs (the explode fallback)."""
        keys = self.keys.tolist()
        if self.is_columnar and self.values.ndim == 1:
            return zip(keys, self.values.tolist())
        if self.is_columnar:
            return zip(keys, (self.values[i] for i in range(len(keys))))
        return zip(keys, self.values)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[Any, Any]],
                   key_dtype: Any = None) -> "RecordBatch":
        """Build a batch from boxed pairs, columnar when values allow it.

        Raises ``ValueError`` when the keys are not numeric.
        """
        items = list(pairs)
        keys = np.asarray([k for k, _v in items], dtype=key_dtype)
        raw = [v for _k, v in items]
        try:
            values: Any = np.asarray(raw)
            if values.dtype == object:
                values = raw
        except (ValueError, TypeError):
            values = raw
        return cls(keys, values)

    @classmethod
    def concat(cls, batches: Sequence["RecordBatch"]) -> "RecordBatch":
        """Concatenate several batches into one (columnar stays columnar)."""
        if len(batches) == 1:
            return batches[0]
        keys = np.concatenate([b.keys for b in batches])
        if all(b.is_columnar for b in batches):
            values: Any = np.concatenate([b.values for b in batches])
        else:
            values = [v for b in batches for _k, v in b.to_pairs()]
        return cls(keys, values)

    def select(self, index: np.ndarray) -> "RecordBatch":
        """A new batch of the records at ``index`` (in index order)."""
        if self.is_columnar:
            return RecordBatch(self.keys[index], self.values[index])
        return RecordBatch(
            self.keys[index], [self.values[i] for i in index.tolist()]
        )


# ----------------------------------------------------------------------
# shared-memory column transport (used by repro.dataflow.pool)
# ----------------------------------------------------------------------
#
# A forked pool worker ships columnar batches back to the driver by
# copying their numpy columns into one POSIX shared-memory segment and
# sending only (segment name, column descriptors) through the pipe; the
# driver maps the segment zero-copy, adopts the columns into private
# arrays, and unlinks the segment.  Lifecycle contract:
#
#   * the *exporter* creates the segment, is untracked from the
#     ``resource_tracker`` (the importer owns destruction), and calls
#     ``close()`` once the descriptors have been delivered;
#   * the *importer* attaches, copies the columns out, then ``close()`` +
#     ``unlink()`` — exactly once, even for packages it later discards.
#
# Boxed (non-columnar) batches cannot be exported; callers fall back to
# pickling those through the pipe (counted by ``dataflow.pool``).

#: Byte alignment of each column inside a shared-memory segment.
SHM_ALIGN = 16


def _shm_untrack(shm: Any) -> None:
    """Detach a freshly *created* ``shm`` from the resource tracker.

    The exporter hands segment ownership to the importer over a pipe, so
    the exporting process must not let its tracker unlink the segment when
    the process exits (pool workers leave via ``os._exit``).  Attach-side
    registration is left alone: ``SharedMemory.unlink()`` unregisters, so
    the importer's register/unregister pair balances on its own.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def shm_discard(shm: Any) -> None:
    """Destroy an exported-but-never-sent segment in the exporting process.

    Re-registers the (untracked) name first so the unregister inside
    ``unlink()`` finds a matching entry in the tracker's cache.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already destroyed
        pass


def shm_export(batches: Sequence[RecordBatch]) -> Tuple[Any, int, List[Tuple]]:
    """Copy the columns of columnar batches into one shared-memory segment.

    Returns ``(shm, nbytes, descriptors)`` where ``descriptors[i]`` is
    ``((key_offset, key_dtype, key_shape), (val_offset, val_dtype,
    val_shape))`` for ``batches[i]``.  The caller must ``close()`` the
    returned segment after the descriptors have been sent; the importer
    unlinks it (see module comment for the full lifecycle).

    Raises ``ValueError`` if any batch is not columnar.
    """
    from multiprocessing import shared_memory

    plan: List[Tuple[int, np.ndarray, int, np.ndarray]] = []
    total = 0
    for b in batches:
        if not b.is_columnar:
            raise ValueError("shm_export requires columnar batches")
        keys = np.ascontiguousarray(b.keys)
        values = np.ascontiguousarray(b.values)
        koff = -(-total // SHM_ALIGN) * SHM_ALIGN
        voff = -(-(koff + keys.nbytes) // SHM_ALIGN) * SHM_ALIGN
        total = voff + values.nbytes
        plan.append((koff, keys, voff, values))
    shm = shared_memory.SharedMemory(create=True, size=max(1, total))
    _shm_untrack(shm)
    descriptors: List[Tuple] = []
    for koff, keys, voff, values in plan:
        for off, arr in ((koff, keys), (voff, values)):
            if arr.nbytes:
                view = np.frombuffer(
                    shm.buf, dtype=arr.dtype, count=arr.size, offset=off
                )
                view[:] = arr.reshape(-1)
                del view
        descriptors.append((
            (koff, str(keys.dtype), keys.shape),
            (voff, str(values.dtype), values.shape),
        ))
    return shm, total, descriptors


def _shm_read_column(buf: Any, desc: Tuple) -> np.ndarray:
    offset, dtype, shape = desc
    count = int(np.prod(shape)) if shape else 1
    if count == 0:
        return np.empty(shape, dtype=np.dtype(dtype))
    view = np.frombuffer(buf, dtype=np.dtype(dtype), count=count,
                         offset=offset)
    out = view.reshape(shape).copy()
    del view
    return out


def shm_import(name: str, descriptors: List[Tuple]) -> List[RecordBatch]:
    """Adopt batches exported by :func:`shm_export` and destroy the segment.

    Attaches the named segment, copies each described column pair into
    private arrays, then closes *and unlinks* it — the importer is the
    segment's terminal owner, so this runs exactly once per export even
    when the adopted batches are later discarded.
    """
    from multiprocessing import shared_memory

    # Attaching registers the name with the resource tracker; ``unlink()``
    # below unregisters it — balanced, so no explicit untrack here.
    shm = shared_memory.SharedMemory(name=name)
    try:
        out = [
            RecordBatch(_shm_read_column(shm.buf, kdesc),
                        _shm_read_column(shm.buf, vdesc))
            for kdesc, vdesc in descriptors
        ]
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double-unlink race
            pass
    return out


# ----------------------------------------------------------------------
# record-level helpers used by the metered pipeline
# ----------------------------------------------------------------------


def record_count(item: Any) -> int:
    """Logical record count of one partition element (batches count fully)."""
    if isinstance(item, RecordBatch):
        return len(item)
    return 1


def accumulate_sequential(start: float, step: float, n: int) -> float:
    """Result of adding ``step`` to ``start`` ``n`` times, sequentially.

    ``ufunc.accumulate`` applies IEEE additions one by one (no pairwise
    regrouping), so this is *bitwise identical* to the boxed per-record
    ``cost += step`` loop while running at C speed — batched metering must
    not perturb even the last float bit of simulated time.
    """
    if n <= 0:
        return start
    arr = np.empty(n + 1, dtype=np.float64)
    arr[0] = start
    arr[1:] = step
    return float(np.add.accumulate(arr)[-1])


def iter_records(items: Iterable[Any]) -> Iterator[Any]:
    """Stream partition elements as boxed records, exploding batches."""
    for item in items:
        if isinstance(item, RecordBatch):
            yield from item.to_pairs()
        else:
            yield item


def explode_records(items: List[Any]) -> List[Any]:
    """Boxed record list of a partition; returns ``items`` itself when it
    contains no batches (the common case pays nothing)."""
    if not any(isinstance(x, RecordBatch) for x in items):
        return items
    return list(iter_records(items))


def records_nbytes(items: Any) -> int:
    """Boxed-equivalent logical bytes of a partition's element list.

    Identical to :func:`repro.common.sizeof.sizeof_records` for plain
    lists; for lists containing batches it charges the bytes of the
    *flattened* boxed list, so memory and driver-result accounting do not
    depend on how records are chunked into batches.
    """
    if isinstance(items, RecordBatch):
        return items.logical_nbytes()
    if not isinstance(items, list):
        return sizeof_records(items)
    batches = [x for x in items if isinstance(x, RecordBatch)]
    if not batches:
        return sizeof_records(items)
    boxed = [x for x in items if not isinstance(x, RecordBatch)]
    total = sizeof_records(boxed)
    for b in batches:
        total += b.logical_nbytes() - CONTAINER_ENTRY_BYTES
    return total


# ----------------------------------------------------------------------
# vectorized bucketing & segment reduction
# ----------------------------------------------------------------------


def split_indices(pids: np.ndarray) -> List[Tuple[int, np.ndarray]]:
    """Group row indices by partition id with one stable argsort.

    Returns ``[(pid, indices), ...]`` with pids ascending and indices in
    original row order — exactly what a per-pid boolean-mask loop yields,
    in O(n log n) instead of O(n * num_pids).
    """
    n = len(pids)
    if n == 0:
        return []
    order = np.argsort(pids, kind="stable")
    sorted_pids = pids[order]
    cuts = np.flatnonzero(sorted_pids[1:] != sorted_pids[:-1]) + 1
    starts = np.concatenate([[0], cuts])
    ends = np.concatenate([cuts, [n]])
    return [
        (int(sorted_pids[s]), order[s:e]) for s, e in zip(starts, ends)
    ]


def split_batch(keys: np.ndarray, values: np.ndarray,
                pids: np.ndarray) -> Dict[int, RecordBatch]:
    """Bucket columnar records by partition id -> per-bucket batches."""
    return {
        pid: RecordBatch(keys[idx], values[idx])
        for pid, idx in split_indices(pids)
    }


def segment_reduce(keys: np.ndarray, values: np.ndarray,
                   op: str) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce ``values`` per distinct key with ``op`` ("add"/"min"/"max").

    Keys come back sorted ascending; within one key the values are folded
    in their original arrival order (stable sort + ``ufunc.reduceat``),
    matching the boxed per-record dict fold.  Value dtype is preserved.
    """
    try:
        ufunc = COMBINE_UFUNCS[op]
    except KeyError:
        raise ValueError(
            f"unknown combine op {op!r}; known: "
            f"{', '.join(sorted(COMBINE_UFUNCS))}"
        ) from None
    n = len(keys)
    if n == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_values = values[order]
    starts = np.concatenate(
        [[0], np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1]
    )
    return sorted_keys[starts], ufunc.reduceat(sorted_values, starts, axis=0)
