"""Exception hierarchy shared by every subsystem of the PSGraph reproduction.

All errors raised by the simulated cluster derive from :class:`PSGraphError` so
applications can catch a single base class.  The most important subclass is
:class:`SimulatedOOMError`, raised by :class:`repro.common.memory.MemoryTracker`
when a container exceeds its memory grant — this is the mechanism behind the
"OOM" cells of Figure 6 in the paper.
"""

from __future__ import annotations


class PSGraphError(Exception):
    """Base class for every error raised by the reproduction."""


class ConfigError(PSGraphError):
    """An invalid configuration value was supplied."""


class SimulatedOOMError(PSGraphError, MemoryError):
    """A container's tracked allocations exceeded its memory grant.

    Mirrors a JVM ``OutOfMemoryError`` killing a Spark executor.  Carries
    enough context to explain *which* container died and *what* allocation
    pushed it over the edge.
    """

    def __init__(self, container: str, requested: int, used: int,
                 capacity: int, what: str = "") -> None:
        self.container = container
        self.requested = requested
        self.used = used
        self.capacity = capacity
        self.what = what
        detail = f" while allocating {what!r}" if what else ""
        super().__init__(
            f"container {container} out of memory{detail}: "
            f"requested {requested} B on top of {used} B used, "
            f"capacity {capacity} B"
        )


class RpcError(PSGraphError):
    """An RPC could not be delivered (e.g. the endpoint is dead)."""


class EndpointNotFoundError(RpcError):
    """The target RPC endpoint is not registered."""


class HdfsError(PSGraphError):
    """Base class for simulated-HDFS failures."""


class FileNotFoundOnHdfsError(HdfsError):
    """The requested HDFS path does not exist."""


class FileAlreadyExistsError(HdfsError):
    """An HDFS path was created twice without overwrite."""


class ResourceError(PSGraphError):
    """The resource manager could not satisfy a container request."""


class ContainerLostError(PSGraphError):
    """A container was killed (failure injection or preemption)."""

    def __init__(self, container: str, reason: str = "killed") -> None:
        self.container = container
        self.reason = reason
        super().__init__(f"container {container} lost: {reason}")


class TaskFailedError(PSGraphError):
    """A dataflow task failed on an executor."""


class StageFailedError(PSGraphError):
    """A dataflow stage exhausted its retry budget."""


class PSError(PSGraphError):
    """Base class for parameter-server failures."""


class MatrixNotFoundError(PSError):
    """A PS matrix handle refers to a matrix that does not exist."""


class PartitionNotFoundError(PSError):
    """A PS request was routed to a partition the server does not hold."""


class CheckpointNotFoundError(PSError):
    """Recovery was requested but no checkpoint has been written yet."""


class GraphLoadError(PSGraphError):
    """Malformed graph input (bad edge line, negative vertex id, ...)."""
