"""PSGraph core: the session context, IO, graph ops and the runner API."""

from repro.core.blocks import EdgeBlock, NeighborBlock, build_neighbor_block
from repro.core.context import PSGraphContext
from repro.core.graphio import GraphIO
from repro.core.runner import GraphRunner

__all__ = [
    "EdgeBlock",
    "GraphIO",
    "GraphRunner",
    "NeighborBlock",
    "PSGraphContext",
    "build_neighbor_block",
]
