"""GraphRunner — Listing 1's end-to-end driver program.

Mirrors the paper's example: create the contexts, load the graph from the
data source, run the algorithm, save the generated model::

    runner = GraphRunner(ctx)
    result = runner.run(PageRank(), "/input/edges", "/output/ranks")

The runner is also the session's reporting seam: each phase (load /
transform / save) is timed into the ``runner.*`` histograms and traced on
the driver's "phases" track, and report hooks registered with
:meth:`GraphRunner.add_report_hook` fire after every completed run — the
CLI uses one to write trace/metrics/timeline artifacts.
"""

from __future__ import annotations

from typing import Callable, List

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.context import PSGraphContext
from repro.core.graphio import GraphIO

#: Hook signature: ``hook(result)`` called after each completed run.
ReportHook = Callable[[AlgorithmResult], None]


class GraphRunner:
    """Loads input, runs one algorithm, optionally saves the output."""

    def __init__(self, ctx: PSGraphContext) -> None:
        self.ctx = ctx
        self._report_hooks: List[ReportHook] = []
        self._metrics = ctx.metrics.scoped("runner")

    def add_report_hook(self, hook: ReportHook) -> None:
        """Register a callback invoked with each run's result."""
        self._report_hooks.append(hook)

    def remove_report_hook(self, hook: ReportHook) -> None:
        """Unregister a report callback."""
        self._report_hooks.remove(hook)

    def _phase(self, name: str):
        """Sim-clock timer for one runner phase (``runner.<name>`` hist)."""
        return self._metrics.timer(name, clock=self.ctx.spark.driver_clock)

    def run(self, algo: GraphAlgorithm, input_path: str,
            output_path: str | None = None, *,
            weighted: bool = False,
            num_partitions: int | None = None) -> AlgorithmResult:
        """Execute ``algo`` over the HDFS edge list at ``input_path``.

        Args:
            algo: a configured :class:`GraphAlgorithm`.
            input_path: HDFS directory (or file) of edge lines.
            output_path: when given, the result DataFrame is saved there.
            weighted: parse a third weight column (fast unfolding input).
            num_partitions: RDD partitions for the edge dataset.
        """
        tracer = self.ctx.tracer
        clock = self.ctx.spark.driver_clock
        algo_name = type(algo).__name__

        with tracer.clock_span("driver", "phases", "load", clock,
                               {"input": input_path}), \
                self._phase("load_s"):
            graph = GraphIO.load(
                self.ctx, input_path, weighted=weighted,
                num_partitions=num_partitions,
            )
        with tracer.clock_span("driver", "phases", "transform", clock,
                               {"algorithm": algo_name}), \
                self._phase("transform_s"):
            result = algo.transform(self.ctx, graph)
        if output_path is not None:
            with tracer.clock_span("driver", "phases", "save", clock,
                                   {"output": output_path}), \
                    self._phase("save_s"):
                GraphIO.save(result.output, output_path)
        for hook in list(self._report_hooks):
            hook(result)
        return result
