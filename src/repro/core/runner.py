"""GraphRunner — Listing 1's end-to-end driver program.

Mirrors the paper's example: create the contexts, load the graph from the
data source, run the algorithm, save the generated model::

    runner = GraphRunner(ctx)
    result = runner.run(PageRank(), "/input/edges", "/output/ranks")
"""

from __future__ import annotations

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.context import PSGraphContext
from repro.core.graphio import GraphIO


class GraphRunner:
    """Loads input, runs one algorithm, optionally saves the output."""

    def __init__(self, ctx: PSGraphContext) -> None:
        self.ctx = ctx

    def run(self, algo: GraphAlgorithm, input_path: str,
            output_path: str | None = None, *,
            weighted: bool = False,
            num_partitions: int | None = None) -> AlgorithmResult:
        """Execute ``algo`` over the HDFS edge list at ``input_path``.

        Args:
            algo: a configured :class:`GraphAlgorithm`.
            input_path: HDFS directory (or file) of edge lines.
            output_path: when given, the result DataFrame is saved there.
            weighted: parse a third weight column (fast unfolding input).
            num_partitions: RDD partitions for the edge dataset.
        """
        graph = GraphIO.load(
            self.ctx, input_path, weighted=weighted,
            num_partitions=num_partitions,
        )
        result = algo.transform(self.ctx, graph)
        if output_path is not None:
            GraphIO.save(result.output, output_path)
        return result
