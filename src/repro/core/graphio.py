"""GraphIO: loading inputs from and saving results to HDFS (Listing 1)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.context import PSGraphContext
from repro.dataflow.dataframe import DataFrame
from repro.dataflow.rdd import RDD


class GraphIO:
    """Static helpers mirroring the paper's ``GraphIO.load`` / ``save``."""

    @staticmethod
    def load(ctx: PSGraphContext, path: str, *, weighted: bool = False,
             num_partitions: int | None = None) -> RDD:
        """Load an HDFS edge list as an RDD of EdgeBlocks."""
        from repro.core.ops import load_edges

        return load_edges(
            ctx.spark, path, weighted=weighted,
            num_partitions=num_partitions,
        )

    @staticmethod
    def save(df: DataFrame, path: str) -> None:
        """Save a result DataFrame as tab-separated text on HDFS."""
        df.rdd.map(
            lambda row: "\t".join(str(v) for v in row)
        ).save_as_text_file(path)

    @staticmethod
    def save_vertex_values(ctx: PSGraphContext, path: str, ids: np.ndarray,
                           values: np.ndarray,
                           num_partitions: int | None = None) -> None:
        """Save parallel (vertex, value) arrays as text on HDFS."""
        rows = list(zip(ids.tolist(), np.asarray(values).tolist()))
        ctx.spark.parallelize(rows, num_partitions).map(
            lambda kv: f"{kv[0]}\t{kv[1]}"
        ).save_as_text_file(path)

    @staticmethod
    def load_vertex_values(ctx: PSGraphContext, path: str) -> Iterator[tuple]:
        """Read back (vertex, value) pairs written by save_vertex_values."""
        for line in ctx.spark.text_file(path).collect():
            v, _, x = line.partition("\t")
            yield int(v), float(x)
