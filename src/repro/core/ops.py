"""GraphOps: the edge-list / neighbor-table transformations of PSGraph.

Sec. IV-A: "We then use the groupBy operator to transform the original
edge-partitioned graph data to the format of vertex partitioning, that is,
each item in RDD is a neighbor table".  These helpers implement that
pipeline over columnar blocks, through the metered shuffle.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.batch import split_indices
from repro.core.blocks import EdgeBlock, NeighborBlock, build_neighbor_block
from repro.dataflow.context import SparkContext
from repro.dataflow.partitioner import HashPartitioner
from repro.dataflow.rdd import RDD
from repro.dataflow.taskctx import current_task_context


def charge_primitive_compute(cost_model, records: float) -> None:
    """Charge primitive-array CPU time to the currently running task.

    PSGraph's executor loops run over primitive collections (Angel's
    design); algorithms call this for each block they process so sim-time
    reflects the work.  A no-op outside a task (driver-side tests).
    """
    tctx = current_task_context()
    if tctx is not None:
        tctx.cost.cpu_s += cost_model.primitive_compute_time(records)


def parse_edge_lines(lines: Iterator[str],
                     weighted: bool = False) -> EdgeBlock:
    """Parse ``src<TAB>dst[<TAB>weight]`` lines into one EdgeBlock."""
    srcs: List[int] = []
    dsts: List[int] = []
    weights: List[float] = []
    for line in lines:
        parts = line.split()
        if len(parts) < 2:
            continue
        try:
            src = int(parts[0])
            dst = int(parts[1])
        except ValueError:
            # Streaming landing files interleave removal marker lines
            # ("-e"/"-v", see repro.ingest.mutations) with plain edge
            # adds; additive batch jobs skip the markers.
            continue
        srcs.append(src)
        dsts.append(dst)
        if weighted:
            weights.append(float(parts[2]) if len(parts) > 2 else 1.0)
    return EdgeBlock(
        np.asarray(srcs, dtype=np.int64),
        np.asarray(dsts, dtype=np.int64),
        np.asarray(weights) if weighted else None,
    )


def load_edges(spark: SparkContext, path: str, *, weighted: bool = False,
               num_partitions: int | None = None) -> RDD:
    """Load an HDFS edge list into an RDD of EdgeBlocks (one per partition),
    cached on the executors (Listing 1's ``GraphOps.loadEdges``)."""
    lines = spark.text_file(path, num_partitions)
    blocks = lines.map_partitions(
        lambda it: [parse_edge_lines(it, weighted)]
    )
    return blocks.cache()


def edges_from_arrays(spark: SparkContext, src: np.ndarray, dst: np.ndarray,
                      weight: Optional[np.ndarray] = None,
                      num_partitions: int | None = None) -> RDD:
    """Driver-side arrays -> RDD of EdgeBlocks (testing convenience)."""
    p = num_partitions or spark.cluster.parallelism
    p = max(1, min(p, max(1, len(src))))
    blocks = [
        EdgeBlock(
            np.asarray(src[i::p], dtype=np.int64),
            np.asarray(dst[i::p], dtype=np.int64),
            np.asarray(weight[i::p]) if weight is not None else None,
        )
        for i in range(p)
    ]
    return spark.parallelize(blocks, p)


def max_vertex_id(edges: RDD) -> int:
    """Largest vertex id appearing in the edge blocks."""
    def block_max(it: Iterator[EdgeBlock]) -> int:
        best = -1
        for b in it:
            if b.num_edges:
                best = max(best, int(b.src.max()), int(b.dst.max()))
        return best

    return max(edges.foreach_partition(block_max))


def count_edges(edges: RDD) -> int:
    """Total edges across all blocks."""
    return sum(
        edges.foreach_partition(lambda it: sum(b.num_edges for b in it))
    )


def to_neighbor_tables(edges: RDD, num_partitions: int | None = None, *,
                       symmetric: bool = False, dedupe: bool = False,
                       weighted: bool = False) -> RDD:
    """The groupBy of Sec. IV-A: edge partitioning -> vertex partitioning.

    Produces an RDD of :class:`NeighborBlock`, vertex-partitioned by
    ``src mod P``.  ``symmetric=True`` also adds the reverse direction
    (undirected neighborhoods, needed by common neighbor, K-core, fast
    unfolding).  The shuffle and the reduce-side CSR build are fully
    metered.
    """
    spark = edges.ctx
    p = num_partitions or edges.num_partitions
    partitioner = HashPartitioner(p)

    def emit(it: Iterator[EdgeBlock]) -> Iterator[Tuple[int, EdgeBlock]]:
        for block in it:
            w = block.weight if weighted else None
            directions = [(block.src, block.dst, w)]
            if symmetric:
                directions.append((block.dst, block.src, w))
            for targets, others, ws in directions:
                pids = (targets % p).astype(np.int64)
                for pid, idx in split_indices(pids):
                    yield (
                        pid,
                        EdgeBlock(targets[idx], others[idx],
                                  ws[idx] if ws is not None else None),
                    )

    shuffled = edges.map_partitions(emit).partition_by(partitioner)

    def merge(it: Iterator[Tuple[int, EdgeBlock]]) -> Iterator[NeighborBlock]:
        chunks = [payload for _pid, payload in it]
        if not chunks:
            yield build_neighbor_block(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            )
            return
        targets = np.concatenate([c.src for c in chunks])
        others = np.concatenate([c.dst for c in chunks])
        weights = (
            np.concatenate([c.weight for c in chunks])
            if weighted and chunks[0].weight is not None else None
        )
        tctx = current_task_context()
        block = build_neighbor_block(targets, others, weights, dedupe)
        if tctx is not None:
            # The CSR build sorts the fetched arrays in place (primitive
            # arrays, no boxed temp table) — only CPU is charged here; the
            # resulting block's memory is charged when the RDD is cached.
            cm = edges.ctx.cluster.cost_model
            tctx.cost.cpu_s += cm.primitive_compute_time(len(targets))
        yield block

    return shuffled.map_partitions(merge)


def push_neighbor_tables(neighbor_blocks: RDD, table) -> int:
    """Push an RDD of NeighborBlocks into a PS neighbor table.

    Returns the number of vertices pushed.  This is the "push the neighbor
    tables to PS" step of common neighbor (Sec. IV-B).
    """
    def push(it: Iterator[NeighborBlock]) -> int:
        pushed = 0
        for block in it:
            if block.num_vertices == 0:
                continue
            table.push(block.vertices, block.neighbor_arrays())
            pushed += block.num_vertices
        return pushed

    return sum(neighbor_blocks.foreach_partition(push))


def push_degrees(neighbor_blocks: RDD, vector, col: int = 0) -> None:
    """Push per-vertex degrees from neighbor blocks into a PS matrix col."""
    def push(it: Iterator[NeighborBlock]) -> None:
        for block in it:
            if block.num_vertices:
                vector.push(
                    block.vertices,
                    block.degrees().astype(np.float64), col=col,
                )

    neighbor_blocks.foreach_partition(push)
