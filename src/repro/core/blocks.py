"""Columnar edge / neighbor blocks — PSGraph's partition payloads.

PSGraph keeps graph data in RDDs whose elements are "edge or neighbor
table" (Sec. III-C).  For throughput the reproduction stores one columnar
block per partition: an :class:`EdgeBlock` (parallel src/dst[/weight]
arrays) or a :class:`NeighborBlock` (CSR neighbor table for the vertices
owned by the partition).  Both expose ``logical_nbytes`` so the memory and
shuffle meters see their true size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass
class EdgeBlock:
    """A partition's edges as parallel arrays.

    Attributes:
        src: source vertex ids.
        dst: destination vertex ids.
        weight: optional edge weights (fast unfolding's weighted input).
    """

    src: np.ndarray
    dst: np.ndarray
    weight: Optional[np.ndarray] = None

    @property
    def num_edges(self) -> int:
        """Edges in the block."""
        return len(self.src)

    @property
    def logical_nbytes(self) -> int:
        """Logical bytes (drives memory and shuffle metering)."""
        n = int(self.src.nbytes + self.dst.nbytes)
        if self.weight is not None:
            n += int(self.weight.nbytes)
        return n

    def batches(self, batch_size: int) -> Iterator["EdgeBlock"]:
        """Yield consecutive sub-blocks of at most ``batch_size`` edges."""
        for start in range(0, self.num_edges, batch_size):
            sl = slice(start, start + batch_size)
            yield EdgeBlock(
                self.src[sl], self.dst[sl],
                self.weight[sl] if self.weight is not None else None,
            )


@dataclass
class NeighborBlock:
    """CSR neighbor tables for the vertices owned by one partition.

    ``neighbors[indptr[i]:indptr[i+1]]`` are the neighbors of
    ``vertices[i]`` (``weights`` aligned when present).
    """

    vertices: np.ndarray
    indptr: np.ndarray
    neighbors: np.ndarray
    weights: Optional[np.ndarray] = None

    @property
    def num_vertices(self) -> int:
        """Vertices with at least one edge in this block."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Total adjacency entries in this block."""
        return len(self.neighbors)

    @property
    def logical_nbytes(self) -> int:
        """Logical bytes (drives memory and shuffle metering)."""
        n = int(self.vertices.nbytes + self.indptr.nbytes
                + self.neighbors.nbytes)
        if self.weights is not None:
            n += int(self.weights.nbytes)
        return n

    def degrees(self) -> np.ndarray:
        """Degree per owned vertex."""
        return np.diff(self.indptr)

    def rows(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Iterate ``(vertex, neighbor_array)`` pairs."""
        for i, v in enumerate(self.vertices.tolist()):
            yield v, self.neighbors[self.indptr[i]:self.indptr[i + 1]]

    def neighbor_arrays(self) -> list:
        """Neighbor arrays aligned with :attr:`vertices`."""
        return [
            self.neighbors[self.indptr[i]:self.indptr[i + 1]]
            for i in range(self.num_vertices)
        ]


def build_neighbor_block(targets: np.ndarray, others: np.ndarray,
                         weights: Optional[np.ndarray] = None,
                         dedupe: bool = False) -> NeighborBlock:
    """Group ``(target, other[, weight])`` tuples into a CSR block.

    Args:
        dedupe: drop duplicate (target, other) pairs, keeping the first
            weight (used by common neighbor / triangle count which need
            set semantics).
    """
    if len(targets) == 0:
        empty = np.empty(0, dtype=np.int64)
        return NeighborBlock(
            empty, np.zeros(1, dtype=np.int64), empty,
            np.empty(0) if weights is not None else None,
        )
    order = np.lexsort((others, targets))
    targets = targets[order]
    others = others[order]
    if weights is not None:
        weights = weights[order]
    if dedupe:
        keep = np.ones(len(targets), dtype=bool)
        keep[1:] = (targets[1:] != targets[:-1]) | (others[1:] != others[:-1])
        targets, others = targets[keep], others[keep]
        if weights is not None:
            weights = weights[keep]
    vertices, starts = np.unique(targets, return_index=True)
    indptr = np.append(starts, len(targets)).astype(np.int64)
    return NeighborBlock(vertices, indptr, others, weights)
