"""PSGraphContext — the top-level session object of PSGraph.

Wires together the two contexts of Listing 1 (``SparkContext.getOrCreate();
PSContext.getOrCreate()``): a Spark dataflow context for computation and a
parameter-server context for model storage, sharing one Yarn, one HDFS, one
RPC fabric and one metrics registry.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.common.config import ClusterConfig
from repro.common.metrics import MetricsRegistry
from repro.dataflow.context import SparkContext
from repro.dataflow.dataframe import DataFrame
from repro.hdfs.filesystem import Hdfs
from repro.obs.tracer import NOOP_TRACER, NoopTracer
from repro.ps.context import PSContext


class PSGraphContext:
    """One PSGraph session: Spark executors + parameter servers.

    Args:
        cluster: resource allocation (executors and servers) + cost model.
        sync_mode: PS synchronization protocol ("bsp" or "asp").
        app_name: label for the driver container.
        hdfs: optionally share an existing filesystem (e.g. with a baseline
            system reading the same input).
        tracer: sim-time span tracer (see :mod:`repro.obs`); the default
            no-op tracer records nothing and costs nothing.
        checkpoint_interval: PS auto-checkpoint policy — every Nth barrier
            (or completed iteration, for recovery-aware algorithms)
            snapshots every model to HDFS; 0 disables periodic
            checkpoints (see docs/fault-tolerance.md).
        speculation: enable the scheduler's speculative execution for
            straggler executors (see :class:`SparkContext`).
        parallel: process-pool width for wall-clock-parallel task
            execution; ``None`` reads the process default (see
            :class:`SparkContext` and ``repro.dataflow.pool``).
        pool_start_method: ``multiprocessing`` start method for pool
            workers (default ``fork``).
    """

    def __init__(self, cluster: ClusterConfig, *, sync_mode: str = "bsp",
                 app_name: str = "psgraph",
                 hdfs: Hdfs | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: NoopTracer = NOOP_TRACER,
                 checkpoint_interval: int = 0,
                 speculation: bool = False,
                 parallel: int | None = None,
                 pool_start_method: str | None = None) -> None:
        self.cluster = cluster
        self.spark = SparkContext(
            cluster, app_name=app_name, hdfs=hdfs, metrics=metrics,
            tracer=tracer, speculation=speculation, parallel=parallel,
            pool_start_method=pool_start_method,
        )
        self.ps = PSContext(self.spark, sync_mode=sync_mode,
                            checkpoint_interval=checkpoint_interval)
        self._stopped = False

    # -- conveniences --------------------------------------------------------

    @property
    def hdfs(self) -> Hdfs:
        """The shared filesystem."""
        return self.spark.hdfs

    @property
    def metrics(self) -> MetricsRegistry:
        """The shared metrics registry."""
        return self.spark.metrics

    @property
    def tracer(self) -> NoopTracer:
        """The session's span tracer (no-op unless one was passed in)."""
        return self.spark.tracer

    def sim_time(self) -> float:
        """Simulated job time so far, in seconds (driver clock)."""
        return self.spark.sim_time()

    def sync_clocks(self) -> float:
        """Barrier driver + executors + servers; returns the time."""
        self.spark.sync_clocks()
        return self.ps.barrier()

    def create_dataframe(self, rows: Iterable[tuple],
                         schema: Sequence[str],
                         num_partitions: int | None = None) -> DataFrame:
        """Listing 1's ``SparkContext.createDataFrame``."""
        return DataFrame(
            self.spark.parallelize(list(rows), num_partitions), schema
        )

    def stop(self) -> None:
        """Release every container of the session."""
        if self._stopped:
            return
        self._stopped = True
        self.ps.stop()
        self.spark.stop()

    def __enter__(self) -> "PSGraphContext":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
