"""Connected components on the parameter server.

An extension: the paper's TG family naturally includes weakly connected
components (GraphX ships it, and our baseline implements it).  PSGraph's
version keeps the component label vector on the PS and propagates minima —
each iteration pulls the neighbors' labels and writes back any shrinkage,
converging in O(diameter) rounds.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


class ConnectedComponents(GraphAlgorithm):
    """PSGraph weakly connected components (min-label propagation).

    Args:
        max_iterations: round budget (component diameter bounds the need).
        partition: PS partitioner kind for the label vector.
    """

    name = "connected-components"

    def __init__(self, max_iterations: int = 50,
                 partition: str = "range") -> None:
        self.max_iterations = max_iterations
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        tables = to_neighbor_tables(
            dataset, symmetric=True, dedupe=True
        ).cache()
        n = max_vertex_id(dataset) + 1
        labels = ctx.ps.create_vector(
            self._unique_name(ctx, "cc-labels"), n,
            partition=self.partition, init=-1.0,
        )

        def init(it: Iterator[NeighborBlock]) -> None:
            for block in it:
                if block.num_vertices:
                    labels.set(
                        block.vertices, block.vertices.astype(np.float64)
                    )

        tables.foreach_partition(init)
        ctx.ps.barrier()
        cost_model = ctx.cluster.cost_model

        def step(it: Iterator[NeighborBlock]) -> int:
            changed = 0
            for block in it:
                if block.num_vertices == 0:
                    continue
                nlabels = labels.pull(block.neighbors)
                own = labels.pull(block.vertices)
                charge_primitive_compute(
                    cost_model, len(block.neighbors)
                )
                mins = np.minimum.reduceat(nlabels, block.indptr[:-1])
                shrink = mins < own
                if shrink.any():
                    labels.set(block.vertices[shrink], mins[shrink])
                    changed += int(shrink.sum())
            return changed

        iterations = 0
        for _ in range(self.max_iterations):
            changed = sum(tables.foreach_partition(step))
            ctx.ps.barrier()
            iterations += 1
            if changed == 0:
                break

        def emit(it: Iterator[NeighborBlock]) -> list:
            rows = []
            for block in it:
                if block.num_vertices:
                    vals = labels.pull(block.vertices)
                    rows.extend(
                        zip(block.vertices.tolist(),
                            vals.astype(np.int64).tolist())
                    )
            return rows

        rows = [r for part in tables.foreach_partition(emit) for r in part]
        output = ctx.create_dataframe(rows, ["vertex", "component"])
        tables.unpersist()
        return AlgorithmResult(
            output, iterations,
            stats={"num_components": len({c for _v, c in rows})},
        )
