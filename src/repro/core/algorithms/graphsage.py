"""GraphSage on the parameter server (Sec. IV-E, Fig. 5).

The three PS-resident models of Fig. 5: vertex features ``X`` and neighbor
tables ``A`` partitioned by vertex id, and the layer weights ``W`` sharded
by column with a *server-side* Adam optimizer (built on psFunc, per the
paper).  Training follows the paper's steps: the driver traces the model
into a ScriptModule and pushes the initial weights to the PS; executors
load the ScriptModule, push features and neighbor tables built by the Spark
groupBy pipeline, and then per batch pull the current weights, sample 2-hop
neighborhoods from the PS, pull the needed features, run
forward/backward in torchlite (the embedded "PyTorch"), and push gradients
back to the PS optimizer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_seed
from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.context import PSGraphContext
from repro.core.ops import (
    max_vertex_id,
    push_neighbor_tables,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD
from repro.dataflow.taskctx import current_task_context
from repro.ps.optimizer import Adam
from repro.torchlite.functional import (
    concat,
    cross_entropy,
    segment_max,
    segment_mean,
)
from repro.torchlite.nn import Linear, LSTMCell, Module
from repro.torchlite.script import ScriptModule
from repro.torchlite.tensor import Tensor


class SageNet(Module):
    """Two-layer GraphSage with mean or pooling aggregators.

    Layer k: ``h_k(v) = relu(W_k . concat(h_{k-1}(v),
    AGG{h_{k-1}(u), u in N(v)}))`` — the concat + fully-connected form of
    the paper's step 4; the final layer emits class logits.  ``AGG`` is
    the mean aggregator, or the max-pooling aggregator of Hamilton et al.
    (an elementwise max over per-neighbor MLP outputs) — the paper's
    step 3 lists "mean aggregator, LSTM aggregator, and pooling
    aggregator".
    """

    def __init__(self, in_dim: int, hidden: int, num_classes: int,
                 seed: int = 0, aggregator: str = "mean") -> None:
        super().__init__()
        if aggregator not in ("mean", "pool", "lstm"):
            raise ValueError(f"unknown aggregator {aggregator!r}")
        rng = np.random.default_rng(seed)
        self.aggregator = aggregator
        if aggregator == "pool":
            # Per-neighbor transforms applied before the elementwise max.
            self.pool1 = Linear(in_dim, in_dim, rng=rng)
        elif aggregator == "lstm":
            # Unrolled over the (padded) neighbor sequence; requires the
            # sampler to emit exactly ``fanout`` neighbors per vertex.
            self.lstm1 = LSTMCell(in_dim, in_dim, rng=rng)
        self.layer1 = Linear(2 * in_dim, hidden, rng=rng)
        if aggregator == "pool":
            self.pool2 = Linear(hidden, hidden, rng=rng)
        elif aggregator == "lstm":
            self.lstm2 = LSTMCell(hidden, hidden, rng=rng)
        self.layer2 = Linear(2 * hidden, num_classes, rng=rng)

    def _agg(self, x: Tensor, seg: np.ndarray, num: int,
             level: int) -> Tensor:
        if self.aggregator == "mean":
            return segment_mean(x, seg, num)
        if self.aggregator == "pool":
            pool = self.pool1 if level == 1 else self.pool2
            return segment_max(pool(x).relu(), seg, num)
        # LSTM: uniform sequence length per segment (padded sampling).
        if num == 0 or x.shape[0] % num != 0:
            raise ValueError(
                "lstm aggregator needs padded, uniform neighbor samples"
            )
        steps = x.shape[0] // num
        lstm = self.lstm1 if level == 1 else self.lstm2
        return lstm.run_sequence(x, num, steps)

    def forward(self, x_b: Tensor, x_n1: Tensor, seg1: np.ndarray,
                x_n2: Tensor, seg2: np.ndarray) -> Tensor:
        """Logits for a batch.

        Args:
            x_b: features of the batch vertices (B, F).
            x_n1: features of their sampled 1-hop neighbors (M1, F).
            seg1: for each 1-hop row, the index of its batch vertex.
            x_n2: features of the sampled 2-hop neighbors (M2, F).
            seg2: for each 2-hop row, the index of its 1-hop parent row.
        """
        num_b = x_b.shape[0]
        num_n1 = x_n1.shape[0]
        h1_b = self.layer1(
            concat([x_b, self._agg(x_n1, seg1, num_b, level=1)])
        ).relu()
        h1_n1 = self.layer1(
            concat([x_n1, self._agg(x_n2, seg2, num_n1, level=1)])
        ).relu()
        return self.layer2(
            concat([h1_b, self._agg(h1_n1, seg1, num_b, level=2)])
        )


def make_sage(in_dim: int, hidden: int, num_classes: int,
              seed: int = 0, aggregator: str = "mean") -> SageNet:
    """Top-level factory so ScriptModule blobs are picklable."""
    return SageNet(in_dim, hidden, num_classes, seed, aggregator)


class GraphSage(GraphAlgorithm):
    """PSGraph GraphSage: supervised vertex classification.

    Args:
        features: (n, F) float vertex features.
        labels: (n,) int labels.
        hidden: hidden width.
        num_classes: label cardinality (inferred when None).
        fanouts: (S1, S2) neighbor sample sizes for k=1, 2 hops.
        aggregator: "mean" or "pool" (GraphSage aggregator architecture).
        epochs / batch_size / lr: training schedule.
        labeled_fraction: fraction of present vertices with usable labels
            (production tasks label a small subset; the paper's WeChat Pay
            label count is unreported — EXPERIMENTS.md documents the 2%
            default used for Table I).
        train_fraction: labeled vertices used for training (rest evaluate).
        seed: RNG seed.
    """

    name = "graphsage"

    def __init__(self, features: np.ndarray, labels: np.ndarray, *,
                 hidden: int = 32, num_classes: int | None = None,
                 fanouts: Tuple[int, int] = (10, 5), epochs: int = 3,
                 batch_size: int = 512, lr: float = 0.01,
                 labeled_fraction: float = 1.0,
                 train_fraction: float = 0.7,
                 aggregator: str = "mean",
                 seed: int = DEFAULT_SEED) -> None:
        self.features = np.asarray(features, dtype=np.float32)
        self.labels = np.asarray(labels, dtype=np.int64)
        self.hidden = hidden
        self.num_classes = num_classes or int(self.labels.max()) + 1
        self.fanouts = fanouts
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.labeled_fraction = labeled_fraction
        self.train_fraction = train_fraction
        self.aggregator = aggregator
        self.seed = seed

    # ------------------------------------------------------------------

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        n = max_vertex_id(dataset) + 1
        in_dim = self.features.shape[1]
        prep_start = ctx.sim_time()

        # -- preprocessing: the Spark pipeline of Table I ----------------
        adj = ctx.ps.create_neighbor_table(
            self._unique_name(ctx, "sage-adj"), n
        )
        blocks = to_neighbor_tables(dataset, symmetric=True, dedupe=True)
        push_neighbor_tables(blocks, adj)
        adj.compact()
        feats = ctx.ps.create_matrix(
            self._unique_name(ctx, "sage-x"), n, in_dim,
            dtype=np.float32, partition="range",
        )
        label_vec = ctx.ps.create_vector(
            self._unique_name(ctx, "sage-y"), n, init=-1.0
        )
        self._push_features(ctx, feats, label_vec, n)
        ctx.ps.barrier()

        # -- driver traces the model and pushes initial weights to PS ----
        blob = ScriptModule.trace(
            make_sage, in_dim=in_dim, hidden=self.hidden,
            num_classes=self.num_classes, seed=self.seed,
            aggregator=self.aggregator,
        )
        params = self._create_weight_matrices(ctx, blob)
        preprocess_time = ctx.sim_time() - prep_start

        # -- training nodes split over partitions -------------------------
        rng = np.random.default_rng(self.seed)
        present = self._present(dataset, n)
        ids = np.flatnonzero(present)
        rng.shuffle(ids)
        if self.labeled_fraction < 1.0:
            ids = ids[:max(2, int(len(ids) * self.labeled_fraction))]
        cut = int(len(ids) * self.train_fraction)
        train_ids, test_ids = np.sort(ids[:cut]), np.sort(ids[cut:])
        p = dataset.num_partitions
        train_parts = ctx.spark.parallelize(
            [train_ids[i::p] for i in range(p)], p
        ).cache()

        fanouts = self.fanouts
        batch_size = self.batch_size
        pad_samples = self.aggregator == "lstm"
        seed = self.seed
        blob_bytes = blob.to_bytes()
        param_names = list(params)

        def run_batch(node_ids: np.ndarray, epoch: int, train: bool
                      ) -> Tuple[float, int, int]:
            """Pull weights, sample, pull feats, train/eval one batch."""
            model = ScriptModule.from_bytes(blob_bytes).instantiate()
            state = {
                name: params[name].to_numpy().reshape(
                    model.state_dict()[name].shape
                )
                for name in param_names
            }
            model.load_state_dict(state)
            brng = np.random.default_rng(
                derive_seed(seed, "batch", epoch, int(node_ids[0]))
            )
            x_b, x_n1, seg1, x_n2, seg2 = _sample_and_pull(
                adj, feats, node_ids, fanouts, brng, pad=pad_samples
            )
            y = label_vec.pull(node_ids).astype(np.int64)
            logits = model(
                Tensor(x_b), Tensor(x_n1), seg1, Tensor(x_n2), seg2
            )
            # Forward + backward FLOPs of the two dense layers over every
            # involved row (the embedded-PyTorch compute of Fig. 5).
            tctx = current_task_context()
            if tctx is not None:
                rows = len(x_b) + len(x_n1) + len(x_n2)
                weights = sum(
                    p.data.size for p in model.parameters()
                )
                factor = 6 if train else 2
                tctx.cost.cpu_s += (
                    ctx.cluster.cost_model.flop_time(
                        factor * rows * weights
                    )
                )
            loss = cross_entropy(logits, y)
            correct = int(
                (logits.data.argmax(axis=1) == y).sum()
            )
            if train:
                model.zero_grad()
                loss.backward()
                grads = {
                    name: t.grad for name, t in model.named_parameters()
                }
                for name in param_names:
                    params[name].apply_gradients(
                        grads[name].reshape(params[name].shape)
                    )
            return float(loss.item()) * len(node_ids), correct, len(node_ids)

        max_batches = max(
            1, -(-max(1, len(train_ids) // p) // batch_size)
        )

        epoch_losses: List[float] = []
        epoch_sim_times: List[float] = []
        # GNN training tolerates inter-partition inconsistency
        # (Sec. III-B), so a failed server reloads only its own
        # checkpoints and the epoch is NOT redone (relaxed mode).
        ctx.ps.recovery_mode = "relaxed"
        ctx.ps.start_iterations()
        for epoch in range(self.epochs):
            t0 = ctx.sim_time()
            loss_sum = 0.0
            count = 0
            for step in range(max_batches):
                def train_step(it: Iterator[np.ndarray],
                               e=epoch, s=step) -> Tuple[float, int, int]:
                    out = (0.0, 0, 0)
                    for node_arr in it:
                        batch = node_arr[s * batch_size:(s + 1) * batch_size]
                        if len(batch) == 0:
                            continue
                        l, c, m = run_batch(batch, e, train=True)
                        out = (out[0] + l, out[1] + c, out[2] + m)
                    return out

                parts = train_parts.foreach_partition(train_step)
                ctx.ps.barrier()
                loss_sum += sum(x[0] for x in parts)
                count += sum(x[2] for x in parts)
            epoch_losses.append(loss_sum / max(1, count))
            epoch_sim_times.append(ctx.sim_time() - t0)
            ctx.ps.complete_iteration()

        # -- evaluation ----------------------------------------------------
        test_acc = self._evaluate(ctx, run_batch, test_ids, p)
        output = ctx.create_dataframe(
            [(len(train_ids), len(test_ids), test_acc)],
            ["train_nodes", "test_nodes", "accuracy"],
        )
        train_parts.unpersist()
        return AlgorithmResult(
            output, self.epochs,
            stats={
                "accuracy": test_acc,
                "epoch_losses": epoch_losses,
                "epoch_sim_times": epoch_sim_times,
                "preprocess_sim_time": preprocess_time,
                "num_train": len(train_ids),
                "num_test": len(test_ids),
            },
        )

    # ------------------------------------------------------------------

    def _push_features(self, ctx: PSGraphContext, feats, label_vec,
                       n: int) -> None:
        """Executors read feature shards from HDFS and push them to PS."""
        p = ctx.cluster.parallelism
        base = "/input/sage-features"
        for i in range(p):
            sl = np.arange(i, n, p)
            ctx.hdfs.write_pickle(
                f"{base}/part-{i:05d}",
                (sl, self.features[sl], self.labels[sl]),
                overwrite=True,
            )
        hdfs = ctx.hdfs

        def push(idx_it: Iterator[int]) -> None:
            from repro.dataflow.taskctx import current_task_context

            tctx = current_task_context()
            for i in idx_it:
                ids, x, y = hdfs.read_pickle(
                    f"{base}/part-{i:05d}",
                    cost=tctx.cost if tctx else None,
                )
                feats.set(ids, x)
                label_vec.set(ids, y.astype(np.float64))

        ctx.spark.parallelize(range(p), p).foreach_partition(push)

    def _create_weight_matrices(self, ctx: PSGraphContext,
                                blob: ScriptModule) -> Dict[str, object]:
        """One column-sharded PS matrix (server-side Adam) per parameter."""
        params: Dict[str, object] = {}
        for name, array in blob.state.items():
            arr2d = array if array.ndim == 2 else array.reshape(1, -1)
            m = ctx.ps.create_matrix(
                self._unique_name(ctx, f"sage-{name}"),
                arr2d.shape[0], arr2d.shape[1], dtype=np.float64,
                axis=1, storage="column", optimizer=Adam(lr=self.lr),
                num_partitions=min(arr2d.shape[1], ctx.ps.num_servers),
            )
            ctx.ps.agent.set_rows_full(
                m.meta, np.arange(arr2d.shape[0]), arr2d
            )
            params[name] = m
        return params

    def _present(self, dataset: RDD, n: int) -> np.ndarray:
        def scan(it) -> np.ndarray:
            mask = np.zeros(n, dtype=bool)
            for b in it:
                mask[b.src] = True
                mask[b.dst] = True
            return mask

        out = np.zeros(n, dtype=bool)
        for m in dataset.foreach_partition(scan):
            out |= m
        return out

    def _evaluate(self, ctx: PSGraphContext, run_batch, test_ids: np.ndarray,
                  p: int) -> float:
        test_parts = ctx.spark.parallelize(
            [test_ids[i::p] for i in range(p)], p
        )

        def eval_step(it: Iterator[np.ndarray]) -> Tuple[int, int]:
            correct = 0
            total = 0
            for node_arr in it:
                if len(node_arr) == 0:
                    continue
                _l, c, m = run_batch(node_arr, epoch=-1, train=False)
                correct += c
                total += m
            return correct, total

        parts = test_parts.foreach_partition(eval_step)
        correct = sum(c for c, _t in parts)
        total = max(1, sum(t for _c, t in parts))
        return correct / total


def _sample_and_pull(adj, feats, node_ids: np.ndarray,
                     fanouts: Tuple[int, int],
                     rng: np.random.Generator, pad: bool = False):
    """Sample a 2-hop neighborhood from the PS and pull its features.

    With ``pad=True`` every vertex contributes *exactly* ``fanout``
    neighbors (sampling with replacement below the fanout) — the uniform
    sequences the LSTM aggregator unrolls over.

    Returns:
        ``(x_b, x_n1, seg1, x_n2, seg2)`` matching :meth:`SageNet.forward`.
    """
    s1, s2 = fanouts

    def choose(pool: np.ndarray, fallback: int, size: int) -> np.ndarray:
        if len(pool) == 0:
            pool = np.asarray([fallback], dtype=np.int64)
        if pad:
            return rng.choice(pool, size=size, replace=True)
        return rng.choice(pool, size=min(size, len(pool)), replace=False)

    tables1 = adj.get(node_ids)
    n1_ids: List[np.ndarray] = []
    seg1: List[np.ndarray] = []
    for i, t in enumerate(tables1):
        chosen = choose(t, int(node_ids[i]), s1)
        n1_ids.append(chosen)
        seg1.append(np.full(len(chosen), i, dtype=np.int64))
    n1 = np.concatenate(n1_ids)
    seg1_arr = np.concatenate(seg1)
    tables2 = adj.get(n1)
    n2_ids: List[np.ndarray] = []
    seg2: List[np.ndarray] = []
    for i, t in enumerate(tables2):
        chosen = choose(t, int(n1[i]), s2)
        n2_ids.append(chosen)
        seg2.append(np.full(len(chosen), i, dtype=np.int64))
    n2 = np.concatenate(n2_ids)
    seg2_arr = np.concatenate(seg2)
    # One batched feature pull for every distinct vertex involved.
    all_ids = np.concatenate([node_ids, n1, n2])
    all_feats = feats.pull(all_ids).astype(np.float64)
    x_b = all_feats[:len(node_ids)]
    x_n1 = all_feats[len(node_ids):len(node_ids) + len(n1)]
    x_n2 = all_feats[len(node_ids) + len(n1):]
    return x_b, x_n1, seg1_arr, x_n2, seg2_arr
