"""Triangle counting on the parameter server.

"The implementation ... of triangle count is similar to common neighbor"
(Sec. V footnote): undirected neighbor tables are pushed to the PS, then
executors stream canonical edges in batches, pull the two endpoint tables,
and count overlaps.  Every triangle closes exactly three canonical edges,
so the global count is the overlap sum divided by three.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    push_neighbor_tables,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


class TriangleCount(GraphAlgorithm):
    """PSGraph triangle count (global and per-vertex).

    Args:
        batch_size: canonical edges per PS round trip.
        partition: PS partitioner kind for the neighbor table.
    """

    name = "triangle-count"

    def __init__(self, batch_size: int = 4096,
                 partition: str = "hash") -> None:
        self.batch_size = batch_size
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        n = max_vertex_id(dataset) + 1
        table = ctx.ps.create_neighbor_table(
            self._unique_name(ctx, "tc-neighbors"), n,
            partition=self.partition,
        )
        blocks = to_neighbor_tables(
            dataset, symmetric=True, dedupe=True
        ).cache()
        push_neighbor_tables(blocks, table)
        table.compact()
        ctx.ps.barrier()
        batch_size = self.batch_size
        cost_model = ctx.cluster.cost_model

        def score(it: Iterator[NeighborBlock]) -> Iterator[tuple]:
            for block in it:
                # Canonical edges owned by this partition: (v, w) with
                # w > v, read straight off the CSR rows, batched across
                # rows so each PS round trip covers ~batch_size edges.
                pairs_src: list = []
                pairs_dst: list = []
                for v, nbrs in block.rows():
                    higher = nbrs[nbrs > v]
                    pairs_src.extend([v] * len(higher))
                    pairs_dst.extend(higher.tolist())
                for start in range(0, len(pairs_src), batch_size):
                    bs = np.asarray(pairs_src[start:start + batch_size],
                                    dtype=np.int64)
                    bd = np.asarray(pairs_dst[start:start + batch_size],
                                    dtype=np.int64)
                    ids = np.unique(np.concatenate([bs, bd]))
                    tables = table.get(ids)
                    lookup = {
                        int(x): t for x, t in zip(ids.tolist(), tables)
                    }
                    work = 0
                    for v, w in zip(bs.tolist(), bd.tolist()):
                        nv, nw = lookup[v], lookup[w]
                        # Galloping intersection: charged as 2*min.
                        work += 2 * min(len(nv), len(nw))
                        c = len(np.intersect1d(
                            nv, nw, assume_unique=True
                        ))
                        if c:
                            yield (v, w, c)
                    charge_primitive_compute(cost_model, work)

        per_edge = blocks.map_partitions(score)
        triple_sum = sum(
            per_edge.map(lambda row: row[2]).foreach_partition(
                lambda it: sum(it)
            )
        )
        triangles = int(round(triple_sum / 3.0))
        output = ctx.create_dataframe(
            [(triangles,)], ["triangles"]
        )
        blocks.unpersist()
        return AlgorithmResult(
            output, iterations=1,
            stats={"triangles": triangles, "closure_sum": triple_sum},
        )
