"""Base class for PSGraph algorithms (Listing 1's ``GraphAlgo``)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.context import PSGraphContext
from repro.dataflow.dataframe import DataFrame
from repro.dataflow.rdd import RDD


@dataclass
class AlgorithmResult:
    """Uniform result wrapper: a DataFrame plus run statistics.

    Attributes:
        output: the algorithm's result table.
        iterations: supersteps / epochs executed.
        stats: free-form per-algorithm numbers (losses, counts, ...).
    """

    output: DataFrame
    iterations: int = 0
    stats: Dict[str, Any] = field(default_factory=dict)


class GraphAlgorithm:
    """One PSGraph algorithm: ``transform(dataset) -> DataFrame``.

    Subclasses configure themselves in ``__init__`` and implement
    :meth:`transform`, which receives an RDD of
    :class:`~repro.core.blocks.EdgeBlock` (what ``GraphIO.load`` returns)
    and the session context.
    """

    #: Human-readable algorithm name (set by subclasses).
    name = "algorithm"

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        """Run the algorithm on the edge dataset."""
        raise NotImplementedError

    def _unique_name(self, ctx: PSGraphContext, base: str) -> str:
        """A matrix name not yet used in this PS context."""
        candidate = base
        i = 0
        existing = set(ctx.ps.matrix_names())
        while candidate in existing:
            i += 1
            candidate = f"{base}-{i}"
        return candidate
