"""Fast unfolding (Louvain) on the parameter server (Sec. IV-C).

"two models are frequently accessed, i.e., the community of each vertex and
the sum of edge weights in each community.  ...  we store these two models
as vertex2com and com2weight on the PS."

Each pass has the paper's two phases: **modularity optimization** (executors
pull the communities of their vertices' neighbors and the community weight
sums, pick the move with the best modularity gain, and push community
re-assignments plus weight-sum deltas) and **community aggregation** (a
Spark map/shuffle that collapses each community into a super-vertex).
Passes repeat until no move improves modularity.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import EdgeBlock, NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


class FastUnfolding(GraphAlgorithm):
    """PSGraph fast unfolding / Louvain community detection.

    Args:
        num_passes: maximum optimize+aggregate passes.
        max_move_iterations: move rounds per pass.
        partition: PS partitioner kind for vertex2com / com2weight.
    """

    name = "fast-unfolding"

    def __init__(self, num_passes: int = 3, max_move_iterations: int = 8,
                 partition: str = "hash") -> None:
        self.num_passes = num_passes
        self.max_move_iterations = max_move_iterations
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        # Not cached: it is a cheap map over the (cached) input dataset,
        # and caching it would double the resident edge footprint.
        edges = _ensure_weights(dataset)
        n_orig = max_vertex_id(dataset) + 1
        two_m = 2.0 * _total_weight(edges)
        mapping: Optional[np.ndarray] = None  # original vertex -> community
        current = edges
        total_moves = 0
        passes = 0
        for pass_idx in range(self.num_passes):
            pass_mapping, moves = self._one_pass(
                ctx, current, two_m, pass_idx
            )
            passes += 1
            total_moves += moves
            mapping = (pass_mapping if mapping is None
                       else pass_mapping[mapping])
            if moves == 0:
                break
            current = _aggregate(current, pass_mapping)
        assert mapping is not None
        q = modularity_from_edges(edges, mapping)
        present = _present_vertices(edges, n_orig)
        rows = [
            (int(v), int(mapping[v])) for v in np.flatnonzero(present)
        ]
        output = ctx.create_dataframe(rows, ["vertex", "community"])
        edges.unpersist()
        return AlgorithmResult(
            output, passes,
            stats={"modularity": q, "moves": total_moves,
                   "num_communities": len({c for _v, c in rows})},
        )

    # ------------------------------------------------------------------

    def _one_pass(self, ctx: PSGraphContext, current: RDD, two_m: float,
                  pass_idx: int) -> Tuple[np.ndarray, int]:
        """Modularity-optimization phase; returns (vertex->com, moves)."""
        # 4x partitions per executor: averaging several partitions per
        # container smooths hub-induced skew, as Spark deployments do by
        # running more partitions than cores.
        tables = to_neighbor_tables(
            current, symmetric=True, weighted=True,
            num_partitions=4 * current.num_partitions,
        ).cache()
        n = max(
            max_vertex_id(current) + 1, 1
        )
        vertex2com = ctx.ps.create_vector(
            self._unique_name(ctx, f"vertex2com-p{pass_idx}"), n,
            partition=self.partition, init=-1.0,
        )
        com2weight = ctx.ps.create_vector(
            self._unique_name(ctx, f"com2weight-p{pass_idx}"), n,
            partition=self.partition,
        )

        def init(it: Iterator[NeighborBlock]) -> None:
            for block in it:
                if block.num_vertices == 0:
                    continue
                k = _weighted_degrees(block)
                vertex2com.set(
                    block.vertices, block.vertices.astype(np.float64)
                )
                com2weight.push(block.vertices, k)

        tables.foreach_partition(init)
        ctx.ps.barrier()
        cost_model = ctx.spark.cluster.cost_model

        def move(it: Iterator[NeighborBlock]) -> int:
            moves = 0
            for block in it:
                if block.num_vertices == 0:
                    continue
                k = _weighted_degrees(block)
                own = vertex2com.pull(block.vertices)
                ncoms = vertex2com.pull(block.neighbors)
                charge_primitive_compute(
                    cost_model, len(block.neighbors)
                )
                cand_ids = np.unique(np.concatenate([ncoms, own]))
                tot = com2weight.pull(cand_ids.astype(np.int64))
                tot_of = dict(zip(cand_ids.tolist(), tot.tolist()))
                changed_v: List[int] = []
                changed_c: List[float] = []
                delta_coms: List[int] = []
                delta_vals: List[float] = []
                for i, v in enumerate(block.vertices.tolist()):
                    sl = slice(block.indptr[i], block.indptr[i + 1])
                    coms = ncoms[sl]
                    ws = (block.weights[sl] if block.weights is not None
                          else np.ones(sl.stop - sl.start))
                    cand, inverse = np.unique(coms, return_inverse=True)
                    wsum = np.zeros(len(cand))
                    np.add.at(wsum, inverse, ws)
                    own_c = own[i]
                    gains = np.empty(len(cand))
                    for j, c in enumerate(cand.tolist()):
                        tot_c = tot_of.get(c, 0.0)
                        if c == own_c:
                            tot_c -= k[i]
                        gains[j] = wsum[j] - tot_c * k[i] / two_m
                    own_pos = np.flatnonzero(cand == own_c)
                    own_gain = (gains[own_pos[0]] if len(own_pos)
                                else -k[i] * (tot_of.get(own_c, k[i]) - k[i])
                                / two_m)
                    best = int(np.argmax(gains))
                    if gains[best] > own_gain + 1e-12 and \
                            cand[best] != own_c:
                        new_c = int(cand[best])
                        changed_v.append(v)
                        changed_c.append(float(new_c))
                        delta_coms.extend([int(own_c), new_c])
                        delta_vals.extend([-k[i], k[i]])
                        moves += 1
                if changed_v:
                    vertex2com.set(
                        np.asarray(changed_v, dtype=np.int64),
                        np.asarray(changed_c),
                    )
                    com2weight.push(
                        np.asarray(delta_coms, dtype=np.int64),
                        np.asarray(delta_vals),
                    )
            return moves

        total_moves = 0
        for _ in range(self.max_move_iterations):
            moves = sum(tables.foreach_partition(move))
            ctx.ps.barrier()
            total_moves += moves
            if moves == 0:
                break

        raw = vertex2com.to_numpy()
        # Ids absent from the graph keep the -1 init: map them to themselves
        # so composition across passes stays total.
        pass_mapping = np.where(
            raw < 0, np.arange(n), raw
        ).astype(np.int64)
        tables.unpersist()
        ctx.ps.drop_matrix(vertex2com.name)
        ctx.ps.drop_matrix(com2weight.name)
        return pass_mapping, total_moves


def _present_vertices(edges: RDD, n: int) -> np.ndarray:
    """Boolean mask of vertices appearing in the edge blocks."""
    def scan(it: Iterator[EdgeBlock]) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        for b in it:
            mask[b.src] = True
            mask[b.dst] = True
        return mask

    parts = edges.foreach_partition(scan)
    out = np.zeros(n, dtype=bool)
    for p in parts:
        out |= p
    return out


def _weighted_degrees(block: NeighborBlock) -> np.ndarray:
    """Sum of incident edge weights per owned vertex."""
    if block.weights is None:
        return np.diff(block.indptr).astype(np.float64)
    return np.add.reduceat(
        block.weights, block.indptr[:-1]
    ) * (np.diff(block.indptr) > 0)


def _ensure_weights(dataset: RDD) -> RDD:
    """Give unweighted edge blocks unit weights."""
    def fix(it: Iterator[EdgeBlock]) -> Iterator[EdgeBlock]:
        for b in it:
            if b.weight is None:
                yield EdgeBlock(b.src, b.dst, np.ones(b.num_edges))
            else:
                yield b

    return dataset.map_partitions(fix)


def _total_weight(edges: RDD) -> float:
    """Sum of edge weights (each input edge counted once)."""
    return float(sum(
        edges.foreach_partition(
            lambda it: sum(float(b.weight.sum()) for b in it)
        )
    ))


def _aggregate(current: RDD, mapping: np.ndarray) -> RDD:
    """Community aggregation: collapse vertices into their communities.

    Community pairs are combined locally and then merged *globally* with a
    ``reduceByKey`` shuffle (map-side combine) — the paper's "build a new
    network whose vertices are the communities".  Without the global merge
    a popular community pair would be duplicated once per partition, and
    super-vertex adjacency would balloon.
    """
    stride = len(mapping) + 1

    def to_pairs(it: Iterator[EdgeBlock]) -> Iterator[tuple]:
        for b in it:
            pairs = mapping[b.src] * stride + mapping[b.dst]
            uniq, inverse = np.unique(pairs, return_inverse=True)
            w = np.zeros(len(uniq))
            np.add.at(w, inverse, b.weight)
            for key, weight in zip(uniq.tolist(), w.tolist()):
                yield (key, weight)

    reduced = current.map_partitions(to_pairs).reduce_by_key(
        lambda a, b: a + b
    )

    def to_blocks(it: Iterator[tuple]) -> Iterator[EdgeBlock]:
        keys: List[int] = []
        weights: List[float] = []
        for key, weight in it:
            keys.append(key)
            weights.append(weight)
        key_arr = np.asarray(keys, dtype=np.int64)
        yield EdgeBlock(
            (key_arr // stride).astype(np.int64),
            (key_arr % stride).astype(np.int64),
            np.asarray(weights),
        )

    return reduced.map_partitions(to_blocks)


def modularity_from_edges(edges: RDD, communities: np.ndarray) -> float:
    """Newman modularity of a partition over weighted edge blocks."""
    def partials(it: Iterator[EdgeBlock]
                 ) -> Tuple[float, Dict[int, float], Dict[int, float]]:
        inside: Dict[int, float] = {}
        k: Dict[int, float] = {}
        m = 0.0
        for b in it:
            w = b.weight if b.weight is not None else np.ones(b.num_edges)
            m += float(w.sum())
            cs = communities[b.src]
            cd = communities[b.dst]
            same = cs == cd
            for c, wv in zip(cs[same].tolist(), w[same].tolist()):
                inside[c] = inside.get(c, 0.0) + wv
            for v_arr in (b.src, b.dst):
                for c, wv in zip(communities[v_arr].tolist(), w.tolist()):
                    k[c] = k.get(c, 0.0) + wv
        return m, inside, k

    m_total = 0.0
    inside_total: Dict[int, float] = {}
    k_total: Dict[int, float] = {}
    for m, inside, k in edges.foreach_partition(partials):
        m_total += m
        for c, v in inside.items():
            inside_total[c] = inside_total.get(c, 0.0) + v
        for c, v in k.items():
            k_total[c] = k_total.get(c, 0.0) + v
    if m_total == 0:
        return 0.0
    two_m = 2.0 * m_total
    q = 0.0
    for c, tot in k_total.items():
        q += 2.0 * inside_total.get(c, 0.0) / two_m - (tot / two_m) ** 2
    return q
