"""Common neighbor on the parameter server (Sec. IV-B).

"This algorithm requires frequent access to the adjacent vertices of a
vertex.  We hence store the neighbor tables on PS ...  Afterward, the
executor iteratively processes a batch of edges, gets the neighbor tables
of the vertices from PS, and calculates the number of overlapping neighbors
of each vertex pair."

The PS neighbor tables are also the model checkpointed to HDFS for the
failure-recovery experiment (Table II).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import EdgeBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    count_edges,
    max_vertex_id,
    push_neighbor_tables,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


class CommonNeighbor(GraphAlgorithm):
    """PSGraph common neighbor: per-edge overlap counts.

    Args:
        batch_size: edges processed per PS round trip.
        checkpoint: checkpoint the PS neighbor tables to HDFS after the
            build phase (enables server failure recovery mid-run).
        partition: PS partitioner kind for the neighbor table.
    """

    name = "common-neighbor"

    def __init__(self, batch_size: int = 4096, checkpoint: bool = False,
                 partition: str = "hash") -> None:
        self.batch_size = batch_size
        self.checkpoint = checkpoint
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        n = max_vertex_id(dataset) + 1
        table = ctx.ps.create_neighbor_table(
            self._unique_name(ctx, "cn-neighbors"), n,
            partition=self.partition,
        )
        # Build phase: groupBy into undirected neighbor tables, push to PS.
        blocks = to_neighbor_tables(dataset, symmetric=True, dedupe=True)
        pushed = push_neighbor_tables(blocks, table)
        table.compact()
        ctx.ps.barrier()
        if self.checkpoint:
            table.checkpoint()

        batch_size = self.batch_size
        cost_model = ctx.cluster.cost_model

        def score(it: Iterator[EdgeBlock]
                  ) -> Iterator[Tuple[int, int, int]]:
            for block in it:
                for batch in block.batches(batch_size):
                    ids = np.unique(
                        np.concatenate([batch.src, batch.dst])
                    )
                    tables = table.get(ids)
                    lookup = {
                        int(v): t for v, t in zip(ids.tolist(), tables)
                    }
                    work = 0
                    for s, d in zip(batch.src.tolist(), batch.dst.tolist()):
                        ns, nd = lookup[s], lookup[d]
                        # Galloping intersection of sorted arrays:
                        # O(min * log(max/min)), charged as 2*min.
                        work += 2 * min(len(ns), len(nd))
                        common = len(
                            np.intersect1d(ns, nd, assume_unique=True)
                        )
                        yield (s, d, common)
                    charge_primitive_compute(cost_model, work)

        from repro.dataflow.dataframe import DataFrame

        # Lazy result: scoring runs on executors when the frame is acted on.
        output = DataFrame(
            dataset.map_partitions(score), ["src", "dst", "common"]
        )
        return AlgorithmResult(
            output, iterations=1,
            stats={
                "vertices_pushed": pushed,
                "num_edges": count_edges(dataset),
            },
        )


def common_neighbor_reference(src: np.ndarray, dst: np.ndarray
                              ) -> List[Tuple[int, int, int]]:
    """Plain-python reference (for tests): undirected neighbor overlap."""
    adj: dict = {}
    for s, d in zip(src.tolist(), dst.tolist()):
        adj.setdefault(s, set()).add(d)
        adj.setdefault(d, set()).add(s)
    return [
        (s, d, len(adj[s] & adj[d]))
        for s, d in zip(src.tolist(), dst.tolist())
    ]
