"""LINE graph embedding on the parameter server (Sec. IV-D).

Each vertex has "an embedding vector itself and a context vector when the
vertex is a 'context' of other vertices"; both are column-partitioned
across servers so that dot products and SGD updates run server-side:

* **layout** — one column-sharded PS matrix with ``2n`` rows: row ``v`` is
  the embedding ``u_v`` and row ``n+v`` the context ``c_v``.  Columns are
  range-split across servers, so every server holds the *same dimensions*
  of all vectors (Fig. 4's column partitioning);
* **dots on PS** — second-order proximity needs ``sigma(u_i . c_j)``; the
  executor sends index pairs, every server returns partial dot products
  over its columns, and the agent sums them (``PartialDot``);
* **updates on PS** — the SGD step for a pair with coefficient ``g`` is a
  symmetric rank-one update applied locally per column shard
  (``RankOneUpdate``): only indices and coefficients cross the network,
  never embedding vectors.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_seed
from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import EdgeBlock
from repro.core.context import PSGraphContext
from repro.core.ops import charge_primitive_compute, max_vertex_id
from repro.dataflow.rdd import RDD
from repro.dataflow.taskctx import current_task_context
from repro.ps.psfunc import RandomInit


class Line(GraphAlgorithm):
    """PSGraph LINE (first- or second-order proximity).

    Args:
        dim: embedding dimension (the paper uses 128 on DS1).
        order: 1 = first-order proximity (u.u), 2 = second-order (u.c).
        negative: negative samples per positive edge.
        lr: SGD learning rate.
        epochs: passes over the edge set.
        batch_size: edges per PS round trip.
        seed: RNG seed for init and negative sampling.
    """

    name = "line"

    def __init__(self, dim: int = 16, order: int = 2, negative: int = 5,
                 lr: float = 0.025, epochs: int = 3, batch_size: int = 2048,
                 seed: int = DEFAULT_SEED, use_psfunc: bool = True) -> None:
        if order not in (1, 2):
            raise ValueError("order must be 1 or 2")
        self.dim = dim
        self.order = order
        self.negative = negative
        self.lr = lr
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        #: The paper's optimization (Sec. IV-D): dots and updates run on
        #: the servers.  False pulls/pushes whole embedding rows instead —
        #: the "communication-intensive" baseline the paper moves away
        #: from; kept for the ablation bench.
        self.use_psfunc = use_psfunc

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        n = max_vertex_id(dataset) + 1
        emb = ctx.ps.create_embedding(
            self._unique_name(ctx, "line-emb"), rows=2 * n, dim=self.dim
        )
        emb.psfunc(RandomInit(self.seed, scale=0.5 / self.dim))
        # Degree^0.75 negative-sampling distribution (word2vec style).
        degrees = _out_degrees(dataset, n)
        noise = degrees.astype(np.float64) ** 0.75
        noise_p = noise / noise.sum() if noise.sum() > 0 else None
        dataset = dataset.cache()

        order = self.order
        negative = self.negative
        lr = self.lr
        batch_size = self.batch_size
        seed = self.seed
        use_psfunc = self.use_psfunc
        cost_model = ctx.cluster.cost_model
        ctx_offset = n if order == 2 else 0

        def sgd_pairs(left: np.ndarray, right: np.ndarray,
                      labels: np.ndarray) -> float:
            """One SGD step over index pairs; returns summed loss."""
            if use_psfunc:
                dots = emb.dot(left, right)
            else:
                uids, inverse = np.unique(
                    np.concatenate([left, right]), return_inverse=True
                )
                rows = emb.pull_rows(uids)
                li = inverse[:len(left)]
                ri = inverse[len(left):]
                dots = np.einsum("ij,ij->i", rows[li], rows[ri])
            charge_primitive_compute(cost_model, len(left))
            p = 1.0 / (1.0 + np.exp(-np.clip(dots, -30, 30)))
            g = lr * (labels - p)
            if use_psfunc:
                emb.rank_one_update(left, right, g)
            else:
                deltas = np.zeros_like(rows)
                np.add.at(deltas, li, g[:, None] * rows[ri])
                np.add.at(deltas, ri, g[:, None] * rows[li])
                emb.push_rows(uids, deltas)
            eps = 1e-12
            return -float(
                (labels * np.log(p + eps)
                 + (1 - labels) * np.log(1 - p + eps)).sum()
            )

        def train_partition(epoch: int, it: Iterator[EdgeBlock]) -> tuple:
            tctx = current_task_context()
            pid = tctx.partition_id if tctx else 0
            rng = np.random.default_rng(
                derive_seed(seed, "line", epoch, pid)
            )
            loss = 0.0
            pairs = 0
            for block in it:
                for batch in block.batches(batch_size):
                    b = batch.num_edges
                    if b == 0:
                        continue
                    neg_dst = rng.choice(n, size=b * negative, p=noise_p)
                    left = np.concatenate(
                        [batch.src, np.repeat(batch.src, negative)]
                    )
                    right = np.concatenate(
                        [batch.dst, neg_dst]
                    ) + ctx_offset
                    labels = np.zeros(len(left))
                    labels[:b] = 1.0
                    loss += sgd_pairs(left, right, labels)
                    pairs += len(left)
            return loss, pairs

        epoch_losses: List[float] = []
        epoch_sim_times: List[float] = []
        for epoch in range(self.epochs):
            t0 = ctx.sim_time()
            parts = dataset.foreach_partition(
                lambda it, e=epoch: train_partition(e, it)
            )
            ctx.ps.barrier()
            epoch_sim_times.append(ctx.sim_time() - t0)
            total_loss = sum(l for l, _c in parts)
            total_pairs = max(1, sum(c for _l, c in parts))
            epoch_losses.append(total_loss / total_pairs)

        vertices = np.arange(n, dtype=np.int64)
        vectors = emb.pull_rows(vertices)
        rows = [
            (int(v),) + tuple(float(x) for x in vec)
            for v, vec in zip(vertices, vectors)
        ]
        schema = ["vertex"] + [f"e{i}" for i in range(self.dim)]
        output = ctx.create_dataframe(rows, schema)
        dataset.unpersist()
        return AlgorithmResult(
            output, self.epochs,
            stats={
                "epoch_losses": epoch_losses,
                "epoch_sim_times": epoch_sim_times,
                "embedding": emb,
            },
        )


def _out_degrees(dataset: RDD, n: int) -> np.ndarray:
    """Total degree per vertex over the edge blocks."""
    def scan(it: Iterator[EdgeBlock]) -> np.ndarray:
        deg = np.zeros(n, dtype=np.int64)
        for b in it:
            deg += np.bincount(b.src, minlength=n)
            deg += np.bincount(b.dst, minlength=n)
        return deg

    parts = dataset.foreach_partition(scan)
    return np.sum(parts, axis=0)


def link_prediction_score(embeddings: np.ndarray, pos_src: np.ndarray,
                          pos_dst: np.ndarray, rng: np.random.Generator
                          ) -> float:
    """AUC-style sanity score: P(dot(pos) > dot(random)) over edge pairs.

    Used by tests and examples to show LINE embeddings carry structure:
    0.5 is chance, 1.0 is perfect separation.
    """
    n = len(embeddings)
    neg_src = rng.integers(0, n, size=len(pos_src))
    neg_dst = rng.integers(0, n, size=len(pos_src))
    pos = np.einsum("ij,ij->i", embeddings[pos_src], embeddings[pos_dst])
    neg = np.einsum("ij,ij->i", embeddings[neg_src], embeddings[neg_dst])
    return float((pos > neg).mean() + 0.5 * (pos == neg).mean())
