"""DeepWalk / node2vec-style embeddings on the parameter server.

An extension beyond the paper's evaluated algorithms: Sec. II-B cites
DeepWalk and node2vec as the canonical vertex-embedding methods, and both
fit PSGraph's architecture naturally — the *adjacency lives on the PS* (as
in common neighbor), executors sample random walks by pulling neighbor
arrays in batches, and the skip-gram model trains with the same
column-sharded embedding matrix, server-side partial dot products, and
rank-one updates as LINE (Sec. IV-D).

``return_param`` gives a light node2vec flavour: with probability
``1/return_param`` a step returns to the previous vertex, otherwise it
moves to a uniform neighbor (the full p/q second-order bias needs
distance-2 tests per step; this keeps the walk machinery PS-batched).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.common.rng import DEFAULT_SEED, derive_seed
from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    push_neighbor_tables,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD
from repro.dataflow.taskctx import current_task_context
from repro.ps.psfunc import RandomInit


class DeepWalk(GraphAlgorithm):
    """PSGraph DeepWalk: random-walk + skip-gram vertex embeddings.

    Args:
        dim: embedding dimension.
        walk_length: vertices per walk.
        walks_per_vertex: walks started from each vertex per epoch.
        window: skip-gram window (pairs within +-window).
        negative: negative samples per positive pair.
        lr: SGD learning rate.
        epochs: passes over all start vertices.
        return_param: node2vec-ish return bias (1.0 = pure DeepWalk;
            larger discourages immediate backtracking, smaller encourages).
        seed: RNG seed.
    """

    name = "deepwalk"

    def __init__(self, dim: int = 16, walk_length: int = 8,
                 walks_per_vertex: int = 2, window: int = 2,
                 negative: int = 5, lr: float = 0.05, epochs: int = 1,
                 return_param: float = 1.0,
                 seed: int = DEFAULT_SEED) -> None:
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_vertex = walks_per_vertex
        self.window = window
        self.negative = negative
        self.lr = lr
        self.epochs = epochs
        self.return_param = return_param
        self.seed = seed

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        n = max_vertex_id(dataset) + 1
        adj = ctx.ps.create_neighbor_table(
            self._unique_name(ctx, "dw-adj"), n
        )
        tables = to_neighbor_tables(dataset, symmetric=True, dedupe=True)
        push_neighbor_tables(tables, adj)
        adj.compact()
        emb = ctx.ps.create_embedding(
            self._unique_name(ctx, "dw-emb"), rows=2 * n, dim=self.dim
        )
        emb.psfunc(RandomInit(self.seed, scale=0.5 / self.dim))
        ctx.ps.barrier()

        starts = tables.map_partitions(
            lambda it: [b.vertices for b in it if b.num_vertices]
        ).cache()
        params = self  # captured below
        cost_model = ctx.cluster.cost_model

        def train_partition(epoch: int,
                            it: Iterator[np.ndarray]) -> tuple:
            tctx = current_task_context()
            pid = tctx.partition_id if tctx else 0
            rng = np.random.default_rng(
                derive_seed(params.seed, "deepwalk", epoch, pid)
            )
            loss = 0.0
            pairs = 0
            for vertices in it:
                walks = _sample_walks(
                    adj, vertices, params.walk_length,
                    params.walks_per_vertex, params.return_param, rng,
                )
                # Walk sampling + pair extraction burn CPU even when no
                # trainable pair comes out (tiny partitions, window >
                # walk length), so charge before the emptiness check —
                # the `continue` path must not be a free ride.
                charge_primitive_compute(cost_model, walks.size)
                centers, contexts = _skipgram_pairs(walks, params.window)
                if len(centers) == 0:
                    continue
                loss += _sgd(emb, centers, contexts, n, params, rng)
                pairs += len(centers) * (1 + params.negative)
            return loss, pairs

        epoch_losses: List[float] = []
        for epoch in range(self.epochs):
            parts = starts.foreach_partition(
                lambda it, e=epoch: train_partition(e, it)
            )
            ctx.ps.barrier()
            total = sum(l for l, _c in parts)
            count = max(1, sum(c for _l, c in parts))
            epoch_losses.append(total / count)

        vertices = np.arange(n, dtype=np.int64)
        vectors = emb.pull_rows(vertices)
        rows = [
            (int(v),) + tuple(float(x) for x in vec)
            for v, vec in zip(vertices, vectors)
        ]
        schema = ["vertex"] + [f"e{i}" for i in range(self.dim)]
        output = ctx.create_dataframe(rows, schema)
        starts.unpersist()
        return AlgorithmResult(
            output, self.epochs,
            stats={"epoch_losses": epoch_losses, "embedding": emb},
        )


def _sample_walks(adj, vertices: np.ndarray, length: int, per_vertex: int,
                  return_param: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Batched random walks: one PS neighbor pull per step."""
    current = np.repeat(vertices, per_vertex)
    previous = current.copy()
    walks = np.empty((len(current), length), dtype=np.int64)
    walks[:, 0] = current
    for step in range(1, length):
        uniq, inverse = np.unique(current, return_inverse=True)
        tables = adj.get(uniq)
        nxt = np.empty(len(current), dtype=np.int64)
        for i in range(len(current)):
            nbrs = tables[inverse[i]]
            if len(nbrs) == 0:
                nxt[i] = current[i]
                continue
            if (return_param != 1.0
                    and rng.random() < 1.0 / max(return_param, 1e-9)):
                nxt[i] = previous[i]
            else:
                nxt[i] = nbrs[rng.integers(0, len(nbrs))]
        previous = current
        current = nxt
        walks[:, step] = current
    return walks


def _skipgram_pairs(walks: np.ndarray, window: int
                    ) -> tuple:
    """(center, context) pairs within the window, over all walks."""
    centers: List[np.ndarray] = []
    contexts: List[np.ndarray] = []
    length = walks.shape[1]
    for offset in range(1, window + 1):
        if offset >= length:
            break
        a = walks[:, :-offset].ravel()
        b = walks[:, offset:].ravel()
        centers.append(a)
        contexts.append(b)
        centers.append(b)
        contexts.append(a)
    if not centers:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    return np.concatenate(centers), np.concatenate(contexts)


def _sgd(emb, centers: np.ndarray, contexts: np.ndarray, n: int,
         params: DeepWalk, rng: np.random.Generator) -> float:
    """One skip-gram SGD step on the PS (dots + rank-one updates)."""
    k = params.negative
    neg = rng.integers(0, n, size=len(centers) * k)
    left = np.concatenate([centers, np.repeat(centers, k)])
    right = np.concatenate([contexts, neg]) + n  # context rows
    labels = np.zeros(len(left))
    labels[:len(centers)] = 1.0
    dots = emb.dot(left, right)
    p = 1.0 / (1.0 + np.exp(-np.clip(dots, -30, 30)))
    g = params.lr * (labels - p)
    emb.rank_one_update(left, right, g)
    eps = 1e-12
    return -float(
        (labels * np.log(p + eps) + (1 - labels) * np.log(1 - p + eps))
        .sum()
    )
