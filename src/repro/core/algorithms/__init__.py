"""PSGraph algorithms: TG (PageRank, CN, K-core, TC, fast unfolding, LPA),
GE (LINE) and GNN (GraphSage)."""

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.algorithms.common_neighbor import (
    CommonNeighbor,
    common_neighbor_reference,
)
from repro.core.algorithms.connected_components import ConnectedComponents
from repro.core.algorithms.deepwalk import DeepWalk
from repro.core.algorithms.fast_unfolding import (
    FastUnfolding,
    modularity_from_edges,
)
from repro.core.algorithms.graphsage import GraphSage, SageNet, make_sage
from repro.core.algorithms.kcore import KCore
from repro.core.algorithms.label_propagation import LabelPropagation
from repro.core.algorithms.line import Line, link_prediction_score
from repro.core.algorithms.pagerank import PageRank, reference_delta_pagerank
from repro.core.algorithms.triangle_count import TriangleCount

__all__ = [
    "AlgorithmResult",
    "CommonNeighbor",
    "ConnectedComponents",
    "DeepWalk",
    "FastUnfolding",
    "GraphAlgorithm",
    "GraphSage",
    "KCore",
    "LabelPropagation",
    "Line",
    "PageRank",
    "SageNet",
    "TriangleCount",
    "common_neighbor_reference",
    "link_prediction_score",
    "make_sage",
    "modularity_from_edges",
    "reference_delta_pagerank",
]
