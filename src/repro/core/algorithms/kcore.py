"""K-core decomposition on the parameter server.

"The implementation of K-core is similar to PageRank" (Sec. V footnote):
per-vertex core estimates live on the PS, neighbor tables stay in the
executors' RDD partitions, and each iteration pulls the neighbors' current
estimates, applies the h-index operator, and writes back shrunken
estimates.  Initialized with degrees, the h-index iteration converges to
the core number (Lü et al., 2016).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    push_degrees,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


def h_index_rows(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Vectorized-ish h-index per CSR row of neighbor values."""
    out = np.zeros(len(indptr) - 1, dtype=np.float64)
    for i in range(len(indptr) - 1):
        vals = np.sort(values[indptr[i]:indptr[i + 1]])[::-1]
        h = 0
        for rank, v in enumerate(vals, start=1):
            if v >= rank:
                h = rank
            else:
                break
        out[i] = h
    return out


class KCore(GraphAlgorithm):
    """PSGraph K-core (coreness of every vertex).

    Args:
        max_iterations: iteration budget (the h-index operator usually
            converges in a few dozen rounds).
        partition: PS partitioner kind for the core-estimate vector.
    """

    name = "kcore"

    def __init__(self, max_iterations: int = 50,
                 partition: str = "range") -> None:
        self.max_iterations = max_iterations
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        tables = to_neighbor_tables(
            dataset, symmetric=True, dedupe=True
        ).cache()
        n = max_vertex_id(dataset) + 1
        cores = ctx.ps.create_vector(
            self._unique_name(ctx, "kcore"), n, partition=self.partition
        )
        push_degrees(tables, cores)
        ctx.ps.barrier()
        cost_model = ctx.cluster.cost_model

        def step(it: Iterator[NeighborBlock]) -> int:
            changed = 0
            for block in it:
                if block.num_vertices == 0:
                    continue
                neighbor_vals = cores.pull(block.neighbors)
                h = h_index_rows(neighbor_vals, block.indptr)
                charge_primitive_compute(cost_model, len(block.neighbors))
                current = cores.pull(block.vertices)
                shrink = h < current
                if shrink.any():
                    cores.set(block.vertices[shrink], h[shrink])
                    changed += int(shrink.sum())
            return changed

        iterations = 0
        for _ in range(self.max_iterations):
            changed = sum(tables.foreach_partition(step))
            ctx.ps.barrier()
            iterations += 1
            if changed == 0:
                break

        def emit(it: Iterator[NeighborBlock]) -> list:
            rows = []
            for block in it:
                if block.num_vertices == 0:
                    continue
                vals = cores.pull(block.vertices)
                rows.extend(
                    zip(block.vertices.tolist(),
                        vals.astype(np.int64).tolist())
                )
            return rows

        rows = [r for part in tables.foreach_partition(emit) for r in part]
        output = ctx.create_dataframe(rows, ["vertex", "coreness"])
        tables.unpersist()
        return AlgorithmResult(
            output, iterations, stats={"num_vertices": len(rows)}
        )
