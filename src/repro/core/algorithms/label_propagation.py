"""Label propagation on the parameter server.

One of the paper's traditional algorithms ("label propagation detects
densely connected community", Sec. II-B).  Labels live in a PS vector;
each iteration the executors pull the labels of their vertices' neighbors,
adopt the most frequent one (ties broken toward the smaller label for
determinism), and write back changes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD


class LabelPropagation(GraphAlgorithm):
    """PSGraph label propagation for community detection.

    Args:
        max_iterations: iteration budget (LPA converges quickly or
            oscillates; a small budget is standard).
        partition: PS partitioner kind for the label vector.
    """

    name = "label-propagation"

    def __init__(self, max_iterations: int = 10,
                 partition: str = "hash") -> None:
        self.max_iterations = max_iterations
        self.partition = partition

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        tables = to_neighbor_tables(
            dataset, symmetric=True, dedupe=True
        ).cache()
        n = max_vertex_id(dataset) + 1
        labels = ctx.ps.create_vector(
            self._unique_name(ctx, "lpa-labels"), n,
            partition=self.partition, init=-1.0,
        )

        def init(it: Iterator[NeighborBlock]) -> None:
            for block in it:
                if block.num_vertices:
                    labels.set(
                        block.vertices, block.vertices.astype(np.float64)
                    )

        tables.foreach_partition(init)
        ctx.ps.barrier()
        cost_model = ctx.cluster.cost_model

        def step(it: Iterator[NeighborBlock]) -> int:
            changed = 0
            for block in it:
                if block.num_vertices == 0:
                    continue
                nlabels = labels.pull(block.neighbors)
                own = labels.pull(block.vertices)
                charge_primitive_compute(
                    cost_model, len(block.neighbors)
                )
                new_v = []
                new_l = []
                for i, v in enumerate(block.vertices.tolist()):
                    sl = slice(block.indptr[i], block.indptr[i + 1])
                    vals, counts = np.unique(
                        nlabels[sl], return_counts=True
                    )
                    best = vals[counts == counts.max()].min()
                    if best != own[i]:
                        new_v.append(v)
                        new_l.append(best)
                        changed += 1
                if new_v:
                    labels.set(
                        np.asarray(new_v, dtype=np.int64),
                        np.asarray(new_l),
                    )
            return changed

        iterations = 0
        for _ in range(self.max_iterations):
            changed = sum(tables.foreach_partition(step))
            ctx.ps.barrier()
            iterations += 1
            if changed == 0:
                break

        def emit(it: Iterator[NeighborBlock]) -> list:
            rows = []
            for block in it:
                if block.num_vertices:
                    vals = labels.pull(block.vertices)
                    rows.extend(
                        zip(block.vertices.tolist(),
                            vals.astype(np.int64).tolist())
                    )
            return rows

        rows = [r for part in tables.foreach_partition(emit) for r in part]
        output = ctx.create_dataframe(rows, ["vertex", "label"])
        tables.unpersist()
        return AlgorithmResult(
            output, iterations,
            stats={"num_labels": len({l for _v, l in rows})},
        )
