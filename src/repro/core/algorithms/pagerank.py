"""Delta PageRank on the parameter server (Sec. IV-A).

"An optimization of this update rule is to use the increments of ranks
instead of the ranks.  Since the ranks of many vertices barely change after
several iterations, we leverage this sparsity to reduce the communication
cost by transferring the increments of ranks."

PS state is one matrix with four columns per vertex:

====  ==========================================================
col   meaning
====  ==========================================================
0     accumulated rank  (the paper's ``ranks`` vector)
1     Δrank readable this iteration (the paper's ``Δranks``)
2     Δrank being accumulated by pushes for the next iteration
3     out-degree ``L(j)``
====  ==========================================================

One iteration is exactly the paper's five steps: executors pull col 1 for
their local sources, compute destination contributions, push them into
col 2; at the barrier a psFunc advances the state (col 0 += col 2,
col 1 <- col 2, col 2 <- 0) and returns the residual for convergence.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.core.algorithms.base import AlgorithmResult, GraphAlgorithm
from repro.core.blocks import NeighborBlock
from repro.core.context import PSGraphContext
from repro.core.ops import (
    charge_primitive_compute,
    max_vertex_id,
    to_neighbor_tables,
)
from repro.dataflow.rdd import RDD
from repro.ps.psfunc import PsFunc
from repro.ps.storage import DenseRowStore

RANK, DELTA, DELTA_NEXT, OUT_DEG = 0, 1, 2, 3


class PageRankAdvance(PsFunc):
    """End-of-iteration state advance, run where the data lives.

    ``rank += delta_next; delta <- delta_next; delta_next <- 0`` and the
    partial L1 norm of the new delta is returned as the residual.
    """

    def apply(self, store: DenseRowStore) -> float:
        arr = store.array
        arr[:, RANK] += arr[:, DELTA_NEXT]
        arr[:, DELTA] = arr[:, DELTA_NEXT]
        arr[:, DELTA_NEXT] = 0.0
        return float(np.abs(arr[:, DELTA]).sum())

    def merge(self, partials) -> float:
        return float(sum(p for p in partials if p is not None))

    def flops(self, store: DenseRowStore) -> float:
        return 3.0 * store.array.shape[0]


class FullPageRankAdvance(PsFunc):
    """Non-delta (classic power-iteration) advance, for the ablation.

    ``rank <- base + delta_next`` with the residual being the total rank
    change; ``delta_next`` is cleared.
    """

    def __init__(self, base: float) -> None:
        self.base = base

    def apply(self, store: DenseRowStore) -> float:
        arr = store.array
        new = self.base + arr[:, DELTA_NEXT]
        # Untouched vertices (rank exactly 0) stay absent.
        present = arr[:, RANK] > 0.0
        residual = float(
            np.abs(new[present] - arr[present, RANK]).sum()
        )
        arr[present, RANK] = new[present]
        arr[:, DELTA_NEXT] = 0.0
        return residual

    def merge(self, partials) -> float:
        return float(sum(p for p in partials if p is not None))

    def flops(self, store: DenseRowStore) -> float:
        return 4.0 * store.array.shape[0]


class PageRank(GraphAlgorithm):
    """PSGraph PageRank.

    Args:
        max_iterations: iteration budget.
        tol: stop when the summed |Δrank| falls below ``tol`` per vertex.
        damping: the 0.85 of the classic formulation.
        partition: PS partitioner kind for the state matrix.
        use_delta: the paper's increment optimization (Sec. IV-A); when
            False, full ranks are pulled and pushed each iteration (the
            ablation baseline).
        delta_threshold: in delta mode, sources whose |Δrank| is below the
            threshold are skipped entirely — "the ranks of many vertices
            barely change after several iterations" — trading a bounded
            error for less communication.
    """

    name = "pagerank"

    def __init__(self, max_iterations: int = 30, tol: float = 1e-6,
                 damping: float = 0.85, partition: str = "range",
                 use_delta: bool = True,
                 delta_threshold: float = 0.0) -> None:
        self.max_iterations = max_iterations
        self.tol = tol
        self.damping = damping
        self.partition = partition
        self.use_delta = use_delta
        self.delta_threshold = delta_threshold

    def transform(self, ctx: PSGraphContext, dataset: RDD
                  ) -> AlgorithmResult:
        tables = to_neighbor_tables(dataset).cache()
        n = max_vertex_id(dataset) + 1
        state = ctx.ps.create_matrix(
            self._unique_name(ctx, "pagerank"), n, 4,
            partition=self.partition,
        )
        base = 1.0 - self.damping
        damping = self.damping

        def init(it: Iterator[NeighborBlock]) -> None:
            for block in it:
                if block.num_vertices == 0:
                    continue
                state.push(
                    block.vertices,
                    block.degrees().astype(np.float64), col=OUT_DEG,
                )
                ids = np.unique(
                    np.concatenate([block.vertices, block.neighbors])
                )
                fill = np.full(len(ids), base)
                state.set(ids, fill, col=DELTA)
                state.set(ids, fill, col=RANK)

        tables.foreach_partition(init)
        ctx.ps.barrier()

        use_delta = self.use_delta
        threshold = self.delta_threshold
        cost_model = ctx.cluster.cost_model

        def step(it: Iterator[NeighborBlock]) -> int:
            pushed = 0
            for block in it:
                if block.num_vertices == 0:
                    continue
                vertices = block.vertices
                degrees = block.degrees()
                neighbors = block.neighbors
                if use_delta and threshold > 0.0:
                    # Skip sources whose increment is negligible — the
                    # sparsity the paper exploits.
                    deltas = state.pull(vertices, col=DELTA)
                    active = np.abs(deltas) > threshold
                    if not active.any():
                        continue
                    starts = block.indptr[:-1]
                    keep = np.concatenate([
                        np.arange(starts[i], block.indptr[i + 1])
                        for i in np.flatnonzero(active)
                    ])
                    neighbors = neighbors[keep]
                    deltas = deltas[active]
                    degrees = degrees[active]
                else:
                    col = DELTA if use_delta else RANK
                    deltas = state.pull(vertices, col=col)
                deg = np.maximum(degrees, 1).astype(np.float64)
                coef = damping * deltas / deg
                contrib = np.repeat(coef, degrees)
                targets, inverse = np.unique(neighbors, return_inverse=True)
                sums = np.zeros(len(targets))
                np.add.at(sums, inverse, contrib)
                charge_primitive_compute(cost_model, len(neighbors))
                state.push(targets, sums, col=DELTA_NEXT)
                pushed += len(targets)
            return pushed

        iterations = 0
        residual = float("inf")
        advance = (PageRankAdvance() if use_delta
                   else FullPageRankAdvance(base))
        # PageRank cannot bear inconsistency between model partitions
        # (Sec. III-B), so server failures roll every partition back to
        # the last checkpoint and the interrupted iteration is redone.
        ctx.ps.recovery_mode = "strict"
        ctx.ps.start_iterations()
        while ctx.ps.progress < self.max_iterations:
            gen = ctx.ps.rollback_generation
            tables.foreach_partition(step)
            ctx.ps.barrier()
            if ctx.ps.rollback_generation != gen:
                # A server died mid-step and strict recovery rolled the
                # model back; tasks that ran after the restore pushed
                # partial deltas into it, so restore a clean snapshot and
                # redo the iteration.
                ctx.ps.rollback()
                continue
            residual = state.psfunc(advance)
            if ctx.ps.rollback_generation != gen:
                ctx.ps.rollback()
                continue
            ctx.ps.complete_iteration()
            if ctx.ps.rollback_generation != gen:
                ctx.ps.rollback()
                continue
            iterations = ctx.ps.progress
            if residual <= self.tol * n:
                break
            if not use_delta:
                advance = FullPageRankAdvance(base)

        full = state.to_numpy()
        ranks = full[:, RANK]
        present = ranks > 0.0
        ids = np.flatnonzero(present)
        rows = list(zip(ids.tolist(), ranks[present].tolist()))
        output = ctx.create_dataframe(rows, ["vertex", "rank"])
        tables.unpersist()
        return AlgorithmResult(
            output, iterations,
            stats={"residual": residual, "num_vertices": int(present.sum())},
        )


def reference_delta_pagerank(src: np.ndarray, dst: np.ndarray,
                             iterations: int, damping: float = 0.85
                             ) -> Tuple[np.ndarray, np.ndarray]:
    """Single-machine numpy reference of the same recurrence (for tests).

    Returns:
        ``(ids_present, ranks_present)``.
    """
    n = int(max(src.max(), dst.max())) + 1
    outdeg = np.bincount(src, minlength=n).astype(np.float64)
    present = np.zeros(n, dtype=bool)
    present[src] = True
    present[dst] = True
    base = 1.0 - damping
    rank = np.where(present, base, 0.0)
    delta = rank.copy()
    for _ in range(iterations):
        coef = damping * np.where(outdeg > 0, delta / np.maximum(outdeg, 1),
                                  0.0)
        nxt = np.zeros(n)
        np.add.at(nxt, dst, coef[src])
        rank += nxt
        delta = nxt
    ids = np.flatnonzero(present)
    return ids, rank[ids]
