"""Failure-injection utilities for tests, demos and experiments.

Table II's methodology — "we manually kill an executor and a parameter
server" mid-job — recurs across the test suite, the examples and the
experiments; :class:`ChaosMonkey` packages it: declare *what* to kill after
*how many* completed tasks, arm it on a context, and it fires exactly once
per rule while the job runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal

from repro.core.context import PSGraphContext

#: What a rule kills.
Target = Literal["executor", "server"]


@dataclass
class KillRule:
    """Kill ``target`` number ``index`` after ``after_tasks`` result tasks."""

    target: Target
    index: int
    after_tasks: int
    fired: bool = False


@dataclass
class ChaosMonkey:
    """Arms kill rules on a PSGraphContext's task-completion hook.

    Usage::

        monkey = ChaosMonkey(ctx)
        monkey.kill_executor(2, after_tasks=5)
        monkey.kill_server(1, after_tasks=10)
        with monkey:                 # hook armed only inside the block
            result.output.count()
        assert monkey.fired == 2
    """

    ctx: PSGraphContext
    rules: List[KillRule] = field(default_factory=list)
    only_kind: str = "result"
    _seen: int = 0
    _armed: bool = False

    def kill_executor(self, index: int, after_tasks: int) -> "ChaosMonkey":
        """Schedule an executor kill; returns self for chaining."""
        self.rules.append(KillRule("executor", index, after_tasks))
        return self

    def kill_server(self, index: int, after_tasks: int) -> "ChaosMonkey":
        """Schedule a PS server kill; returns self for chaining."""
        self.rules.append(KillRule("server", index, after_tasks))
        return self

    @property
    def fired(self) -> int:
        """How many rules have fired so far."""
        return sum(1 for r in self.rules if r.fired)

    def _hook(self, _stage: int, _partition: int, kind: str) -> None:
        if self.only_kind and kind != self.only_kind:
            return
        self._seen += 1
        for rule in self.rules:
            if rule.fired or self._seen < rule.after_tasks:
                continue
            rule.fired = True
            if rule.target == "executor":
                self.ctx.spark.kill_executor(
                    rule.index, reason="chaos-monkey"
                )
            else:
                self.ctx.ps.kill_server(rule.index)

    def __enter__(self) -> "ChaosMonkey":
        self.ctx.spark.add_task_hook(self._hook)
        self._armed = True
        return self

    def __exit__(self, *exc: object) -> None:
        if self._armed:
            self.ctx.spark.remove_task_hook(self._hook)
            self._armed = False
