"""Sim-time span tracing.

A :class:`Tracer` records *spans* — named intervals of simulated time owned
by one component (a container such as ``executor-3``, ``ps-server-1`` or the
driver) on one *track* (a sub-timeline within the component, e.g. the
executor's ``tasks`` row or one task's own row).  Because every metered
operation in the simulator advances a :class:`~repro.common.simclock.SimClock`
or charges a :class:`~repro.common.simclock.TaskCost`, span boundaries are
read from those, never from the wall clock: exported traces show the
*simulated* schedule of the cluster.

The default tracer everywhere is :data:`NOOP_TRACER`, whose methods do
nothing and allocate nothing, so instrumented code paths cost a single
attribute check when tracing is off and benchmark numbers are unchanged.

Span placement conventions used across the code base (see
``docs/observability.md``):

* ``component`` is the simulated process: a container id or ``"driver"``.
* ``track`` is a row inside that process.  Stage spans live on the driver's
  ``stages`` track; the compressed parallel view of an executor's work is
  its ``tasks`` track; each task attempt additionally owns a serial detail
  track named ``s<stage>.p<partition>`` on which its shuffle / PS / HDFS
  sub-operations nest.
* sim-time seconds go in ``start_s`` / ``end_s``; exporters convert to the
  microseconds Chrome tracing expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.simclock import SimClock, TaskCost

#: Span kinds: ``"span"`` is an interval, ``"instant"`` a point event.
SPAN = "span"
INSTANT = "instant"


@dataclass
class Span:
    """One recorded interval (or instant) of simulated time.

    Attributes:
        component: simulated process the span belongs to (container id).
        track: timeline row within the component.
        name: operation name, e.g. ``"stage"`` or ``"ps.pull"``.
        start_s: sim-time start, in seconds.
        end_s: sim-time end; equals ``start_s`` for instants.
        tags: free-form labels exported as Chrome-trace ``args``.
        kind: :data:`SPAN` or :data:`INSTANT`.
    """

    component: str
    track: str
    name: str
    start_s: float
    end_s: float
    tags: Optional[Dict[str, object]] = None
    kind: str = SPAN

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds."""
        return self.end_s - self.start_s


class _NoopSpanScope:
    """Reusable do-nothing context manager returned by the no-op tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpanScope":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


#: Shared no-op scope: returned wherever a span cannot or need not record.
NOOP_SCOPE = _NoopSpanScope()


class NoopTracer:
    """Tracing disabled: every method is a cheap no-op.

    This is the default tracer threaded through all subsystems.  Hot paths
    guard any span bookkeeping behind ``tracer.enabled`` so a disabled run
    pays at most one attribute lookup per instrumented operation.
    """

    enabled = False

    def add(self, component: str, track: str, name: str, start_s: float,
            end_s: float, tags: Optional[Dict[str, object]] = None) -> None:
        """Record a completed span (no-op)."""

    def instant(self, component: str, track: str, name: str, ts_s: float,
                tags: Optional[Dict[str, object]] = None) -> None:
        """Record a point event (no-op)."""

    def clock_span(self, component: str, track: str, name: str,
                   clock: SimClock,
                   tags: Optional[Dict[str, object]] = None):
        """Span covering a clock-advancing region (no-op scope)."""
        return NOOP_SCOPE

    def cost_span(self, component: str, track: str, name: str,
                  cost: TaskCost, base_s: float,
                  tags: Optional[Dict[str, object]] = None):
        """Span covering a cost-charging region (no-op scope)."""
        return NOOP_SCOPE

    def spans(self) -> List[Span]:
        """Recorded spans (always empty for the no-op tracer)."""
        return []

    def mark(self) -> int:
        """Resume point for :meth:`since` (always 0 for the no-op tracer)."""
        return 0

    def since(self, mark: int) -> List[Span]:
        """Spans recorded after ``mark`` (always empty for the no-op tracer)."""
        return []

    def extend(self, spans: List[Span]) -> None:
        """Append pre-built spans (no-op)."""

    def clear(self) -> None:
        """Drop recorded spans (no-op)."""


#: Shared default tracer instance.
NOOP_TRACER = NoopTracer()


class _ClockSpanScope:
    """Context manager recording a span between two clock readings."""

    __slots__ = ("_tracer", "_component", "_track", "_name", "_clock",
                 "_tags", "_start")

    def __init__(self, tracer: "Tracer", component: str, track: str,
                 name: str, clock: SimClock,
                 tags: Optional[Dict[str, object]]) -> None:
        self._tracer = tracer
        self._component = component
        self._track = track
        self._name = name
        self._clock = clock
        self._tags = tags
        self._start = 0.0

    def __enter__(self) -> "_ClockSpanScope":
        self._start = self._clock.now_s
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.add(self._component, self._track, self._name,
                         self._start, self._clock.now_s, self._tags)


class _CostSpanScope:
    """Context manager placing a span on a task's serial cost timeline.

    During a simulated task the owning clock stands still and work is
    accumulated on a :class:`TaskCost`; an operation charging that cost
    therefore occupies ``[base + cost_before, base + cost_after]`` on the
    task's own timeline, where ``base`` is the executor clock at task start.
    """

    __slots__ = ("_tracer", "_component", "_track", "_name", "_cost",
                 "_base", "_tags", "_before")

    def __init__(self, tracer: "Tracer", component: str, track: str,
                 name: str, cost: TaskCost, base_s: float,
                 tags: Optional[Dict[str, object]]) -> None:
        self._tracer = tracer
        self._component = component
        self._track = track
        self._name = name
        self._cost = cost
        self._base = base_s
        self._tags = tags
        self._before = 0.0

    def __enter__(self) -> "_CostSpanScope":
        self._before = self._cost.total_s
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer.add(
            self._component, self._track, self._name,
            self._base + self._before, self._base + self._cost.total_s,
            self._tags,
        )


@dataclass
class Tracer:
    """Recording tracer: collects :class:`Span` objects in memory."""

    _spans: List[Span] = field(default_factory=list)

    enabled = True

    def add(self, component: str, track: str, name: str, start_s: float,
            end_s: float, tags: Optional[Dict[str, object]] = None) -> None:
        """Record a completed span with explicit boundaries."""
        self._spans.append(
            Span(component, track, name, start_s, end_s, tags)
        )

    def instant(self, component: str, track: str, name: str, ts_s: float,
                tags: Optional[Dict[str, object]] = None) -> None:
        """Record a point event at sim-time ``ts_s``."""
        self._spans.append(
            Span(component, track, name, ts_s, ts_s, tags, kind=INSTANT)
        )

    def clock_span(self, component: str, track: str, name: str,
                   clock: SimClock,
                   tags: Optional[Dict[str, object]] = None
                   ) -> _ClockSpanScope:
        """Span whose boundaries are read from ``clock`` at enter/exit.

        Use for regions that advance a container clock directly (PS server
        compute, checkpoint IO, container restarts).
        """
        return _ClockSpanScope(self, component, track, name, clock, tags)

    def cost_span(self, component: str, track: str, name: str,
                  cost: TaskCost, base_s: float,
                  tags: Optional[Dict[str, object]] = None) -> _CostSpanScope:
        """Span whose boundaries are read from ``cost`` relative to
        ``base_s`` (the executor clock at task start).

        Use for regions that charge a running task's cost accumulator
        (shuffle write/fetch, PS pull/push, HDFS IO inside a task).
        """
        return _CostSpanScope(self, component, track, name, cost, base_s,
                              tags)

    def spans(self) -> List[Span]:
        """All recorded spans, in recording order."""
        return list(self._spans)

    def mark(self) -> int:
        """Number of spans recorded so far (a resume point for
        :meth:`since`)."""
        return len(self._spans)

    def since(self, mark: int) -> List[Span]:
        """Spans recorded after :meth:`mark` returned ``mark``.

        The pool worker uses this to extract exactly the spans one task
        produced, so the driver can splice them back in task order.
        """
        return self._spans[mark:]

    def extend(self, spans: List[Span]) -> None:
        """Append spans recorded elsewhere (pool-worker replay)."""
        self._spans.extend(spans)

    def clear(self) -> None:
        """Drop every recorded span."""
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
