"""Critical-path profiler over recorded span trees.

Attributes every simulated second between t=0 and end-of-run to a stage
operator or a driver-side activity, so a run report can answer "where did
the time go?" with a table that sums to 100% — the methodology the
distributed-graph-systems measurement literature asks of end-to-end
numbers.

The driver's ``stages`` track tiles the run timeline (the scheduler is
sequential), so the profile walks it in two passes:

* **Inside a stage** — the *critical executor* (largest serial busy
  time) determined the barrier, so the stage's wall duration is split
  across that executor's per-task detail spans (``ps.pull``,
  ``shuffle.write``, ``rpc.*`` ...) proportionally to their *exclusive*
  times (nested spans subtracted, flamegraph-style); the remainder is
  task compute.
* **Between stages** — gaps are attributed to overlapping driver-track
  spans (PS recovery, driver-side agent ops, in priority order); any
  remainder is explicit ``driver:idle`` rather than silently dropped.

Because the catch-all rows are part of the table, coverage is 100% by
construction and the dashboard's acceptance bar (>= 95% of end-to-end
sim time accounted for) is a structural property, not luck.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs.tracer import INSTANT, Span

#: Driver tracks consulted (in priority order) to explain inter-stage
#: gaps.  "phases"/"iterations" overlap stages and are skipped.
_GAP_TRACKS: Tuple[str, ...] = ("recovery", "ps-agent")

_KIND_SUFFIX = re.compile(r"-\d+$")

Interval = Tuple[float, float]


def _normalize_kind(kind: str) -> str:
    """Fold per-instance stage kinds ("shuffle-3") onto one label."""
    return _KIND_SUFFIX.sub("", kind)


def _subtract(intervals: List[Interval],
              cut: Interval) -> List[Interval]:
    """Remove ``cut`` from a list of disjoint intervals."""
    lo, hi = cut
    out: List[Interval] = []
    for a, b in intervals:
        if hi <= a or b <= lo:
            out.append((a, b))
            continue
        if a < lo:
            out.append((a, lo))
        if hi < b:
            out.append((hi, b))
    return out


def _exclusive_times(spans: List[Span]) -> Dict[str, float]:
    """Per-name exclusive (self) time for one serial track.

    Spans on a detail track form a properly nested serial timeline;
    classic flamegraph accounting: a span's exclusive time is its
    duration minus the total duration of its direct children.
    """
    ordered = sorted(spans, key=lambda s: (s.start_s, -s.end_s))
    out: Dict[str, float] = defaultdict(float)
    stack: List[List[float]] = []  # [end_s, child_total, duration, idx]
    names: List[str] = []
    eps = 1e-12

    def pop() -> None:
        end_s, child_total, duration = stack.pop()
        name = names.pop()
        out[name] += max(0.0, duration - child_total)
        if stack:
            stack[-1][1] += duration

    for span in ordered:
        while stack and span.start_s >= stack[-1][0] - eps:
            pop()
        stack.append([span.end_s, 0.0, span.duration_s])
        names.append(span.name)
    while stack:
        pop()
    return dict(out)


@dataclass
class PathRow:
    """One aggregated critical-path table row."""

    label: str
    seconds: float
    pct: float

    def to_dict(self) -> Dict[str, object]:
        return {"label": self.label, "seconds": self.seconds,
                "pct": self.pct}


@dataclass
class CriticalPathReport:
    """Full attribution of end-to-end sim time."""

    sim_time_s: float
    rows: List[PathRow]          # every row, sorted by seconds desc
    top_n: int
    flame: Dict[str, object]     # nested {name, value, children} tree

    @property
    def covered_s(self) -> float:
        """Seconds the table accounts for (== sim_time by construction)."""
        return sum(r.seconds for r in self.rows)

    @property
    def covered_pct(self) -> float:
        """Coverage as a percentage of end-to-end sim time."""
        if self.sim_time_s <= 0.0:
            return 100.0
        return 100.0 * self.covered_s / self.sim_time_s

    def table(self) -> List[PathRow]:
        """Top-N rows plus an "(other)" tail so the table sums to 100%."""
        if len(self.rows) <= self.top_n:
            return list(self.rows)
        head = self.rows[:self.top_n]
        tail_s = sum(r.seconds for r in self.rows[self.top_n:])
        tail_pct = sum(r.pct for r in self.rows[self.top_n:])
        return head + [PathRow("(other)", tail_s, tail_pct)]

    def to_dict(self) -> Dict[str, object]:
        return {
            "sim_time_s": self.sim_time_s,
            "covered_s": self.covered_s,
            "covered_pct": self.covered_pct,
            "rows": [r.to_dict() for r in self.rows],
            "table": [r.to_dict() for r in self.table()],
            "flame": self.flame,
        }


def critical_path(spans: Sequence[Span], sim_time_s: float, *,
                  top_n: int = 25) -> CriticalPathReport:
    """Attribute ``sim_time_s`` across stages/operators from span trees."""
    alloc: Dict[Tuple[str, str], float] = defaultdict(float)
    if sim_time_s <= 0.0:
        return CriticalPathReport(sim_time_s, [], top_n,
                                  {"name": "run", "value": 0.0,
                                   "children": []})

    stages = sorted(
        (s for s in spans
         if s.component == "driver" and s.track == "stages"
         and s.kind != INSTANT),
        key=lambda s: (s.start_s, s.end_s),
    )

    # ---- inside stages: split by the critical executor's operators ----
    tasks_by_stage: Dict[int, List[Span]] = defaultdict(list)
    details: Dict[Tuple[str, str], List[Span]] = defaultdict(list)
    for s in spans:
        if s.track == "tasks" and s.tags and "stage" in s.tags:
            tasks_by_stage[int(s.tags["stage"])].append(s)
        elif s.track.startswith("s") and ".p" in s.track:
            details[(s.component, s.track)].append(s)

    covered_hi = 0.0  # how far the stage tiling reached
    gaps: List[Interval] = []
    for stage in stages:
        start = max(stage.start_s, covered_hi)
        end = min(stage.end_s, sim_time_s)
        if start > covered_hi:
            gaps.append((covered_hi, start))
        duration = max(0.0, end - start)
        covered_hi = max(covered_hi, end)
        if duration <= 0.0:
            continue
        sid = int(stage.tags.get("stage", -1)) if stage.tags else -1
        kind = _normalize_kind(
            str(stage.tags.get("kind", "stage"))) if stage.tags else "stage"
        _attribute_stage(alloc, kind, sid, duration,
                         tasks_by_stage.get(sid, ()), details)
    if covered_hi < sim_time_s:
        gaps.append((covered_hi, sim_time_s))

    # ---- between stages: recovery, driver-side agent ops, idle -------
    gap_spans: Dict[str, List[Span]] = {
        track: sorted(
            (s for s in spans
             if s.component == "driver" and s.track == track
             and s.kind != INSTANT),
            key=lambda s: (s.start_s, s.end_s),
        )
        for track in _GAP_TRACKS
    }
    for gap in gaps:
        remaining = [gap]
        for track in _GAP_TRACKS:
            for s in gap_spans[track]:
                nxt: List[Interval] = []
                for a, b in remaining:
                    lo = max(a, s.start_s)
                    hi = min(b, s.end_s)
                    if hi > lo:
                        alloc[(track, s.name)] += hi - lo
                        nxt.extend(_subtract([(a, b)], (lo, hi)))
                    else:
                        nxt.append((a, b))
                remaining = nxt
        for a, b in remaining:
            if b > a:
                alloc[("driver", "idle")] += b - a

    # ---- assemble report ---------------------------------------------
    rows = sorted(
        (PathRow(f"{group}:{op}", secs, 100.0 * secs / sim_time_s)
         for (group, op), secs in alloc.items()),
        key=lambda r: (-r.seconds, r.label),
    )
    groups: Dict[str, Dict[str, float]] = defaultdict(dict)
    for (group, op), secs in sorted(alloc.items()):
        groups[group][op] = secs
    flame = {
        "name": "run",
        "value": sim_time_s,
        "children": [
            {
                "name": group,
                "value": sum(ops.values()),
                "children": [
                    {"name": op, "value": secs, "children": []}
                    for op, secs in sorted(
                        ops.items(), key=lambda kv: (-kv[1], kv[0]))
                ],
            }
            for group, ops in sorted(
                groups.items(),
                key=lambda kv: (-sum(kv[1].values()), kv[0]))
        ],
    }
    return CriticalPathReport(sim_time_s, rows, top_n, flame)


def _attribute_stage(alloc: Dict[Tuple[str, str], float], kind: str,
                     sid: int, duration: float,
                     task_spans: Iterable[Span],
                     details: Dict[Tuple[str, str], List[Span]]) -> None:
    """Split one stage's wall duration across its critical executor."""
    busy: Dict[str, float] = defaultdict(float)
    for s in task_spans:
        busy[s.component] += s.duration_s
    if not busy:
        alloc[(kind, "compute")] += duration
        return
    # Deterministic tie-break: largest busy, then lexicographic id.
    critical = max(busy, key=lambda c: (busy[c], c))
    prefix = f"s{sid}.p"
    detail_spans: List[Span] = []
    for (component, track), track_spans in details.items():
        if component == critical and track.startswith(prefix):
            detail_spans.extend(
                _exclusive_per_track(track_spans))
    if not detail_spans:
        alloc[(kind, "compute")] += duration
        return
    ops: Dict[str, float] = defaultdict(float)
    total = 0.0
    for name, excl in detail_spans:
        op = "compute" if name == "task" else name
        ops[op] += excl
        total += excl
    if total <= 0.0:
        alloc[(kind, "compute")] += duration
        return
    for op, excl in ops.items():
        alloc[(kind, op)] += duration * (excl / total)


def _exclusive_per_track(track_spans: List[Span]
                         ) -> List[Tuple[str, float]]:
    """(name, exclusive seconds) pairs for one detail track."""
    return list(_exclusive_times(track_spans).items())
