"""``repro-obs`` — render telemetry documents into reports.

``repro-obs report`` takes the JSON written by the main CLI's
``--telemetry PATH`` flag and emits a self-contained HTML dashboard
(and, optionally, a cleaned JSON copy), printing a short text summary to
stdout.  ``--require-alert N`` turns the command into a smoke check: the
exit code is 1 unless at least N alerts fired, which is how CI asserts
that a chaos schedule was actually *detected*, not just survived::

    python -m repro.cli pagerank --input edges.tsv \\
        --chaos schedule.json --telemetry telemetry.json
    repro-obs report telemetry.json --out dashboard.html --require-alert 1
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Sequence

from repro.obs.dashboard import write_dashboard


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Render telemetry documents from simulated runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="render a telemetry JSON into an HTML dashboard")
    report.add_argument("telemetry", metavar="TELEMETRY.JSON",
                        help="document written by the main CLI's "
                             "--telemetry flag")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the self-contained HTML dashboard "
                             "here (default: <telemetry>.html)")
    report.add_argument("--json", default=None, metavar="PATH",
                        dest="json_out",
                        help="also re-emit the document as sorted, "
                             "indented JSON")
    report.add_argument("--require-alert", type=int, default=0,
                        metavar="N",
                        help="exit 1 unless at least N alerts fired "
                             "(CI smoke check)")
    report.add_argument("--top", type=int, default=10, metavar="N",
                        help="critical-path rows to print (default 10)")
    return parser


def _summary_lines(doc: Dict[str, object], top: int) -> List[str]:
    telemetry = doc.get("telemetry", {})
    meta = doc.get("meta", {})
    lines = []
    if meta:
        lines.append("run       : " + " ".join(
            f"{k}={v}" for k, v in sorted(meta.items())))
    lines.append(f"sim time  : {doc.get('sim_time_s', 0.0):.3f} s")
    lines.append(f"series    : {len(telemetry.get('series', {}))} "
                 f"({telemetry.get('ticks', 0)} ticks, window "
                 f"{telemetry.get('window_s', 0.0):g} sim-s)")
    for row in telemetry.get("slos", []):
        lines.append(
            f"slo       : {row.get('name'):<24} {row.get('state'):<10}"
            f" alerts={row.get('alerts')} "
            f"max_burn={row.get('max_burn_long', 0.0):.2f}"
        )
    for a in telemetry.get("alerts", []):
        resolved = a.get("resolved_at_s")
        tail = (f"resolved at {resolved:.3f} s"
                if isinstance(resolved, (int, float)) else "still firing")
        lines.append(
            f"alert     : {a.get('slo')} fired at "
            f"{a.get('fired_at_s', 0.0):.3f} s, {tail}"
        )
    for row in (doc.get("chaos") or {}).get("detection", []):
        if row.get("detected_at_s") is None:
            lines.append(f"fault     : {row.get('kind')} -> "
                         f"{row.get('target')}: NOT detected")
        else:
            lines.append(
                f"fault     : {row.get('kind')} -> {row.get('target')} "
                f"detected by {row.get('slo')} after "
                f"{row.get('detection_delay_s', 0.0):.3f} s"
            )
    cp = doc.get("critical_path")
    if isinstance(cp, dict):
        lines.append(f"critical  : table covers "
                     f"{cp.get('covered_pct', 0.0):.2f}% of sim time")
        for row in cp.get("table", [])[:top]:
            lines.append(
                f"  {row.get('pct', 0.0):6.2f}%  "
                f"{row.get('seconds', 0.0):10.4f} s  {row.get('label')}"
            )
    return lines


def cmd_report(args: argparse.Namespace) -> int:
    try:
        with open(args.telemetry) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {args.telemetry}: {e}",
              file=sys.stderr)
        return 1
    if doc.get("schema") != "repro.telemetry/v1":
        print(f"error: {args.telemetry} is not a telemetry document "
              f"(schema={doc.get('schema')!r})", file=sys.stderr)
        return 1
    rc = 0
    out = args.out if args.out is not None else args.telemetry + ".html"
    try:
        n = write_dashboard(out, doc)
        print(f"wrote dashboard ({n} bytes) to {out}")
    except OSError as e:
        print(f"error: cannot write dashboard: {e}", file=sys.stderr)
        rc = 1
    if args.json_out:
        try:
            with open(args.json_out, "w") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
            print(f"wrote JSON to {args.json_out}")
        except OSError as e:
            print(f"error: cannot write JSON: {e}", file=sys.stderr)
            rc = 1
    for line in _summary_lines(doc, args.top):
        print(line)
    alerts = len((doc.get("telemetry") or {}).get("alerts", []))
    if args.require_alert > 0 and alerts < args.require_alert:
        print(f"error: required >= {args.require_alert} alert(s), "
              f"got {alerts}", file=sys.stderr)
        rc = 1
    return rc


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return cmd_report(args)
    raise AssertionError(args.command)  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
