"""``python -m repro.obs`` == the ``repro-obs`` console script."""

import sys

from repro.obs.cli import main

if __name__ == "__main__":
    sys.exit(main())
