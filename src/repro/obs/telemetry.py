"""Windowed telemetry: time-series sampling on sim-clock ticks.

The simulator is event-driven — there is no wall-clock scrape loop — so
the telemetry pipeline samples the shared :class:`MetricsRegistry` at the
deterministic sim-time ticks the engine already produces: stage-end
barriers, PS epoch barriers, and recovery detection
(``SparkContext.notify_tick``).  Each sample diffs counters and histogram
totals against the previous tick and lands the deltas in fixed-width
windows of simulated seconds, with bounded ring-buffer retention per
series.

The :class:`TelemetryCollector` glues the pieces together: it registers
a tick hook, feeds the :class:`TimeSeriesStore`, evaluates the
:class:`~repro.obs.slo.SloEngine`, mirrors fired alerts into the trace
(as instants on the driver's ``alerts`` track) and the metrics registry
(the ``obs.alerts.fired`` counter), and serializes everything —
including the critical-path profile — into the telemetry document the
``repro-obs report`` CLI turns into a dashboard.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.metrics import ALERTS_FIRED, MetricsRegistry
from repro.obs.slo import Alert, SloEngine, SloSpec, default_slos
from repro.obs.tracer import NOOP_TRACER, NoopTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.context import SparkContext

#: Default sampling-window width in simulated seconds.
DEFAULT_WINDOW_S = 5.0

#: Default ring-buffer retention (windows kept per series).
DEFAULT_MAX_WINDOWS = 256

#: Ordered metric-prefix -> component mapping (first match wins; the
#: scheduler entry comes after the more specific shuffle one).
_COMPONENT_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("dataflow.shuffle", "shuffle"),
    ("dataflow", "scheduler"),
    ("ps.", "ps"),
    ("net.rpc", "rpc"),
    ("hdfs", "hdfs"),
    ("yarn", "yarn"),
    ("chaos", "chaos"),
    ("serve", "serve"),
    ("streaming", "streaming"),
    ("ingest", "ingest"),
    ("runner", "driver"),
    ("graphx", "graphx"),
    ("obs", "obs"),
)


def component_of(metric_name: str) -> str:
    """Map a dotted metric name onto its owning component."""
    for prefix, component in _COMPONENT_PREFIXES:
        if metric_name.startswith(prefix):
            return component
    return "other"


class Series:
    """One named time-series with ring-buffer retention.

    Points are ``(window_index, value)`` pairs; the window index is
    ``floor(sim_time / window_s)``.  Counter/histogram series accumulate
    deltas within a window; gauge series keep the last value seen.
    """

    __slots__ = ("name", "kind", "component", "points")

    def __init__(self, name: str, kind: str, max_windows: int) -> None:
        self.name = name
        self.kind = kind
        self.component = component_of(name)
        self.points: "deque[List[float]]" = deque(maxlen=max_windows)

    def record(self, widx: int, value: float, *,
               accumulate: bool) -> None:
        """Fold ``value`` into window ``widx`` (append-only in widx)."""
        if self.points and self.points[-1][0] == widx:
            if accumulate:
                self.points[-1][1] += value
            else:
                self.points[-1][1] = value
            return
        self.points.append([float(widx), float(value)])

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "component": self.component,
            "points": [[int(w), v] for w, v in self.points],
        }


class TimeSeriesStore:
    """Windowed series sampled from a :class:`MetricsRegistry`.

    Counters become per-window *rate* series (delta per window),
    gauges become last-value series, and each histogram contributes a
    ``<name>.rate`` delta-count series plus a cumulative ``<name>.p99``
    percentile series.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 max_windows: int = DEFAULT_MAX_WINDOWS) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        if max_windows < 1:
            raise ValueError("max_windows must be >= 1")
        self.window_s = window_s
        self.max_windows = max_windows
        self.series: Dict[str, Series] = {}
        self._last_counters: Dict[str, float] = {}
        self._last_hist: Dict[str, float] = {}
        self.ticks = 0
        self.last_tick_s = 0.0

    def window_index(self, now_s: float) -> int:
        """The window a sim-time instant falls into."""
        return int(now_s // self.window_s)

    def _series(self, name: str, kind: str) -> Series:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Series(name, kind, self.max_windows)
        return s

    def sample(self, now_s: float, metrics: MetricsRegistry) -> None:
        """Diff the registry against the previous tick at ``now_s``."""
        widx = self.window_index(now_s)
        self.ticks += 1
        self.last_tick_s = now_s
        for name, value in sorted(metrics.snapshot().items()):
            delta = value - self._last_counters.get(name, 0.0)
            self._last_counters[name] = value
            if delta != 0.0 or name in self.series:
                self._series(name, "counter").record(
                    widx, delta, accumulate=True)
        for name, snap in metrics.gauge_snapshot().items():
            self._series(name, "gauge").record(
                widx, snap["value"], accumulate=False)
        for name, hist in metrics.histograms():
            count = float(hist.count)
            delta = count - self._last_hist.get(name, 0.0)
            self._last_hist[name] = count
            if delta != 0.0 or f"{name}.rate" in self.series:
                self._series(f"{name}.rate", "histogram-rate").record(
                    widx, delta, accumulate=True)
                self._series(f"{name}.p99", "histogram-p99").record(
                    widx, hist.percentile(99), accumulate=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump, series sorted by name."""
        return {
            "window_s": self.window_s,
            "max_windows": self.max_windows,
            "ticks": self.ticks,
            "last_tick_s": self.last_tick_s,
            "series": {name: self.series[name].to_dict()
                       for name in sorted(self.series)},
        }


class TelemetryCollector:
    """Tick-driven sampling + SLO evaluation for one simulated run."""

    def __init__(self, metrics: MetricsRegistry,
                 tracer: NoopTracer = NOOP_TRACER, *,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_windows: int = DEFAULT_MAX_WINDOWS,
                 slos: Optional[List[SloSpec]] = None) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.store = TimeSeriesStore(window_s, max_windows)
        self.engine = SloEngine(
            default_slos() if slos is None else slos, window_s=window_s)
        self._spark: Optional["SparkContext"] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, spark: "SparkContext") -> "TelemetryCollector":
        """Register the tick hook on a SparkContext."""
        spark.add_tick_hook(self.tick)
        self._spark = spark
        return self

    def detach(self) -> None:
        """Unregister from the SparkContext (idempotent)."""
        if self._spark is not None:
            self._spark.remove_tick_hook(self.tick)
            self._spark = None

    # -- sampling ----------------------------------------------------------

    def tick(self, now_s: float) -> None:
        """One sim-clock tick: sample the registry, evaluate SLOs."""
        self.store.sample(now_s, self.metrics)
        for alert in self.engine.evaluate(now_s, self.metrics):
            if alert.resolved_at_s is None:
                self.metrics.inc(ALERTS_FIRED)
                self.tracer.instant(
                    "driver", "alerts", f"alert {alert.slo}", now_s,
                    {"slo": alert.slo,
                     "burn_short": alert.burn_short,
                     "burn_long": alert.burn_long},
                )
            else:
                self.tracer.instant(
                    "driver", "alerts", f"resolved {alert.slo}", now_s,
                    {"slo": alert.slo},
                )

    def finalize(self, sim_time_s: float) -> None:
        """Final flush tick at end-of-run (captures trailing deltas)."""
        self.tick(sim_time_s)

    # -- reporting ---------------------------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        """Every alert the engine fired, in firing order."""
        return self.engine.alerts

    def alerts_between(self, start_s: float,
                       end_s: float) -> List[Alert]:
        """Alerts whose detection timestamp lies in ``[start_s, end_s]``."""
        return [a for a in self.engine.alerts
                if start_s <= a.fired_at_s <= end_s]

    def to_dict(self) -> Dict[str, object]:
        """Store + SLO dump (no critical path; see build_telemetry_doc)."""
        doc = self.store.to_dict()
        doc.update(self.engine.to_dict())
        return doc


def build_telemetry_doc(collector: TelemetryCollector,
                        tracer: NoopTracer,
                        sim_time_s: float, *,
                        meta: Optional[Dict[str, object]] = None,
                        chaos: Optional[Dict[str, object]] = None,
                        top_n: int = 25) -> Dict[str, object]:
    """Assemble the full telemetry document for one finished run.

    This is what ``--telemetry PATH`` writes and ``repro-obs report``
    renders: windowed series, SLO status, the alert log, the critical-path
    profile over the recorded spans, and (for chaos runs) the fault report
    with its detection-to-recovery timeline.
    """
    from repro.obs.critical import critical_path

    doc: Dict[str, object] = {
        "schema": "repro.telemetry/v1",
        "meta": dict(meta or {}),
        "sim_time_s": sim_time_s,
        "telemetry": collector.to_dict(),
    }
    doc["critical_path"] = critical_path(
        tracer.spans(), sim_time_s, top_n=top_n).to_dict()
    if chaos is not None:
        doc["chaos"] = chaos
    return doc
