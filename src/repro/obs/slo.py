"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective over one metric stream — "99% of
``ps.pull`` latencies under 0.5 sim-s", "99.9% of liveness probes see
every PS server alive" — and the :class:`SloEngine` evaluates it at every
sim-clock tick the telemetry collector receives.

Alerting follows the multi-window burn-rate recipe used for production
SLOs: the *burn rate* is the fraction of events that violated the
objective divided by the error budget (``1 - objective``); an alert fires
only when the burn rate exceeds the rule's threshold over **both** a long
window (sustained damage) and a short window (still happening now), and
resolves once the short window recovers.  Both windows are measured in
simulated seconds, so a seeded run fires exactly the same alerts at
exactly the same sim times every run — the ``repro.lint`` double-run
harness diffs them.

Three objective kinds cover the simulator's streams:

* ``latency`` — a histogram plus a threshold; bad events are samples
  above the threshold (diffed via ``Histogram.count_above`` between
  ticks).
* ``ratio`` — two counters; bad/total deltas between ticks (task
  failures over task launches).
* ``availability`` — a liveness gauge probed once per tick; a tick where
  ``alive < expected`` is one bad probe.  This is what turns a chaos
  ``kill_server`` into an alert *between* fault injection and recovery:
  the PS master ticks the collector at detection time, while the gauge
  still reads degraded.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.metrics import (
    EXECUTORS_ALIVE_G,
    MetricsRegistry,
    PS_PULL_LATENCY_H,
    PS_SERVERS_ALIVE_G,
    PS_SERVERS_TOTAL_G,
    TASKS_FAILED,
    TASKS_LAUNCHED,
)

#: Objective kinds understood by the engine.
SLO_KINDS = ("latency", "ratio", "availability")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective plus its burn-rate alert rule.

    Args:
        name: stable identifier ("ps-availability").
        description: operator-facing one-liner.
        kind: one of :data:`SLO_KINDS`.
        objective: target good-event fraction in (0, 1); the error budget
            is ``1 - objective``.
        histogram / threshold_s: for ``latency`` — samples above the
            threshold are bad.
        bad_counter / total_counter: for ``ratio``.
        alive_gauge / expected_gauge: for ``availability``; when
            ``expected_gauge`` is None the gauge's own high-water mark is
            the expectation (membership discovered at runtime).
        short_windows / long_windows: rule windows in multiples of the
            collector's sampling window.
        burn_threshold: burn rate both windows must exceed to fire.
    """

    name: str
    description: str
    kind: str
    objective: float
    histogram: Optional[str] = None
    threshold_s: float = 0.0
    bad_counter: Optional[str] = None
    total_counter: Optional[str] = None
    alive_gauge: Optional[str] = None
    expected_gauge: Optional[str] = None
    short_windows: int = 1
    long_windows: int = 6
    burn_threshold: float = 10.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1): {self.objective}"
            )
        if self.short_windows < 1 or self.long_windows < self.short_windows:
            raise ValueError("need 1 <= short_windows <= long_windows")

    @property
    def error_budget(self) -> float:
        """Tolerated bad-event fraction."""
        return 1.0 - self.objective

    def objective_label(self) -> str:
        """Human-readable statement of the objective."""
        pct = self.objective * 100.0
        if self.kind == "latency":
            return (f"{pct:g}% of {self.histogram} samples "
                    f"<= {self.threshold_s:g} sim-s")
        if self.kind == "ratio":
            return (f"{pct:g}% of {self.total_counter} events "
                    f"not in {self.bad_counter}")
        return f"{pct:g}% of probes see {self.alive_gauge} at full strength"


@dataclass
class Alert:
    """One fired burn-rate alert (and, once recovered, its resolution)."""

    slo: str
    fired_at_s: float
    burn_short: float
    burn_long: float
    resolved_at_s: Optional[float] = None

    @property
    def active(self) -> bool:
        """Whether the alert has not resolved yet."""
        return self.resolved_at_s is None

    def to_dict(self) -> Dict[str, object]:
        return {
            "slo": self.slo,
            "fired_at_s": self.fired_at_s,
            "resolved_at_s": self.resolved_at_s,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
        }


class _SloState:
    """Mutable per-SLO evaluation state."""

    __slots__ = ("spec", "last_total", "last_bad", "windows",
                 "total_events", "bad_events", "burn_short", "burn_long",
                 "max_burn_long", "active_alert")

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.last_total = 0.0
        self.last_bad = 0.0
        # window index -> [good, bad]; pruned to the long window.
        self.windows: "OrderedDict[int, List[float]]" = OrderedDict()
        self.total_events = 0.0
        self.bad_events = 0.0
        self.burn_short = 0.0
        self.burn_long = 0.0
        self.max_burn_long = 0.0
        self.active_alert: Optional[Alert] = None


class SloEngine:
    """Evaluates a set of SLOs on sim-clock ticks and manages alerts."""

    def __init__(self, slos: List[SloSpec], *, window_s: float) -> None:
        if window_s <= 0.0:
            raise ValueError("window_s must be positive")
        names = [s.name for s in slos]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self.window_s = window_s
        self._states = [_SloState(s) for s in slos]
        self.alerts: List[Alert] = []

    # -- sampling ----------------------------------------------------------

    def _cumulative(self, state: _SloState,
                    metrics: MetricsRegistry) -> Tuple[float, float]:
        """Cumulative (total, bad) event counts for one SLO."""
        spec = state.spec
        if spec.kind == "latency":
            hist = metrics.histogram(spec.histogram)
            return float(hist.count), float(
                hist.count_above(spec.threshold_s))
        if spec.kind == "ratio":
            return (metrics.get(spec.total_counter),
                    metrics.get(spec.bad_counter))
        # availability: one probe per tick against the liveness gauge.
        snap = metrics.gauge_snapshot().get(spec.alive_gauge)
        if snap is None:
            return state.last_total, state.last_bad
        expected = (metrics.get_gauge(spec.expected_gauge)
                    if spec.expected_gauge is not None else snap["high"])
        degraded = snap["value"] < expected
        return (state.last_total + 1.0,
                state.last_bad + (1.0 if degraded else 0.0))

    def _burn(self, state: _SloState, widx: int, n_windows: int) -> float:
        """Burn rate over the last ``n_windows`` sampling windows."""
        lo = widx - n_windows + 1
        good = bad = 0.0
        for w, (g, b) in state.windows.items():
            if w >= lo:
                good += g
                bad += b
        total = good + bad
        if total <= 0.0:
            return 0.0
        return (bad / total) / state.spec.error_budget

    def evaluate(self, now_s: float,
                 metrics: MetricsRegistry) -> List[Alert]:
        """Sample every SLO at sim time ``now_s``; returns state changes.

        The returned list holds alerts that *fired* or *resolved* on this
        tick (an Alert appears once per transition; check
        ``resolved_at_s`` to tell which).
        """
        widx = int(now_s // self.window_s)
        changed: List[Alert] = []
        for state in self._states:
            spec = state.spec
            total, bad = self._cumulative(state, metrics)
            d_total = max(0.0, total - state.last_total)
            d_bad = max(0.0, bad - state.last_bad)
            state.last_total, state.last_bad = total, bad
            state.total_events += d_total
            state.bad_events += d_bad
            if d_total > 0.0:
                cell = state.windows.setdefault(widx, [0.0, 0.0])
                cell[0] += d_total - d_bad
                cell[1] += d_bad
            # Prune windows that fell out of the long window.
            lo = widx - spec.long_windows + 1
            for w in [w for w in state.windows if w < lo]:
                del state.windows[w]
            state.burn_short = self._burn(state, widx, spec.short_windows)
            state.burn_long = self._burn(state, widx, spec.long_windows)
            state.max_burn_long = max(state.max_burn_long, state.burn_long)
            if state.active_alert is None:
                if (state.burn_short >= spec.burn_threshold
                        and state.burn_long >= spec.burn_threshold):
                    alert = Alert(
                        slo=spec.name, fired_at_s=now_s,
                        burn_short=state.burn_short,
                        burn_long=state.burn_long,
                    )
                    state.active_alert = alert
                    self.alerts.append(alert)
                    changed.append(alert)
            elif state.burn_short < spec.burn_threshold:
                state.active_alert.resolved_at_s = now_s
                changed.append(state.active_alert)
                state.active_alert = None
        return changed

    # -- reporting ---------------------------------------------------------

    def status(self) -> List[Dict[str, object]]:
        """Per-SLO status rows for reports and the dashboard."""
        rows: List[Dict[str, object]] = []
        for state in self._states:
            spec = state.spec
            fired = [a for a in self.alerts if a.slo == spec.name]
            if state.active_alert is not None:
                verdict = "firing"
            elif fired:
                verdict = "recovered"
            else:
                verdict = "ok"
            rows.append({
                "name": spec.name,
                "kind": spec.kind,
                "description": spec.description,
                "objective": spec.objective,
                "objective_label": spec.objective_label(),
                "burn_threshold": spec.burn_threshold,
                "short_windows": spec.short_windows,
                "long_windows": spec.long_windows,
                "total_events": state.total_events,
                "bad_events": state.bad_events,
                "burn_short": state.burn_short,
                "burn_long": state.burn_long,
                "max_burn_long": state.max_burn_long,
                "alerts": len(fired),
                "state": verdict,
            })
        return rows

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dump: status rows plus the full alert log."""
        return {
            "window_s": self.window_s,
            "slos": self.status(),
            "alerts": [a.to_dict() for a in self.alerts],
        }


def default_slos() -> List[SloSpec]:
    """The stock objectives every telemetry run watches.

    Thresholds are intentionally loose for healthy seeded runs — they are
    regression canaries and fault detectors, not tuning targets.
    """
    return [
        SloSpec(
            name="ps-availability",
            description="every PS server answers health checks",
            kind="availability", objective=0.999,
            alive_gauge=PS_SERVERS_ALIVE_G,
            expected_gauge=PS_SERVERS_TOTAL_G,
            short_windows=1, long_windows=6, burn_threshold=10.0,
        ),
        SloSpec(
            name="executor-availability",
            description="every executor container is alive",
            kind="availability", objective=0.999,
            alive_gauge=EXECUTORS_ALIVE_G,
            short_windows=1, long_windows=6, burn_threshold=10.0,
        ),
        SloSpec(
            name="ps-pull-latency",
            description="agent pull round-trips stay fast",
            kind="latency", objective=0.99,
            histogram=PS_PULL_LATENCY_H, threshold_s=1.0,
            short_windows=2, long_windows=8, burn_threshold=6.0,
        ),
        SloSpec(
            name="task-success",
            description="tasks finish without retries",
            kind="ratio", objective=0.95,
            bad_counter=TASKS_FAILED, total_counter=TASKS_LAUNCHED,
            short_windows=2, long_windows=8, burn_threshold=6.0,
        ),
    ]
