"""Self-contained HTML dashboard for one telemetry document.

Renders the JSON written by ``--telemetry`` into a single HTML file with
no external assets: stat tiles, SLO status, the alert log, the chaos
detection timeline, a two-level critical-path icicle with its top-N
table, and per-component sparkline small-multiples of the windowed
series.  Everything is computed from the document — no wall clock, no
randomness — so the same document always renders byte-identical HTML.

Charts follow the repository's data-viz conventions: categorical colors
are assigned in fixed slot order (never cycled past the validated
palette — overflow folds into "other"), status colors are reserved and
always paired with an icon + label, values/labels wear text tokens
rather than series colors, one axis per chart, 2px line marks, and a
table fallback under every chart.  Light and dark palettes are both
shipped via CSS custom properties and ``prefers-color-scheme``.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional, Sequence, Tuple

# Categorical slots (validated order; light, dark). Slots 4+ appear only
# in adjacent contexts (icicle segments), which the 8-slot order passes.
_SERIES = [
    ("#2a78d6", "#3987e5"),
    ("#eb6834", "#d95926"),
    ("#1baf7a", "#199e70"),
    ("#eda100", "#c98500"),
    ("#e87ba4", "#d55181"),
    ("#008300", "#008300"),
    ("#4a3aa7", "#9085e9"),
    ("#e34948", "#e66767"),
]

#: Status palette (fixed, never themed) with icon + label pairing.
_STATUS = {
    "ok": ("var(--status-good)", "✓", "ok"),
    "recovered": ("var(--status-warning)", "▲", "recovered"),
    "firing": ("var(--status-critical)", "✕", "firing"),
}

_SPARK_W, _SPARK_H = 260, 64
_PAD = 6
_MAX_SERIES_PER_COMPONENT = 8


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def _fmt(v: Optional[float], digits: int = 4) -> str:
    if v is None:
        return "—"
    if v == int(v) and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:,.{digits}f}"


def _css() -> str:
    light = """
      color-scheme: light;
      --page: #f9f9f7; --surface-1: #fcfcfb;
      --text-primary: #0b0b0b; --text-secondary: #52514e;
      --text-muted: #898781;
      --gridline: #e1e0d9; --baseline: #c3c2b7;
      --border: rgba(11,11,11,0.10);
      --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
      --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
      --series-7: #4a3aa7; --series-8: #e34948;
    """
    dark = """
      color-scheme: dark;
      --page: #0d0d0d; --surface-1: #1a1a19;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --text-muted: #898781;
      --gridline: #2c2c2a; --baseline: #383835;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
      --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
      --series-7: #9085e9; --series-8: #e66767;
    """
    return f"""
    :root {{ {light}
      --status-good: #0ca30c; --status-warning: #fab219;
      --status-serious: #ec835a; --status-critical: #d03b3b;
    }}
    @media (prefers-color-scheme: dark) {{
      :root:where(:not([data-theme="light"])) {{ {dark} }}
    }}
    :root[data-theme="dark"] {{ {dark} }}
    * {{ box-sizing: border-box; }}
    body {{
      margin: 0; padding: 24px; background: var(--page);
      color: var(--text-primary);
      font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
    }}
    h1 {{ font-size: 20px; margin: 0 0 4px; }}
    h2 {{ font-size: 15px; margin: 28px 0 10px; }}
    h3 {{ font-size: 13px; margin: 18px 0 8px;
         color: var(--text-secondary); }}
    .meta {{ color: var(--text-secondary); margin-bottom: 18px; }}
    .tiles {{ display: flex; flex-wrap: wrap; gap: 12px; }}
    .tile {{
      background: var(--surface-1); border: 1px solid var(--border);
      border-radius: 8px; padding: 12px 16px; min-width: 130px;
    }}
    .tile .v {{ font-size: 22px; }}
    .tile .k {{ color: var(--text-secondary); font-size: 12px; }}
    table {{
      border-collapse: collapse; background: var(--surface-1);
      border: 1px solid var(--border); border-radius: 8px; width: 100%;
    }}
    th, td {{
      text-align: left; padding: 6px 12px;
      border-bottom: 1px solid var(--gridline); font-size: 13px;
    }}
    th {{ color: var(--text-secondary); font-weight: 600; }}
    tr:last-child td {{ border-bottom: none; }}
    td.num, th.num {{
      text-align: right; font-variant-numeric: tabular-nums;
    }}
    .status {{ white-space: nowrap; }}
    .status .icon {{ font-weight: 700; }}
    .bar {{
      display: inline-block; height: 10px; border-radius: 2px;
      background: var(--series-1); vertical-align: baseline;
    }}
    .icicle {{ display: flex; gap: 2px; margin-bottom: 2px; }}
    .icicle .seg {{
      height: 26px; border-radius: 3px; overflow: hidden;
      color: #fff; font-size: 11px; line-height: 26px;
      padding: 0 4px; white-space: nowrap; min-width: 2px;
    }}
    .icicle .seg.dim {{ opacity: 0.72; }}
    .cards {{
      display: grid; gap: 12px;
      grid-template-columns: repeat(auto-fill, minmax(280px, 1fr));
    }}
    .card {{
      background: var(--surface-1); border: 1px solid var(--border);
      border-radius: 8px; padding: 10px 12px; position: relative;
    }}
    .card .name {{
      font-size: 12px; color: var(--text-secondary);
      overflow-wrap: anywhere;
    }}
    .card .last {{
      font-size: 15px; font-variant-numeric: tabular-nums;
    }}
    .card svg {{ display: block; }}
    .axis {{ color: var(--text-muted); font-size: 10px;
            display: flex; justify-content: space-between; }}
    details {{ margin-top: 6px; }}
    summary {{ color: var(--text-muted); font-size: 11px;
              cursor: pointer; }}
    details table {{ margin-top: 4px; }}
    .tooltip {{
      position: absolute; pointer-events: none; display: none;
      background: var(--surface-1); border: 1px solid var(--border);
      border-radius: 4px; padding: 2px 6px; font-size: 11px;
      font-variant-numeric: tabular-nums; white-space: nowrap; z-index: 2;
    }}
    .note {{ color: var(--text-muted); font-size: 12px; margin: 6px 0; }}
    """


_JS = """
document.querySelectorAll('svg.spark').forEach(function (svg) {
  var pts = JSON.parse(svg.dataset.points || '[]');
  if (!pts.length) return;
  var card = svg.closest('.card');
  var tip = card.querySelector('.tooltip');
  var dot = svg.querySelector('.hover-dot');
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var x = (ev.clientX - rect.left) * (svg.viewBox.baseVal.width / rect.width);
    var best = pts[0];
    for (var i = 1; i < pts.length; i++) {
      if (Math.abs(pts[i][0] - x) < Math.abs(best[0] - x)) best = pts[i];
    }
    dot.setAttribute('cx', best[0]);
    dot.setAttribute('cy', best[1]);
    dot.style.display = 'block';
    tip.textContent = 't=' + best[2] + 's  ' + best[3];
    tip.style.display = 'block';
    tip.style.left = Math.min(ev.clientX - rect.left + 12,
                              rect.width - 80) + 'px';
    tip.style.top = (svg.offsetTop - 4) + 'px';
  });
  svg.addEventListener('mouseleave', function () {
    dot.style.display = 'none';
    tip.style.display = 'none';
  });
});
"""


def _status_cell(state: str) -> str:
    color, icon, label = _STATUS.get(
        state, ("var(--text-muted)", "·", state))
    return (f'<span class="status"><span class="icon" '
            f'style="color:{color}">{icon}</span> {_esc(label)}</span>')


def _tiles(doc: Dict[str, object]) -> str:
    telemetry = doc.get("telemetry", {})
    slos = telemetry.get("slos", [])
    alerts = telemetry.get("alerts", [])
    firing = sum(1 for s in slos if s.get("state") == "firing")
    tiles = [
        ("sim time", f"{_fmt(doc.get('sim_time_s'), 2)} s"),
        ("ticks sampled", _fmt(telemetry.get("ticks"))),
        ("series", _fmt(len(telemetry.get("series", {})))),
        ("alerts fired", _fmt(len(alerts))),
        ("SLOs firing", _fmt(firing)),
    ]
    cells = "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>'
        for k, v in tiles
    )
    return f'<div class="tiles">{cells}</div>'


def _slo_table(slos: Sequence[Dict[str, object]]) -> str:
    if not slos:
        return '<p class="note">no SLOs evaluated</p>'
    rows = []
    for s in slos:
        rows.append(
            "<tr>"
            f"<td>{_esc(s.get('name'))}</td>"
            f"<td>{_status_cell(str(s.get('state')))}</td>"
            f"<td>{_esc(s.get('objective_label'))}</td>"
            f"<td class='num'>{_fmt(s.get('bad_events'))} / "
            f"{_fmt(s.get('total_events'))}</td>"
            f"<td class='num'>{_fmt(s.get('burn_long'), 2)}</td>"
            f"<td class='num'>{_fmt(s.get('max_burn_long'), 2)}</td>"
            f"<td class='num'>{_fmt(s.get('alerts'))}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>SLO</th><th>state</th><th>objective</th>"
        "<th class='num'>bad / total</th><th class='num'>burn (long)</th>"
        "<th class='num'>max burn</th><th class='num'>alerts</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _alert_table(alerts: Sequence[Dict[str, object]]) -> str:
    if not alerts:
        return '<p class="note">no alerts fired</p>'
    rows = []
    for a in alerts:
        fired = a.get("fired_at_s")
        resolved = a.get("resolved_at_s")
        dur = (resolved - fired
               if isinstance(resolved, (int, float))
               and isinstance(fired, (int, float)) else None)
        rows.append(
            "<tr>"
            f"<td>{_esc(a.get('slo'))}</td>"
            f"<td class='num'>{_fmt(fired)}</td>"
            f"<td class='num'>{_fmt(resolved)}</td>"
            f"<td class='num'>{_fmt(dur)}</td>"
            f"<td class='num'>{_fmt(a.get('burn_short'), 1)}</td>"
            f"<td class='num'>{_fmt(a.get('burn_long'), 1)}</td>"
            "</tr>"
        )
    return (
        "<table><thead><tr><th>SLO</th><th class='num'>fired (sim-s)</th>"
        "<th class='num'>resolved</th><th class='num'>duration</th>"
        "<th class='num'>burn short</th><th class='num'>burn long</th>"
        f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
    )


def _chaos_section(chaos: Dict[str, object]) -> str:
    out = []
    fired = chaos.get("fired", [])
    detection = chaos.get("detection", [])
    if fired:
        rows = []
        by_key = {(d.get("kind"), d.get("injected_at_s")): d
                  for d in detection}
        for f in fired:
            d = by_key.get((f.get("kind"), f.get("sim_time_s")), {})
            rows.append(
                "<tr>"
                f"<td>{_esc(f.get('kind'))}</td>"
                f"<td>{_esc(f.get('target'))}</td>"
                f"<td class='num'>{_fmt(f.get('sim_time_s'))}</td>"
                f"<td class='num'>{_fmt(d.get('detected_at_s'))}</td>"
                f"<td>{_esc(d.get('slo') or '—')}</td>"
                f"<td class='num'>{_fmt(d.get('detection_delay_s'))}</td>"
                f"<td class='num'>{_fmt(d.get('recovered_at_s'))}</td>"
                "</tr>"
            )
        out.append(
            "<table><thead><tr><th>fault</th><th>target</th>"
            "<th class='num'>injected (sim-s)</th>"
            "<th class='num'>detected</th><th>by SLO</th>"
            "<th class='num'>delay</th><th class='num'>recovered</th>"
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
        )
    else:
        out.append('<p class="note">no faults fired</p>')
    return "".join(out)


def _critical_section(cp: Dict[str, object]) -> str:
    table = cp.get("table", [])
    flame = cp.get("flame", {})
    sim = cp.get("sim_time_s") or 0.0
    out = [
        f'<p class="note">table accounts for '
        f'{_fmt(cp.get("covered_pct"), 2)}% of '
        f'{_fmt(sim, 2)} sim-s</p>'
    ]
    children = flame.get("children", [])
    if children and sim > 0:
        shown = children[:len(_SERIES)]
        folded = children[len(_SERIES):]
        top, bottom = [], []
        for idx, group in enumerate(shown):
            pct = 100.0 * group.get("value", 0.0) / sim
            color = f"var(--series-{idx + 1})"
            label = (f"{_esc(group.get('name'))} {pct:.1f}%"
                     if pct >= 6.0 else "")
            title = (f"{_esc(group.get('name'))}: "
                     f"{_fmt(group.get('value'))} s ({pct:.1f}%)")
            top.append(
                f'<div class="seg" title="{title}" '
                f'style="width:{max(pct, 0.15):.3f}%;'
                f'background:{color}">{label}</div>'
            )
            for j, op in enumerate(group.get("children", [])):
                op_pct = 100.0 * op.get("value", 0.0) / sim
                op_title = (f"{_esc(group.get('name'))} › "
                            f"{_esc(op.get('name'))}: "
                            f"{_fmt(op.get('value'))} s ({op_pct:.1f}%)")
                dim = " dim" if j % 2 else ""
                bottom.append(
                    f'<div class="seg{dim}" title="{op_title}" '
                    f'style="width:{max(op_pct, 0.15):.3f}%;'
                    f'background:{color}">'
                    f'{_esc(op.get("name")) if op_pct >= 8.0 else ""}'
                    "</div>"
                )
        if folded:
            fold_pct = 100.0 * sum(
                g.get("value", 0.0) for g in folded) / sim
            top.append(
                f'<div class="seg" title="other ({len(folded)} groups)" '
                f'style="width:{max(fold_pct, 0.15):.3f}%;'
                f'background:var(--baseline)"></div>'
            )
        out.append(f'<div class="icicle">{"".join(top)}</div>')
        out.append(f'<div class="icicle">{"".join(bottom)}</div>')
    if table:
        max_pct = max((r.get("pct", 0.0) for r in table), default=0.0)
        rows = []
        for r in table:
            pct = r.get("pct", 0.0)
            width = 120.0 * pct / max_pct if max_pct > 0 else 0.0
            rows.append(
                "<tr>"
                f"<td>{_esc(r.get('label'))}</td>"
                f"<td class='num'>{_fmt(r.get('seconds'))}</td>"
                f"<td class='num'>{pct:.2f}%</td>"
                f"<td><span class='bar' style='width:{width:.1f}px'>"
                "</span></td>"
                "</tr>"
            )
        out.append(
            "<table><thead><tr><th>stage : operator</th>"
            "<th class='num'>sim-s</th><th class='num'>share</th>"
            f"<th></th></tr></thead><tbody>{''.join(rows)}</tbody></table>"
        )
    return "".join(out)


def _sparkline(name: str, series: Dict[str, object],
               window_s: float) -> str:
    points: List[Tuple[float, float]] = [
        (float(w), float(v)) for w, v in series.get("points", [])
    ]
    if not points:
        return ""
    w_lo = points[0][0]
    w_hi = points[-1][0]
    v_lo = min(v for _, v in points)
    v_hi = max(v for _, v in points)
    x_span = max(w_hi - w_lo, 1e-12)
    y_span = max(v_hi - v_lo, 1e-12)
    plot_w = _SPARK_W - 2 * _PAD
    plot_h = _SPARK_H - 2 * _PAD

    def xy(wi: float, v: float) -> Tuple[float, float]:
        x = _PAD + plot_w * (wi - w_lo) / x_span
        y = _PAD + plot_h * (1.0 - (v - v_lo) / y_span)
        return round(x, 2), round(y, 2)

    coords = [xy(wi, v) for wi, v in points]
    path = " ".join(
        f"{'M' if i == 0 else 'L'}{x},{y}"
        for i, (x, y) in enumerate(coords)
    )
    hover = [
        [x, y, round(wi * window_s, 3), round(v, 6)]
        for (x, y), (wi, v) in zip(coords, points)
    ]
    data = _esc(json.dumps(hover, separators=(",", ":")))
    last = points[-1][1]
    table_rows = "".join(
        f"<tr><td class='num'>{_fmt(wi * window_s, 1)}</td>"
        f"<td class='num'>{_fmt(v, 6)}</td></tr>"
        for wi, v in points
    )
    return f"""
    <div class="card">
      <div class="name">{_esc(name)}</div>
      <div class="last">{_fmt(last, 6)}</div>
      <svg class="spark" viewBox="0 0 {_SPARK_W} {_SPARK_H}"
           width="100%" height="{_SPARK_H}" data-points="{data}"
           role="img" aria-label="{_esc(name)} over sim time">
        <line x1="{_PAD}" y1="{_SPARK_H - _PAD}"
              x2="{_SPARK_W - _PAD}" y2="{_SPARK_H - _PAD}"
              stroke="var(--baseline)" stroke-width="1"/>
        <path d="{path}" fill="none" stroke="var(--series-1)"
              stroke-width="2" stroke-linejoin="round"/>
        <circle class="hover-dot" r="3" fill="var(--series-1)"
                style="display:none"/>
      </svg>
      <div class="axis">
        <span>{_fmt(w_lo * window_s, 1)} s</span>
        <span>{_fmt(w_hi * window_s, 1)} s</span>
      </div>
      <div class="tooltip"></div>
      <details><summary>data table</summary>
        <table><thead><tr><th class='num'>sim-s</th>
        <th class='num'>value</th></tr></thead>
        <tbody>{table_rows}</tbody></table>
      </details>
    </div>"""


def _series_section(telemetry: Dict[str, object]) -> str:
    series: Dict[str, Dict[str, object]] = telemetry.get("series", {})
    window_s = float(telemetry.get("window_s", 1.0))
    by_component: Dict[str, List[str]] = {}
    for name in sorted(series):
        by_component.setdefault(
            str(series[name].get("component", "other")), []).append(name)
    out = []
    for component in sorted(by_component):
        names = by_component[component]
        shown = names[:_MAX_SERIES_PER_COMPONENT]
        out.append(f"<h3>{_esc(component)}</h3>")
        cards = "".join(
            _sparkline(n, series[n], window_s) for n in shown)
        out.append(f'<div class="cards">{cards}</div>')
        if len(names) > len(shown):
            out.append(
                f'<p class="note">{len(names) - len(shown)} more '
                f"{_esc(component)} series in the JSON document</p>")
    return "".join(out)


def render_dashboard(doc: Dict[str, object]) -> str:
    """Render one telemetry document as a self-contained HTML page."""
    meta = doc.get("meta", {})
    telemetry = doc.get("telemetry", {})
    title = str(meta.get("algorithm", "run"))
    meta_bits = " · ".join(
        f"{_esc(k)}={_esc(v)}" for k, v in sorted(meta.items())
    )
    sections = [
        f"<h1>PSGraph telemetry — {_esc(title)}</h1>",
        f'<div class="meta">{meta_bits}</div>',
        _tiles(doc),
        "<h2>SLO status</h2>",
        _slo_table(telemetry.get("slos", [])),
        "<h2>Alerts</h2>",
        _alert_table(telemetry.get("alerts", [])),
    ]
    chaos = doc.get("chaos")
    if isinstance(chaos, dict):
        sections.append("<h2>Fault detection timeline</h2>")
        sections.append(_chaos_section(chaos))
    cp = doc.get("critical_path")
    if isinstance(cp, dict):
        sections.append("<h2>Critical path</h2>")
        sections.append(_critical_section(cp))
    sections.append("<h2>Windowed series</h2>")
    sections.append(
        f'<p class="note">window = '
        f'{_fmt(telemetry.get("window_s"), 1)} sim-s; counter and '
        "histogram series show per-window deltas, gauges and p99 show "
        "levels</p>")
    sections.append(_series_section(telemetry))
    body = "\n".join(sections)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>PSGraph telemetry — {_esc(title)}</title>
<style>{_css()}</style>
</head>
<body>
{body}
<script>{_JS}</script>
</body>
</html>
"""


def write_dashboard(path: str, doc: Dict[str, object]) -> int:
    """Write the rendered dashboard to ``path``; returns bytes written."""
    text = render_dashboard(doc)
    with open(path, "w") as f:
        f.write(text)
    return len(text.encode())
