"""Observability: sim-time tracing, telemetry, SLOs and exporters.

The :mod:`repro.obs` subsystem makes *why one configuration beats another*
observable instead of asserted: a :class:`~repro.obs.tracer.Tracer` records
sim-time spans for every dataflow stage, task attempt, shuffle write/fetch,
PS pull/push/psFunc, RPC, HDFS read/write, checkpoint and container
restart, and exporters turn the recording into a Chrome trace
(``chrome://tracing`` / Perfetto), a plain-text per-stage timeline, or a
JSON metrics dump.  See ``docs/observability.md``.

On top of the raw spans sits the telemetry pipeline: a
:class:`~repro.obs.telemetry.TelemetryCollector` samples windowed
time-series from the metrics registry on sim-clock ticks, an
:class:`~repro.obs.slo.SloEngine` evaluates declarative objectives with
multi-window burn-rate alerting, :func:`~repro.obs.critical.critical_path`
attributes end-to-end sim time to stages and operators, and the
``repro-obs report`` CLI renders it all as a self-contained HTML
dashboard.

Tracing is off by default: every subsystem is threaded with
:data:`~repro.obs.tracer.NOOP_TRACER`, whose methods do nothing, so
benchmark numbers are unchanged unless a recording tracer is supplied::

    from repro.obs import Tracer, write_chrome_trace, timeline_report

    tracer = Tracer()
    with PSGraphContext(cluster, tracer=tracer) as ctx:
        GraphRunner(ctx).run(PageRank(), "/input/edges")
        print(timeline_report(tracer, ctx.sim_time()))
        write_chrome_trace("trace.json", tracer)
"""

from repro.obs.critical import CriticalPathReport, critical_path
from repro.obs.export import (
    chrome_trace,
    metrics_to_dict,
    span_from_dict,
    span_to_dict,
    spans_from_json,
    spans_to_json,
    timeline_report,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.slo import Alert, SloEngine, SloSpec, default_slos
from repro.obs.telemetry import (
    TelemetryCollector,
    TimeSeriesStore,
    build_telemetry_doc,
)
from repro.obs.tracer import INSTANT, NOOP_TRACER, SPAN, NoopTracer, Span, Tracer

__all__ = [
    "Alert",
    "CriticalPathReport",
    "INSTANT",
    "NOOP_TRACER",
    "SPAN",
    "NoopTracer",
    "SloEngine",
    "SloSpec",
    "Span",
    "TelemetryCollector",
    "TimeSeriesStore",
    "Tracer",
    "build_telemetry_doc",
    "chrome_trace",
    "critical_path",
    "default_slos",
    "metrics_to_dict",
    "span_from_dict",
    "span_to_dict",
    "spans_from_json",
    "spans_to_json",
    "timeline_report",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
]
