"""Observability: sim-time tracing, histograms and exporters.

The :mod:`repro.obs` subsystem makes *why one configuration beats another*
observable instead of asserted: a :class:`~repro.obs.tracer.Tracer` records
sim-time spans for every dataflow stage, task attempt, shuffle write/fetch,
PS pull/push/psFunc, RPC, HDFS read/write, checkpoint and container
restart, and exporters turn the recording into a Chrome trace
(``chrome://tracing`` / Perfetto), a plain-text per-stage timeline, or a
JSON metrics dump.  See ``docs/observability.md``.

Tracing is off by default: every subsystem is threaded with
:data:`~repro.obs.tracer.NOOP_TRACER`, whose methods do nothing, so
benchmark numbers are unchanged unless a recording tracer is supplied::

    from repro.obs import Tracer, write_chrome_trace, timeline_report

    tracer = Tracer()
    with PSGraphContext(cluster, tracer=tracer) as ctx:
        GraphRunner(ctx).run(PageRank(), "/input/edges")
        print(timeline_report(tracer, ctx.sim_time()))
        write_chrome_trace("trace.json", tracer)
"""

from repro.obs.export import (
    chrome_trace,
    metrics_to_dict,
    timeline_report,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.tracer import INSTANT, NOOP_TRACER, SPAN, NoopTracer, Span, Tracer

__all__ = [
    "INSTANT",
    "NOOP_TRACER",
    "SPAN",
    "NoopTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "metrics_to_dict",
    "timeline_report",
    "write_chrome_trace",
    "write_metrics_json",
]
