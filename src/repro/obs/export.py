"""Exporters for recorded traces and metrics.

Three output formats:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome tracing
  JSON format (open in ``chrome://tracing`` or https://ui.perfetto.dev).
  Each simulated container becomes one "process", each track one "thread",
  and spans are placed at their *simulated* timestamps.
* :func:`timeline_report` — a plain-text per-stage / per-iteration
  breakdown of where simulated time went.
* :func:`metrics_to_dict` / :func:`write_metrics_json` — a JSON dump of
  every counter, gauge and histogram in a
  :class:`~repro.common.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from repro.common.metrics import MetricsRegistry
from repro.obs.tracer import INSTANT, NoopTracer, Span, Tracer

TracerOrSpans = Union[Tracer, NoopTracer, Sequence[Span]]


def _as_spans(source: TracerOrSpans) -> List[Span]:
    if hasattr(source, "spans"):
        return source.spans()  # type: ignore[union-attr]
    return list(source)  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------

def chrome_trace(source: TracerOrSpans) -> Dict[str, object]:
    """Build a Chrome-tracing document from recorded spans.

    Components map to integer ``pid`` rows and tracks to integer ``tid``
    rows (Chrome requires numbers); ``process_name`` / ``thread_name``
    metadata events carry the human-readable labels.  Sim-time seconds are
    exported as microseconds, the unit the trace viewer expects.
    """
    spans = _as_spans(source)
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, object]] = []

    def pid_of(component: str) -> int:
        if component not in pids:
            pids[component] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[component],
                "tid": 0, "args": {"name": component},
            })
        return pids[component]

    def tid_of(component: str, track: str) -> int:
        key = (component, track)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid_of(component),
                "tid": tids[key], "args": {"name": track},
            })
        return tids[key]

    for span in spans:
        event: Dict[str, object] = {
            "name": span.name,
            "pid": pid_of(span.component),
            "tid": tid_of(span.component, span.track),
            "ts": span.start_s * 1e6,
        }
        if span.kind == INSTANT:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = span.duration_s * 1e6
        if span.tags:
            event["args"] = dict(span.tags)
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, source: TracerOrSpans) -> int:
    """Write the Chrome trace JSON to a local file; returns event count."""
    doc = chrome_trace(source)
    with open(path, "w") as f:
        json.dump(doc, f)
    return len(doc["traceEvents"])  # type: ignore[arg-type]


def validate_chrome_trace(doc: Dict[str, object]) -> List[str]:
    """Structural checks on a Chrome-trace document; returns problems.

    Verifies what the trace viewer silently mis-renders when violated:
    every event carries a phase; ``X`` events have numeric non-negative
    ``ts``/``dur`` and integer ``pid``/``tid``; ``B``/``E`` events match
    per (pid, tid); instants carry a scope; metadata events name their
    process/thread; and on every thread the ``X`` events — sorted onto
    the timeline — are either disjoint or properly nested (our tracks
    are serial sim timelines, so a partial overlap means a corrupted
    trace).  An empty list means valid.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    open_stacks: Dict[Tuple[int, int], List[str]] = {}
    x_by_thread: Dict[Tuple[int, int],
                      List[Tuple[float, float, str]]] = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph is None:
            problems.append(f"event[{i}]: missing ph")
            continue
        if ph == "M":
            if e.get("name") not in ("process_name", "thread_name"):
                problems.append(
                    f"event[{i}]: unknown metadata {e.get('name')!r}")
            elif "name" not in (e.get("args") or {}):
                problems.append(f"event[{i}]: metadata without args.name")
            continue
        for field in ("pid", "tid"):
            if not isinstance(e.get(field), int):
                problems.append(f"event[{i}]: non-integer {field}")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event[{i}]: bad ts {ts!r}")
            continue
        key = (e.get("pid"), e.get("tid"))
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event[{i}]: bad dur {dur!r}")
            else:
                x_by_thread.setdefault(key, []).append(
                    (float(ts), float(ts) + float(dur),
                     str(e.get("name"))))
        elif ph == "B":
            open_stacks.setdefault(key, []).append(str(e.get("name")))
        elif ph == "E":
            stack = open_stacks.get(key)
            if not stack:
                problems.append(f"event[{i}]: E without matching B")
            else:
                stack.pop()
        elif ph == "i":
            if e.get("s") not in ("t", "p", "g"):
                problems.append(f"event[{i}]: instant without scope")
        else:
            problems.append(f"event[{i}]: unsupported phase {ph!r}")
    for key, stack in open_stacks.items():
        if stack:
            problems.append(f"thread {key}: {len(stack)} unclosed B event(s)")
    eps = 1e-6  # one picosecond in exported microseconds
    for key, spans in x_by_thread.items():
        stack: List[Tuple[float, float, str]] = []
        for start, end, name in sorted(spans,
                                       key=lambda s: (s[0], -s[1])):
            while stack and start >= stack[-1][1] - eps:
                stack.pop()
            if stack and end > stack[-1][1] + eps:
                problems.append(
                    f"thread {key}: {name!r} [{start}, {end}] partially "
                    f"overlaps {stack[-1][2]!r} ending {stack[-1][1]}")
            stack.append((start, end, name))
    return problems


# ----------------------------------------------------------------------
# span JSON round-trip
# ----------------------------------------------------------------------

def span_to_dict(span: Span) -> Dict[str, object]:
    """Lossless JSON form of one span."""
    return {
        "component": span.component,
        "track": span.track,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "tags": dict(span.tags) if span.tags else None,
        "kind": span.kind,
    }


def span_from_dict(doc: Dict[str, object]) -> Span:
    """Rebuild a span from :func:`span_to_dict` output."""
    return Span(
        component=str(doc["component"]),
        track=str(doc["track"]),
        name=str(doc["name"]),
        start_s=float(doc["start_s"]),  # type: ignore[arg-type]
        end_s=float(doc["end_s"]),  # type: ignore[arg-type]
        tags=doc.get("tags"),  # type: ignore[arg-type]
        kind=str(doc.get("kind", "span")),
    )


def spans_to_json(source: TracerOrSpans) -> List[Dict[str, object]]:
    """All spans as JSON-ready dicts (recording order preserved)."""
    return [span_to_dict(s) for s in _as_spans(source)]


def spans_from_json(docs: Iterable[Dict[str, object]]) -> List[Span]:
    """Rebuild spans from :func:`spans_to_json` output."""
    return [span_from_dict(d) for d in docs]


# ----------------------------------------------------------------------
# plain-text timeline
# ----------------------------------------------------------------------

def _stage_rows(spans: Iterable[Span]) -> List[Span]:
    return sorted(
        (s for s in spans
         if s.component == "driver" and s.track == "stages"),
        key=lambda s: (s.start_s, s.end_s),
    )


def _iteration_marks(spans: Iterable[Span]) -> List[Span]:
    return sorted(
        (s for s in spans
         if s.component == "driver" and s.track == "iterations"),
        key=lambda s: s.start_s,
    )


def timeline_report(source: TracerOrSpans,
                    sim_time_s: float | None = None) -> str:
    """Per-stage and per-iteration breakdown of simulated time.

    Args:
        source: a tracer or span list.
        sim_time_s: the run's final simulated time; when given, the report
            footer compares it against the summed stage spans (stages tile
            the driver timeline, so their sum is at most the run time).
    """
    spans = _as_spans(source)
    stages = _stage_rows(spans)
    marks = _iteration_marks(spans)
    lines: List[str] = []

    lines.append("== per-stage timeline (sim seconds) ==")
    if stages:
        lines.append(f"{'stage':>6} {'kind':<20} {'start':>10} {'end':>10} "
                     f"{'dur':>9} {'tasks':>6}")
        for s in stages:
            tags = s.tags or {}
            lines.append(
                f"{str(tags.get('stage', '?')):>6} "
                f"{str(tags.get('kind', '?')):<20} "
                f"{s.start_s:>10.4f} {s.end_s:>10.4f} "
                f"{s.duration_s:>9.4f} {str(tags.get('tasks', '?')):>6}"
            )
    else:
        lines.append("(no stage spans recorded)")

    if marks:
        lines.append("")
        lines.append("== per-iteration timeline (sim seconds) ==")
        lines.append(f"{'iter':>6} {'start':>10} {'end':>10} {'dur':>9} "
                     f"{'stages':>7} {'stage_s':>9}")
        prev = 0.0
        for mark in marks:
            in_iter = [s for s in stages if prev <= s.start_s < mark.start_s]
            tags = mark.tags or {}
            lines.append(
                f"{str(tags.get('epoch', '?')):>6} "
                f"{prev:>10.4f} {mark.start_s:>10.4f} "
                f"{mark.start_s - prev:>9.4f} "
                f"{len(in_iter):>7} "
                f"{sum(s.duration_s for s in in_iter):>9.4f}"
            )
            prev = mark.start_s

    lines.append("")
    stage_total = sum(s.duration_s for s in stages)
    lines.append(f"stage span total : {stage_total:.4f} s "
                 f"({len(stages)} stages)")
    if sim_time_s is not None:
        covered = stage_total / sim_time_s if sim_time_s > 0 else 0.0
        lines.append(f"run sim-time     : {sim_time_s:.4f} s "
                     f"(stages cover {covered:.1%})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# metrics dump
# ----------------------------------------------------------------------

def metrics_to_dict(metrics: MetricsRegistry) -> Dict[str, object]:
    """Structured dump of one registry: counters, gauges, histograms."""
    return {
        "counters": metrics.snapshot(),
        "gauges": metrics.gauge_snapshot(),
        "histograms": {
            name: hist.summary() for name, hist in metrics.histograms()
        },
    }


def write_metrics_json(path: str, metrics: MetricsRegistry) -> None:
    """Write :func:`metrics_to_dict` to a local JSON file."""
    with open(path, "w") as f:
        json.dump(metrics_to_dict(metrics), f, indent=2, sort_keys=True)
