"""Synthetic datasets: power-law graphs, community graphs, DS1/DS2/DS3."""

from repro.datasets.generators import (
    GraphStats,
    community_graph,
    edge_weights,
    graph_stats,
    powerlaw_graph,
    vertex_features,
)
from repro.datasets.tencent import (
    DEFAULT_SCALE_DS1,
    DEFAULT_SCALE_DS2,
    DEFAULT_SCALE_DS3,
    DatasetSpec,
    ds1_spec,
    ds2_spec,
    ds3_spec,
    generate_ds3_gnn,
    generate_edges,
    write_edges,
)

__all__ = [
    "DEFAULT_SCALE_DS1",
    "DEFAULT_SCALE_DS2",
    "DEFAULT_SCALE_DS3",
    "DatasetSpec",
    "GraphStats",
    "community_graph",
    "ds1_spec",
    "ds2_spec",
    "ds3_spec",
    "edge_weights",
    "generate_ds3_gnn",
    "generate_edges",
    "graph_stats",
    "powerlaw_graph",
    "vertex_features",
    "write_edges",
]
