"""Scaled stand-ins for the paper's Tencent datasets.

Sec. V-A: "The first dataset DS1 contains 0.8 billion vertices and 11
billion edges.  The second dataset DS2 contains 2 billion vertices and 140
billion edges.  The third dataset DS3 contains 30 million vertices and 100
million edges."

We generate power-law graphs at a configurable ``scale`` preserving the
edges/vertex ratios (DS1: 13.75, DS2: 70, DS3: 3.33).  Resource grants are
scaled by the same factor via :meth:`ClusterConfig.scaled`, so the memory
pressure — and therefore the OOM pattern of Fig. 6 — carries over, and
sim-time extrapolates linearly: ``paper_hours ≈ sim_seconds / scale / 3600``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.common.rng import DEFAULT_SEED
from repro.datasets.generators import (
    community_graph,
    powerlaw_graph,
    vertex_features,
)
from repro.hdfs.filesystem import Hdfs

#: Default scale factor for benches: 1e-5 of the paper's DS1/DS2 sizes.
DEFAULT_SCALE_DS1 = 1e-5
DEFAULT_SCALE_DS2 = 1e-5
#: DS3 is much smaller in the paper; 1e-3 keeps a learnable GNN graph.
DEFAULT_SCALE_DS3 = 1e-3


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset stand-in: paper-scale shape plus the applied scale."""

    name: str
    paper_vertices: int
    paper_edges: int
    scale: float

    @property
    def num_vertices(self) -> int:
        """Vertices at mini scale."""
        return max(64, int(self.paper_vertices * self.scale))

    @property
    def num_edges(self) -> int:
        """Edges at mini scale."""
        return max(256, int(self.paper_edges * self.scale))


def ds1_spec(scale: float = DEFAULT_SCALE_DS1) -> DatasetSpec:
    """DS1: 0.8 B vertices / 11 B edges at paper scale."""
    return DatasetSpec("DS1", 800_000_000, 11_000_000_000, scale)


def ds2_spec(scale: float = DEFAULT_SCALE_DS2) -> DatasetSpec:
    """DS2: 2 B vertices / 140 B edges at paper scale."""
    return DatasetSpec("DS2", 2_000_000_000, 140_000_000_000, scale)


def ds3_spec(scale: float = DEFAULT_SCALE_DS3) -> DatasetSpec:
    """DS3: 30 M vertices / 100 M edges at paper scale."""
    return DatasetSpec("DS3", 30_000_000, 100_000_000, scale)


def generate_edges(spec: DatasetSpec,
                   seed: int = DEFAULT_SEED
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Power-law edge list for a spec (deterministic per seed)."""
    return powerlaw_graph(
        spec.num_vertices, spec.num_edges, seed=seed
    )


def generate_ds3_gnn(spec: DatasetSpec | None = None,
                     feature_dim: int = 32, num_classes: int = 5,
                     num_communities: int = 20,
                     seed: int = DEFAULT_SEED
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """DS3 stand-in for the GraphSage experiment: a community graph with
    community-correlated features and labels (the WeChat Pay task of
    Table I is proprietary; this preserves "a GNN can learn it").

    Returns:
        ``(src, dst, features, labels)``.
    """
    spec = spec or ds3_spec()
    avg_degree = 2.0 * spec.num_edges / spec.num_vertices
    src, dst, communities = community_graph(
        spec.num_vertices, num_communities,
        avg_degree=avg_degree, mixing=0.15, seed=seed,
    )
    feats, labels = vertex_features(
        communities, feature_dim, num_classes, noise=3.2, seed=seed + 1
    )
    return src, dst, feats, labels


def write_edges(hdfs: Hdfs, path: str, src: np.ndarray, dst: np.ndarray,
                num_files: int = 8,
                weights: np.ndarray | None = None) -> str:
    """Write an edge list to HDFS as ``part-NNNNN`` text files.

    Each line is ``src<TAB>dst`` (``src<TAB>dst<TAB>weight`` when weights
    are given), the paper's assumed input format (Sec. IV).
    """
    num_files = max(1, num_files)
    for i in range(num_files):
        sl = slice(i, None, num_files)
        if weights is None:
            lines = [f"{s}\t{d}" for s, d in zip(src[sl], dst[sl])]
        else:
            lines = [
                f"{s}\t{d}\t{w:.6f}"
                for s, d, w in zip(src[sl], dst[sl], weights[sl])
            ]
        hdfs.write_text(f"{path}/part-{i:05d}", lines, overwrite=True)
    return path
