"""Synthetic graph generators.

The paper's datasets are proprietary WeChat-scale graphs; the reproduction
substitutes seeded synthetic graphs that preserve the properties the
evaluation depends on: power-law degree distributions (who OOMs under
vertex replication), the edges/vertex ratio (shuffle and PS traffic
volumes), community structure (fast unfolding / label propagation have
something to find) and learnable vertex labels (GraphSage accuracy is
meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.common.errors import ConfigError
from repro.common.rng import make_rng


def powerlaw_graph(num_vertices: int, num_edges: int, *,
                   exponent: float = 2.2,
                   max_degree_share: float = 0.002,
                   seed: int | None = None
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Directed Chung-Lu style power-law graph.

    Endpoint ``i`` is drawn with probability proportional to
    ``(i+1)^(-1/(exponent-1))``, giving an (approximate) power-law degree
    distribution with the given exponent — hubs exist, as in social graphs.

    Args:
        max_degree_share: cap on any single vertex's share of edge
            endpoints.  Friendship graphs have hard degree caps (WeChat
            historically 5000 friends vs ~275 average, i.e. hubs at most
            ~20x the mean), whereas a small graph sampled from the raw
            power-law would hand its hub a far larger *relative* share —
            distorting the memory profile the reproduction scales down.
            The default keeps ``max_degree ~ 15-20x mean degree``.

    Returns:
        ``(src, dst)`` int64 arrays of length ``num_edges`` (self-loops
        removed by resampling the destination).
    """
    if num_vertices < 2:
        raise ConfigError("need at least 2 vertices")
    if num_edges <= 0:
        raise ConfigError("need at least 1 edge")
    if not 0 < max_degree_share <= 1:
        raise ConfigError("max_degree_share must be in (0, 1]")
    rng = make_rng(seed)
    ranks = np.arange(1, num_vertices + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    probs = weights / weights.sum()
    for _ in range(8):  # iterative water-filling to respect the cap
        over = probs > max_degree_share
        if not over.any():
            break
        excess = (probs[over] - max_degree_share).sum()
        probs[over] = max_degree_share
        under = ~over
        probs[under] += excess * probs[under] / probs[under].sum()
    probs = probs / probs.sum()
    src = rng.choice(num_vertices, size=num_edges, p=probs)
    dst = rng.choice(num_vertices, size=num_edges, p=probs)
    loops = src == dst
    while loops.any():
        dst[loops] = rng.choice(num_vertices, size=int(loops.sum()), p=probs)
        loops = src == dst
    # Scatter ids so vertex index does not encode degree rank.
    perm = rng.permutation(num_vertices)
    return perm[src].astype(np.int64), perm[dst].astype(np.int64)


def community_graph(num_vertices: int, num_communities: int, *,
                    avg_degree: float = 8.0, mixing: float = 0.1,
                    seed: int | None = None
                    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Planted-partition graph with known communities.

    Each vertex draws ``avg_degree`` endpoints, a fraction ``mixing`` of
    them outside its community.

    Returns:
        ``(src, dst, communities)``: edge arrays plus the ground-truth
        community id per vertex.
    """
    if num_communities < 1 or num_communities > num_vertices:
        raise ConfigError("bad num_communities")
    if not 0.0 <= mixing <= 1.0:
        raise ConfigError("mixing must be in [0, 1]")
    rng = make_rng(seed)
    communities = rng.integers(0, num_communities, size=num_vertices)
    members = [np.flatnonzero(communities == c)
               for c in range(num_communities)]
    num_edges = max(1, int(num_vertices * avg_degree / 2))
    src = rng.integers(0, num_vertices, size=num_edges)
    outside = rng.random(num_edges) < mixing
    dst = np.empty(num_edges, dtype=np.int64)
    for i, s in enumerate(src.tolist()):
        if outside[i]:
            dst[i] = rng.integers(0, num_vertices)
        else:
            pool = members[communities[s]]
            dst[i] = pool[rng.integers(0, len(pool))]
    keep = src != dst
    return (src[keep].astype(np.int64), dst[keep].astype(np.int64),
            communities.astype(np.int64))


def vertex_features(communities: np.ndarray, feature_dim: int,
                    num_classes: int | None = None, *,
                    noise: float = 1.0, seed: int | None = None
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Community-correlated Gaussian features and labels.

    Each community gets a random mean vector; vertices sample around their
    community mean, and the label is the community modulo ``num_classes``.
    A GNN that aggregates neighborhoods (which are community-biased) can
    denoise the features — the learnable task behind Table I.

    Returns:
        ``(features float32 (n, d), labels int64 (n,))``.
    """
    rng = make_rng(seed)
    communities = np.asarray(communities)
    num_comm = int(communities.max()) + 1
    if num_classes is None:
        num_classes = num_comm
    means = rng.standard_normal((num_comm, feature_dim)) * 2.0
    feats = (means[communities]
             + rng.standard_normal((len(communities), feature_dim)) * noise)
    labels = (communities % num_classes).astype(np.int64)
    return feats.astype(np.float32), labels


def edge_weights(num_edges: int, *, low: float = 0.5, high: float = 1.5,
                 seed: int | None = None) -> np.ndarray:
    """Uniform random edge weights (fast unfolding takes a weighted graph)."""
    rng = make_rng(seed)
    return rng.uniform(low, high, size=num_edges)


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics used by tests and reports."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float


def graph_stats(src: np.ndarray, dst: np.ndarray) -> GraphStats:
    """Compute basic statistics of an edge list (out-degree based)."""
    n = int(max(src.max(), dst.max())) + 1
    deg = np.bincount(src, minlength=n)
    return GraphStats(
        num_vertices=n,
        num_edges=len(src),
        max_degree=int(deg.max()),
        mean_degree=float(deg.mean()),
    )
